//! NT-style paths: backslash-separated, case-insensitive.
//!
//! The study stores file names "in a short form as we are mainly interested
//! in the file type, not in the individual names" (§3.1); accordingly the
//! path machinery here keeps full component names for namespace operations
//! but exposes [`NtPath::extension`] as the primary classification hook.

use std::fmt;

/// A borrowed, parsed NT path such as `\winnt\profiles\alice\ntuser.dat`.
///
/// Paths are always absolute within a volume (rooted at `\`). Comparison is
/// ASCII-case-insensitive, matching NT namespace semantics.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct NtPath {
    components: Vec<String>,
}

/// An owned, growable NT path.
pub type NtPathBuf = NtPath;

impl NtPath {
    /// The volume root `\`.
    pub fn root() -> Self {
        NtPath {
            components: Vec::new(),
        }
    }

    /// Parses a backslash-separated path. Leading backslash is optional;
    /// empty components are ignored. Components are lower-cased on parse so
    /// that equality and hashing are case-insensitive.
    pub fn parse(s: &str) -> Self {
        NtPath {
            components: s
                .split('\\')
                .filter(|c| !c.is_empty())
                .map(|c| c.to_ascii_lowercase())
                .collect(),
        }
    }

    /// The path components, already lower-cased.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Number of components; the root has zero.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// True for the volume root.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// The final component, if any.
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(|s| s.as_str())
    }

    /// The path without its final component; the root's parent is the root.
    pub fn parent(&self) -> NtPath {
        let mut p = self.clone();
        p.components.pop();
        p
    }

    /// Appends a component, returning the extended path.
    pub fn join(&self, component: &str) -> NtPath {
        let mut p = self.clone();
        p.push(component);
        p
    }

    /// Appends a component in place.
    pub fn push(&mut self, component: &str) {
        for c in component.split('\\').filter(|c| !c.is_empty()) {
            self.components.push(c.to_ascii_lowercase());
        }
    }

    /// The extension of the final component (lower-case, no dot), if any.
    ///
    /// # Examples
    ///
    /// ```
    /// use nt_fs::path::NtPath;
    ///
    /// assert_eq!(NtPath::parse(r"\bin\Notepad.EXE").extension(), Some("exe"));
    /// assert_eq!(NtPath::parse(r"\etc\hosts").extension(), None);
    /// ```
    pub fn extension(&self) -> Option<&str> {
        let name = self.file_name()?;
        let dot = name.rfind('.')?;
        if dot == 0 || dot + 1 == name.len() {
            None
        } else {
            Some(&name[dot + 1..])
        }
    }

    /// True when `prefix` is an ancestor of (or equal to) this path.
    pub fn starts_with(&self, prefix: &NtPath) -> bool {
        self.components.len() >= prefix.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }
}

impl fmt::Display for NtPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "\\");
        }
        for c in &self.components {
            write!(f, "\\{c}")?;
        }
        Ok(())
    }
}

/// Extracts the lower-cased extension from a bare file name.
pub fn extension_of(name: &str) -> Option<String> {
    let dot = name.rfind('.')?;
    if dot == 0 || dot + 1 == name.len() {
        None
    } else {
        Some(name[dot + 1..].to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p = NtPath::parse(r"\Winnt\Profiles\Alice");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.to_string(), r"\winnt\profiles\alice");
        assert_eq!(NtPath::root().to_string(), "\\");
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(
            NtPath::parse(r"\WINNT\System32"),
            NtPath::parse(r"\winnt\system32")
        );
    }

    #[test]
    fn parent_and_join() {
        let p = NtPath::parse(r"\a\b\c");
        assert_eq!(p.parent(), NtPath::parse(r"\a\b"));
        assert_eq!(NtPath::root().parent(), NtPath::root());
        assert_eq!(p.parent().join("d"), NtPath::parse(r"\a\b\d"));
    }

    #[test]
    fn push_splits_on_backslash() {
        let mut p = NtPath::root();
        p.push(r"a\b");
        assert_eq!(p, NtPath::parse(r"\a\b"));
    }

    #[test]
    fn extensions() {
        assert_eq!(NtPath::parse(r"\x\y.TXT").extension(), Some("txt"));
        assert_eq!(NtPath::parse(r"\x\.profile").extension(), None);
        assert_eq!(NtPath::parse(r"\x\trailing.").extension(), None);
        assert_eq!(NtPath::parse(r"\x\a.b.c").extension(), Some("c"));
        assert_eq!(extension_of("Makefile"), None);
        assert_eq!(extension_of("a.OBJ"), Some("obj".to_string()));
    }

    #[test]
    fn starts_with() {
        let base = NtPath::parse(r"\winnt\profiles");
        assert!(NtPath::parse(r"\winnt\profiles\alice\x.txt").starts_with(&base));
        assert!(base.starts_with(&base));
        assert!(!NtPath::parse(r"\winnt").starts_with(&base));
        assert!(!NtPath::parse(r"\winnt\profilesx").starts_with(&base));
    }

    #[test]
    fn empty_components_ignored() {
        assert_eq!(NtPath::parse(r"\\a\\\b\"), NtPath::parse(r"\a\b"));
    }
}
