//! File-system errors.
//!
//! These map 1:1 onto the NTSTATUS codes the driver layer (`nt-io`) reports
//! in trace records; keeping a separate enum here lets the state layer stay
//! independent of the I/O stack.

use std::fmt;

/// Result alias for file-system state operations.
pub type FsResult<T> = Result<T, FsError>;

/// Errors from namespace and metadata operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FsError {
    /// The path or node does not exist (STATUS_OBJECT_NAME_NOT_FOUND).
    NotFound,
    /// Creation was requested but the name exists (STATUS_OBJECT_NAME_COLLISION).
    AlreadyExists,
    /// A file was used where a directory is required (STATUS_NOT_A_DIRECTORY).
    NotADirectory,
    /// A directory was used where a file is required (STATUS_FILE_IS_A_DIRECTORY).
    IsADirectory,
    /// Directory deletion with children (STATUS_DIRECTORY_NOT_EMPTY).
    DirectoryNotEmpty,
    /// The volume has no space left (STATUS_DISK_FULL).
    VolumeFull,
    /// A stale node id was used after deletion.
    StaleNode,
    /// The operation is invalid for the node's state.
    InvalidOperation,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsError::NotFound => "object name not found",
            FsError::AlreadyExists => "object name collision",
            FsError::NotADirectory => "not a directory",
            FsError::IsADirectory => "file is a directory",
            FsError::DirectoryNotEmpty => "directory not empty",
            FsError::VolumeFull => "disk full",
            FsError::StaleNode => "stale node id",
            FsError::InvalidOperation => "invalid operation",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(FsError::NotFound.to_string(), "object name not found");
        assert_eq!(FsError::VolumeFull.to_string(), "disk full");
    }
}
