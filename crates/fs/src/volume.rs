//! A single file-system volume: the namespace tree plus capacity accounting.

use nt_sim::SimTime;

use crate::attrs::{FileAttributes, FileTimes};
use crate::error::{FsError, FsResult};
use crate::node::{DirMeta, FileMeta, Node, NodeId, NodeKind};
use crate::path::NtPath;

/// The on-disk format of a volume, with the semantic differences the study
/// depends on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FsKind {
    /// FAT16/FAT32: does not maintain creation or last-access times (§3.1);
    /// large default cluster size.
    Fat,
    /// NTFS: maintains all three times; 4 KB clusters.
    Ntfs,
}

impl FsKind {
    /// Whether creation and last-access timestamps are maintained.
    pub fn maintains_all_times(self) -> bool {
        matches!(self, FsKind::Ntfs)
    }

    /// Default cluster size in bytes.
    pub fn default_cluster_size(self) -> u64 {
        match self {
            FsKind::Fat => 16_384,
            FsKind::Ntfs => 4_096,
        }
    }
}

/// Static configuration of a volume.
#[derive(Clone, Debug)]
pub struct VolumeConfig {
    /// Format.
    pub kind: FsKind,
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Allocation granularity in bytes.
    pub cluster_size: u64,
}

impl VolumeConfig {
    /// A local NTFS volume of the given capacity.
    pub fn local_ntfs(capacity: u64) -> Self {
        VolumeConfig {
            kind: FsKind::Ntfs,
            capacity,
            cluster_size: FsKind::Ntfs.default_cluster_size(),
        }
    }

    /// A local FAT volume of the given capacity.
    pub fn local_fat(capacity: u64) -> Self {
        VolumeConfig {
            kind: FsKind::Fat,
            capacity,
            cluster_size: FsKind::Fat.default_cluster_size(),
        }
    }
}

/// Aggregate statistics, as collected by the §5 snapshot analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VolumeStats {
    /// Number of regular files.
    pub files: u64,
    /// Number of directories (excluding the root).
    pub directories: u64,
    /// Sum of file sizes in bytes.
    pub used_bytes: u64,
    /// Sum of allocations in bytes (cluster-rounded).
    pub allocated_bytes: u64,
    /// Capacity in bytes.
    pub capacity: u64,
}

impl VolumeStats {
    /// Fraction of capacity allocated, in [0, 1].
    pub fn fullness(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.allocated_bytes as f64 / self.capacity as f64
        }
    }
}

enum Slot {
    Occupied {
        generation: u32,
        node: Node,
    },
    Free {
        generation: u32,
        next_free: Option<u32>,
    },
}

/// A simulated volume.
///
/// All mutating operations take the current [`SimTime`] and apply the
/// timestamp-maintenance rules of the volume's [`FsKind`].
pub struct Volume {
    config: VolumeConfig,
    slots: Vec<Slot>,
    free_head: Option<u32>,
    root: NodeId,
    stats: VolumeStats,
}

impl Volume {
    /// Creates an empty volume with a root directory.
    pub fn new(config: VolumeConfig) -> Self {
        let root_node = Node {
            name: String::new(),
            parent: None,
            times: FileTimes::at_creation(SimTime::ZERO, config.kind.maintains_all_times()),
            kind: NodeKind::Directory(DirMeta::default()),
        };
        let capacity = config.capacity;
        Volume {
            config,
            slots: vec![Slot::Occupied {
                generation: 0,
                node: root_node,
            }],
            free_head: None,
            root: NodeId {
                index: 0,
                generation: 0,
            },
            stats: VolumeStats {
                capacity,
                ..VolumeStats::default()
            },
        }
    }

    /// The volume's configuration.
    pub fn config(&self) -> &VolumeConfig {
        &self.config
    }

    /// The root directory.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> VolumeStats {
        self.stats
    }

    fn alloc_slot(&mut self, node: Node) -> NodeId {
        if let Some(index) = self.free_head {
            let slot = &mut self.slots[index as usize];
            let Slot::Free {
                generation,
                next_free,
            } = *slot
            else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next_free;
            let generation = generation.wrapping_add(1);
            *slot = Slot::Occupied { generation, node };
            NodeId { index, generation }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot::Occupied {
                generation: 0,
                node,
            });
            NodeId {
                index,
                generation: 0,
            }
        }
    }

    fn free_slot(&mut self, id: NodeId) {
        let slot = &mut self.slots[id.index as usize];
        debug_assert!(
            matches!(slot, Slot::Occupied { generation, .. } if *generation == id.generation)
        );
        *slot = Slot::Free {
            generation: id.generation,
            next_free: self.free_head,
        };
        self.free_head = Some(id.index);
    }

    /// Resolves a node handle, failing on stale ids.
    pub fn node(&self, id: NodeId) -> FsResult<&Node> {
        match self.slots.get(id.index as usize) {
            Some(Slot::Occupied { generation, node }) if *generation == id.generation => Ok(node),
            _ => Err(FsError::StaleNode),
        }
    }

    fn node_mut(&mut self, id: NodeId) -> FsResult<&mut Node> {
        match self.slots.get_mut(id.index as usize) {
            Some(Slot::Occupied { generation, node }) if *generation == id.generation => Ok(node),
            _ => Err(FsError::StaleNode),
        }
    }

    /// True when the handle still refers to a live node.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.node(id).is_ok()
    }

    /// Looks up a child by (case-insensitive) name in a directory.
    pub fn child(&self, dir: NodeId, name: &str) -> FsResult<NodeId> {
        let node = self.node(dir)?;
        let d = node.dir().ok_or(FsError::NotADirectory)?;
        d.children
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or(FsError::NotFound)
    }

    /// Resolves an absolute path to a node.
    pub fn lookup(&self, path: &NtPath) -> FsResult<NodeId> {
        let mut cur = self.root;
        for comp in path.components() {
            cur = self.child(cur, comp)?;
        }
        Ok(cur)
    }

    /// Reconstructs the absolute path of a node.
    pub fn path_of(&self, id: NodeId) -> FsResult<NtPath> {
        let mut comps = Vec::new();
        let mut cur = id;
        loop {
            let node = self.node(cur)?;
            match node.parent {
                Some(p) => {
                    comps.push(node.name.clone());
                    cur = p;
                }
                None => break,
            }
        }
        comps.reverse();
        let mut path = NtPath::root();
        for c in &comps {
            path.push(c);
        }
        Ok(path)
    }

    /// Creates a subdirectory.
    pub fn mkdir(&mut self, parent: NodeId, name: &str, now: SimTime) -> FsResult<NodeId> {
        let lname = name.to_ascii_lowercase();
        {
            let p = self.node(parent)?;
            let d = p.dir().ok_or(FsError::NotADirectory)?;
            if d.children.contains_key(&lname) {
                return Err(FsError::AlreadyExists);
            }
        }
        let node = Node {
            name: lname.clone(),
            parent: Some(parent),
            times: FileTimes::at_creation(now, self.config.kind.maintains_all_times()),
            kind: NodeKind::Directory(DirMeta::default()),
        };
        let id = self.alloc_slot(node);
        self.link_child(parent, lname, id, now)?;
        self.stats.directories += 1;
        Ok(id)
    }

    /// Creates every missing directory along `path`, returning the final one.
    pub fn mkdir_all(&mut self, path: &NtPath, now: SimTime) -> FsResult<NodeId> {
        let mut cur = self.root;
        for comp in path.components() {
            cur = match self.child(cur, comp) {
                Ok(id) => {
                    if !self.node(id)?.kind.is_directory() {
                        return Err(FsError::NotADirectory);
                    }
                    id
                }
                Err(FsError::NotFound) => self.mkdir(cur, comp, now)?,
                Err(e) => return Err(e),
            };
        }
        Ok(cur)
    }

    /// Creates an empty file in `parent`. Fails with [`FsError::AlreadyExists`]
    /// when the name is taken.
    pub fn create_file(&mut self, parent: NodeId, name: &str, now: SimTime) -> FsResult<NodeId> {
        self.create_file_with(parent, name, FileAttributes::empty(), now)
    }

    /// Creates an empty file with explicit attributes.
    pub fn create_file_with(
        &mut self,
        parent: NodeId,
        name: &str,
        attributes: FileAttributes,
        now: SimTime,
    ) -> FsResult<NodeId> {
        let lname = name.to_ascii_lowercase();
        {
            let p = self.node(parent)?;
            let d = p.dir().ok_or(FsError::NotADirectory)?;
            if d.children.contains_key(&lname) {
                return Err(FsError::AlreadyExists);
            }
        }
        let node = Node {
            name: lname.clone(),
            parent: Some(parent),
            times: FileTimes::at_creation(now, self.config.kind.maintains_all_times()),
            kind: NodeKind::File(FileMeta {
                attributes,
                ..FileMeta::default()
            }),
        };
        let id = self.alloc_slot(node);
        self.link_child(parent, lname, id, now)?;
        self.stats.files += 1;
        Ok(id)
    }

    fn link_child(
        &mut self,
        parent: NodeId,
        lname: String,
        child: NodeId,
        now: SimTime,
    ) -> FsResult<()> {
        let p = self.node_mut(parent)?;
        p.times.last_write = now;
        match &mut p.kind {
            NodeKind::Directory(d) => {
                d.children.insert(lname, child);
                Ok(())
            }
            NodeKind::File(_) => Err(FsError::NotADirectory),
        }
    }

    /// Removes a file, or an empty directory.
    pub fn remove(&mut self, id: NodeId, now: SimTime) -> FsResult<()> {
        if id == self.root {
            return Err(FsError::InvalidOperation);
        }
        let (parent, name, is_file, size, allocation) = {
            let node = self.node(id)?;
            if let Some(d) = node.dir() {
                if !d.is_empty() {
                    return Err(FsError::DirectoryNotEmpty);
                }
            }
            (
                node.parent.expect("non-root node has a parent"),
                node.name.clone(),
                node.kind.is_file(),
                node.file().map_or(0, |f| f.size),
                node.file().map_or(0, |f| f.allocation),
            )
        };
        let p = self.node_mut(parent)?;
        p.times.last_write = now;
        match &mut p.kind {
            NodeKind::Directory(d) => {
                d.children.remove(&name);
            }
            NodeKind::File(_) => unreachable!("parent is always a directory"),
        }
        self.free_slot(id);
        if is_file {
            self.stats.files -= 1;
            self.stats.used_bytes -= size;
            self.stats.allocated_bytes -= allocation;
        } else {
            self.stats.directories -= 1;
        }
        Ok(())
    }

    /// Renames / moves a node within the volume.
    pub fn rename(
        &mut self,
        id: NodeId,
        new_parent: NodeId,
        new_name: &str,
        now: SimTime,
    ) -> FsResult<()> {
        if id == self.root {
            return Err(FsError::InvalidOperation);
        }
        let lname = new_name.to_ascii_lowercase();
        {
            let np = self.node(new_parent)?;
            let d = np.dir().ok_or(FsError::NotADirectory)?;
            if d.children.contains_key(&lname) {
                return Err(FsError::AlreadyExists);
            }
        }
        let (old_parent, old_name) = {
            let node = self.node(id)?;
            (
                node.parent.expect("non-root node has a parent"),
                node.name.clone(),
            )
        };
        {
            let p = self.node_mut(old_parent)?;
            p.times.last_write = now;
            if let NodeKind::Directory(d) = &mut p.kind {
                d.children.remove(&old_name);
            }
        }
        self.link_child(new_parent, lname.clone(), id, now)?;
        let node = self.node_mut(id)?;
        node.parent = Some(new_parent);
        node.name = lname;
        node.times.last_write = now;
        Ok(())
    }

    fn clusters_for(&self, size: u64) -> u64 {
        let c = self.config.cluster_size.max(1);
        size.div_ceil(c) * c
    }

    /// Sets a file's size (SetEndOfFile / truncation / extension).
    pub fn set_file_size(&mut self, id: NodeId, size: u64, now: SimTime) -> FsResult<()> {
        let new_alloc = self.clusters_for(size);
        let (old_size, old_alloc) = {
            let node = self.node(id)?;
            let f = node.file().ok_or(FsError::IsADirectory)?;
            (f.size, f.allocation)
        };
        let grows = new_alloc.saturating_sub(old_alloc);
        if grows > 0 && self.stats.allocated_bytes + grows > self.config.capacity {
            return Err(FsError::VolumeFull);
        }
        let node = self.node_mut(id)?;
        let f = node.file_mut().expect("checked above");
        f.size = size;
        f.valid_data_length = f.valid_data_length.min(size);
        f.allocation = new_alloc;
        node.times.last_write = now;
        self.stats.used_bytes = self.stats.used_bytes - old_size + size;
        self.stats.allocated_bytes = self.stats.allocated_bytes - old_alloc + new_alloc;
        Ok(())
    }

    /// Records a write of `len` bytes at `offset`, extending the file as a
    /// real write would, and advancing the valid-data length.
    pub fn note_write(&mut self, id: NodeId, offset: u64, len: u64, now: SimTime) -> FsResult<()> {
        let end = offset + len;
        let cur = self.file_size(id)?;
        if end > cur {
            self.set_file_size(id, end, now)?;
        }
        let node = self.node_mut(id)?;
        let f = node.file_mut().ok_or(FsError::IsADirectory)?;
        f.valid_data_length = f.valid_data_length.max(end);
        node.times.last_write = now;
        Ok(())
    }

    /// Records a read access, maintaining last-access where the format does.
    pub fn note_read(&mut self, id: NodeId, now: SimTime) -> FsResult<()> {
        let maintains = self.config.kind.maintains_all_times();
        let node = self.node_mut(id)?;
        if maintains {
            node.times.last_access = Some(now);
        }
        Ok(())
    }

    /// Current size of a file.
    pub fn file_size(&self, id: NodeId) -> FsResult<u64> {
        self.node(id)?
            .file()
            .map(|f| f.size)
            .ok_or(FsError::IsADirectory)
    }

    /// Truncates a file to zero, counting it as an overwrite (§6.3's
    /// "delete by truncation" case).
    pub fn overwrite(&mut self, id: NodeId, now: SimTime) -> FsResult<()> {
        self.set_file_size(id, 0, now)?;
        let maintains = self.config.kind.maintains_all_times();
        let node = self.node_mut(id)?;
        let f = node.file_mut().ok_or(FsError::IsADirectory)?;
        f.overwrite_count += 1;
        if maintains {
            // An overwrite re-creates the file in place; NT resets the
            // creation time under OVERWRITE/SUPERSEDE dispositions.
            node.times.creation = Some(now);
        }
        node.times.last_write = now;
        Ok(())
    }

    /// Marks/unmarks a file delete-pending (delete-on-close disposition).
    pub fn set_delete_pending(&mut self, id: NodeId, pending: bool) -> FsResult<()> {
        let node = self.node_mut(id)?;
        let f = node.file_mut().ok_or(FsError::IsADirectory)?;
        f.delete_pending = pending;
        Ok(())
    }

    /// Replaces a file's attribute flags.
    pub fn set_attributes(&mut self, id: NodeId, attributes: FileAttributes) -> FsResult<()> {
        let node = self.node_mut(id)?;
        let f = node.file_mut().ok_or(FsError::IsADirectory)?;
        f.attributes = attributes;
        Ok(())
    }

    /// Overrides a file's timestamps (what installers do, making creation
    /// times unreliable — §5).
    pub fn set_times(&mut self, id: NodeId, times: FileTimes) -> FsResult<()> {
        let maintains = self.config.kind.maintains_all_times();
        let node = self.node_mut(id)?;
        node.times = FileTimes {
            creation: if maintains { times.creation } else { None },
            last_access: if maintains { times.last_access } else { None },
            last_write: times.last_write,
        };
        Ok(())
    }

    /// Enumerates a directory's children in sorted-name order.
    pub fn read_dir(&self, dir: NodeId) -> FsResult<Vec<(String, NodeId)>> {
        let node = self.node(dir)?;
        let d = node.dir().ok_or(FsError::NotADirectory)?;
        Ok(d.children.iter().map(|(n, id)| (n.clone(), *id)).collect())
    }

    /// Depth-first pre-order walk from `start`, calling `visit` with each
    /// node's depth, id and node. Used by the snapshot walker (§3.1).
    pub fn walk<F>(&self, start: NodeId, visit: &mut F) -> FsResult<()>
    where
        F: FnMut(usize, NodeId, &Node),
    {
        self.walk_inner(start, 0, visit)
    }

    fn walk_inner<F>(&self, id: NodeId, depth: usize, visit: &mut F) -> FsResult<()>
    where
        F: FnMut(usize, NodeId, &Node),
    {
        let node = self.node(id)?;
        visit(depth, id, node);
        if let NodeKind::Directory(d) = &node.kind {
            let children: Vec<NodeId> = d.children.values().copied().collect();
            for child in children {
                self.walk_inner(child, depth + 1, visit)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> Volume {
        Volume::new(VolumeConfig::local_ntfs(1 << 30))
    }

    const T1: SimTime = SimTime::from_secs(1);
    const T2: SimTime = SimTime::from_secs(2);

    #[test]
    fn create_lookup_roundtrip() {
        let mut v = vol();
        let d = v.mkdir_all(&NtPath::parse(r"\a\b"), T1).unwrap();
        let f = v.create_file(d, "X.TXT", T1).unwrap();
        assert_eq!(v.lookup(&NtPath::parse(r"\A\B\x.txt")).unwrap(), f);
        assert_eq!(v.path_of(f).unwrap().to_string(), r"\a\b\x.txt");
        assert_eq!(v.stats().files, 1);
        assert_eq!(v.stats().directories, 2);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut v = vol();
        let root = v.root();
        v.create_file(root, "f", T1).unwrap();
        assert_eq!(v.create_file(root, "F", T1), Err(FsError::AlreadyExists));
        assert_eq!(v.mkdir(root, "f", T1), Err(FsError::AlreadyExists));
    }

    #[test]
    fn lookup_missing_is_not_found() {
        let v = vol();
        assert_eq!(v.lookup(&NtPath::parse(r"\nope")), Err(FsError::NotFound));
    }

    #[test]
    fn size_and_allocation_accounting() {
        let mut v = vol();
        let f = v.create_file(v.root(), "f.dat", T1).unwrap();
        v.set_file_size(f, 5_000, T1).unwrap();
        // NTFS clusters are 4 KB: 5000 bytes → 8192 allocated.
        assert_eq!(v.stats().used_bytes, 5_000);
        assert_eq!(v.stats().allocated_bytes, 8_192);
        v.set_file_size(f, 100, T2).unwrap();
        assert_eq!(v.stats().used_bytes, 100);
        assert_eq!(v.stats().allocated_bytes, 4_096);
        assert!(v.stats().fullness() > 0.0);
    }

    #[test]
    fn volume_full() {
        let mut v = Volume::new(VolumeConfig::local_ntfs(8_192));
        let f = v.create_file(v.root(), "f", T1).unwrap();
        assert_eq!(v.set_file_size(f, 10_000, T1), Err(FsError::VolumeFull));
        v.set_file_size(f, 8_192, T1).unwrap();
    }

    #[test]
    fn remove_updates_stats_and_invalidates_handles() {
        let mut v = vol();
        let f = v.create_file(v.root(), "f", T1).unwrap();
        v.set_file_size(f, 4_096, T1).unwrap();
        v.remove(f, T2).unwrap();
        assert_eq!(v.stats().files, 0);
        assert_eq!(v.stats().used_bytes, 0);
        assert_eq!(v.node(f).unwrap_err(), FsError::StaleNode);
        // Slot reuse must not resurrect the old handle.
        let g = v.create_file(v.root(), "g", T2).unwrap();
        assert_ne!(f, g);
        assert_eq!(v.node(f).unwrap_err(), FsError::StaleNode);
        assert!(v.is_live(g));
    }

    #[test]
    fn remove_nonempty_dir_fails() {
        let mut v = vol();
        let d = v.mkdir(v.root(), "d", T1).unwrap();
        v.create_file(d, "f", T1).unwrap();
        assert_eq!(v.remove(d, T2), Err(FsError::DirectoryNotEmpty));
    }

    #[test]
    fn rename_moves_nodes() {
        let mut v = vol();
        let d1 = v.mkdir(v.root(), "d1", T1).unwrap();
        let d2 = v.mkdir(v.root(), "d2", T1).unwrap();
        let f = v.create_file(d1, "old", T1).unwrap();
        v.rename(f, d2, "new.txt", T2).unwrap();
        assert_eq!(v.lookup(&NtPath::parse(r"\d2\new.txt")).unwrap(), f);
        assert_eq!(v.lookup(&NtPath::parse(r"\d1\old")), Err(FsError::NotFound));
        assert_eq!(v.node(f).unwrap().extension(), Some("txt"));
    }

    #[test]
    fn rename_collision_fails() {
        let mut v = vol();
        let f = v.create_file(v.root(), "a", T1).unwrap();
        v.create_file(v.root(), "b", T1).unwrap();
        assert_eq!(v.rename(f, v.root(), "B", T2), Err(FsError::AlreadyExists));
    }

    #[test]
    fn note_write_extends_and_tracks_vdl() {
        let mut v = vol();
        let f = v.create_file(v.root(), "f", T1).unwrap();
        v.note_write(f, 0, 100, T1).unwrap();
        v.note_write(f, 4_000, 96, T2).unwrap();
        let meta = v.node(f).unwrap().file().unwrap().clone();
        assert_eq!(meta.size, 4_096);
        assert_eq!(meta.valid_data_length, 4_096);
        assert_eq!(v.node(f).unwrap().times.last_write, T2);
    }

    #[test]
    fn fat_semantics_drop_creation_and_access_times() {
        let mut v = Volume::new(VolumeConfig::local_fat(1 << 30));
        let f = v.create_file(v.root(), "f", T1).unwrap();
        let times = v.node(f).unwrap().times;
        assert_eq!(times.creation, None);
        assert_eq!(times.last_access, None);
        v.note_read(f, T2).unwrap();
        assert_eq!(v.node(f).unwrap().times.last_access, None);
    }

    #[test]
    fn ntfs_overwrite_resets_creation_time() {
        let mut v = vol();
        let f = v.create_file(v.root(), "f", T1).unwrap();
        v.set_file_size(f, 1_000, T1).unwrap();
        v.overwrite(f, T2).unwrap();
        let node = v.node(f).unwrap();
        assert_eq!(node.times.creation, Some(T2));
        assert_eq!(node.file().unwrap().size, 0);
        assert_eq!(node.file().unwrap().overwrite_count, 1);
    }

    #[test]
    fn walk_visits_in_depth_first_order() {
        let mut v = vol();
        let a = v.mkdir(v.root(), "a", T1).unwrap();
        v.create_file(a, "f1", T1).unwrap();
        v.mkdir(a, "sub", T1).unwrap();
        v.create_file(v.root(), "top", T1).unwrap();
        let mut names = Vec::new();
        v.walk(v.root(), &mut |depth, _, node| {
            names.push((depth, node.name.clone()));
        })
        .unwrap();
        assert_eq!(
            names,
            vec![
                (0, String::new()),
                (1, "a".into()),
                (2, "f1".into()),
                (2, "sub".into()),
                (1, "top".into()),
            ]
        );
    }

    #[test]
    fn set_times_respects_fat() {
        let mut v = Volume::new(VolumeConfig::local_fat(1 << 20));
        let f = v.create_file(v.root(), "f", T1).unwrap();
        v.set_times(
            f,
            FileTimes {
                creation: Some(T2),
                last_access: Some(T2),
                last_write: T2,
            },
        )
        .unwrap();
        let times = v.node(f).unwrap().times;
        assert_eq!(times.creation, None, "FAT drops creation time");
        assert_eq!(times.last_write, T2);
    }
}
