//! A machine's view of its volumes: local disks plus redirector shares.
//!
//! §2 of the paper: every traced machine had a 2–6 GB local IDE disk (the
//! scientific machines 9–18 GB SCSI) and reached central file servers over
//! the CIFS redirector; the trace driver attached to the local file-system
//! driver instances *and* to the network redirector. A [`Namespace`] is
//! that machine-local forest of volumes.

use crate::error::{FsError, FsResult};
use crate::node::NodeId;
use crate::path::NtPath;
use crate::volume::{Volume, VolumeConfig};

/// Identifies a volume within one machine's namespace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VolumeId(pub u32);

/// Where a volume physically lives — drives the latency model and the
/// local-vs-remote split of figure 5.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VolumeLocation {
    /// A local disk with a drive letter (e.g. `C`).
    Local {
        /// Drive letter.
        drive: char,
    },
    /// A share on a network file server, reached through the redirector.
    Share {
        /// Server host name.
        server: String,
        /// Share name (a user home directory in the study's setting).
        share: String,
    },
}

impl VolumeLocation {
    /// True for local-disk volumes.
    pub fn is_local(&self) -> bool {
        matches!(self, VolumeLocation::Local { .. })
    }
}

/// A fully-qualified file location within a machine's namespace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileRef {
    /// The volume holding the file.
    pub volume: VolumeId,
    /// The node within that volume.
    pub node: NodeId,
}

/// One machine's forest of volumes.
#[derive(Default)]
pub struct Namespace {
    volumes: Vec<(VolumeLocation, Volume)>,
}

impl Namespace {
    /// An empty namespace.
    pub fn new() -> Self {
        Namespace::default()
    }

    /// Mounts a new local volume under a drive letter.
    pub fn mount_local(&mut self, drive: char, config: VolumeConfig) -> VolumeId {
        self.mount(VolumeLocation::Local { drive }, config)
    }

    /// Connects a redirector share.
    pub fn mount_share(&mut self, server: &str, share: &str, config: VolumeConfig) -> VolumeId {
        self.mount(
            VolumeLocation::Share {
                server: server.to_string(),
                share: share.to_string(),
            },
            config,
        )
    }

    fn mount(&mut self, location: VolumeLocation, config: VolumeConfig) -> VolumeId {
        let id = VolumeId(self.volumes.len() as u32);
        self.volumes.push((location, Volume::new(config)));
        id
    }

    /// Number of mounted volumes.
    pub fn len(&self) -> usize {
        self.volumes.len()
    }

    /// True when nothing is mounted.
    pub fn is_empty(&self) -> bool {
        self.volumes.is_empty()
    }

    /// The volume ids, in mount order.
    pub fn volume_ids(&self) -> impl Iterator<Item = VolumeId> + '_ {
        (0..self.volumes.len() as u32).map(VolumeId)
    }

    /// Accesses a volume.
    pub fn volume(&self, id: VolumeId) -> FsResult<&Volume> {
        self.volumes
            .get(id.0 as usize)
            .map(|(_, v)| v)
            .ok_or(FsError::NotFound)
    }

    /// Mutable access to a volume.
    pub fn volume_mut(&mut self, id: VolumeId) -> FsResult<&mut Volume> {
        self.volumes
            .get_mut(id.0 as usize)
            .map(|(_, v)| v)
            .ok_or(FsError::NotFound)
    }

    /// The location of a volume.
    pub fn location(&self, id: VolumeId) -> FsResult<&VolumeLocation> {
        self.volumes
            .get(id.0 as usize)
            .map(|(l, _)| l)
            .ok_or(FsError::NotFound)
    }

    /// True when the volume is local to the machine.
    pub fn is_local(&self, id: VolumeId) -> bool {
        self.location(id).map(|l| l.is_local()).unwrap_or(false)
    }

    /// Finds the local volume with the given drive letter.
    pub fn drive(&self, letter: char) -> Option<VolumeId> {
        self.volumes.iter().position(|(l, _)| {
            matches!(l, VolumeLocation::Local { drive } if drive.eq_ignore_ascii_case(&letter))
        })
        .map(|i| VolumeId(i as u32))
    }

    /// Resolves `path` on `volume` to a [`FileRef`].
    pub fn resolve(&self, volume: VolumeId, path: &NtPath) -> FsResult<FileRef> {
        let node = self.volume(volume)?.lookup(path)?;
        Ok(FileRef { volume, node })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_sim::SimTime;

    #[test]
    fn mount_and_resolve() {
        let mut ns = Namespace::new();
        let c = ns.mount_local('C', VolumeConfig::local_ntfs(1 << 30));
        let home = ns.mount_share("fileserv1", "alice$", VolumeConfig::local_ntfs(1 << 30));
        assert_eq!(ns.len(), 2);
        assert!(ns.is_local(c));
        assert!(!ns.is_local(home));
        assert_eq!(ns.drive('c'), Some(c));
        assert_eq!(ns.drive('D'), None);

        let now = SimTime::from_secs(1);
        let root = ns.volume(c).unwrap().root();
        ns.volume_mut(c)
            .unwrap()
            .create_file(root, "boot.ini", now)
            .unwrap();
        let fr = ns.resolve(c, &NtPath::parse(r"\boot.ini")).unwrap();
        assert_eq!(fr.volume, c);
        assert_eq!(
            ns.resolve(home, &NtPath::parse(r"\boot.ini")),
            Err(FsError::NotFound)
        );
    }

    #[test]
    fn bad_volume_id_errors() {
        let ns = Namespace::new();
        assert!(ns.volume(VolumeId(3)).is_err());
        assert!(!ns.is_local(VolumeId(3)));
    }
}
