//! Namespace nodes: files and directories in a volume tree.

use std::collections::BTreeMap;

use crate::attrs::{FileAttributes, FileTimes};

/// Handle to a node in a [`crate::Volume`].
///
/// Ids are generational: the study's workloads create and delete files at a
/// very high rate (§6.3 — 80 % of new files die within 4 seconds), so slots
/// are recycled aggressively and a stale handle must be detectable rather
/// than silently aliasing an unrelated file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl NodeId {
    /// The slot index; stable for the node's lifetime only.
    pub fn index(self) -> u32 {
        self.index
    }
}

/// File-specific metadata.
#[derive(Clone, Debug, Default)]
pub struct FileMeta {
    /// End-of-file position in bytes.
    pub size: u64,
    /// Valid data length: bytes actually written, `<= size`. The cache
    /// manager's SetEndOfFile dance at close (§8.3) operates on the gap
    /// between these two.
    pub valid_data_length: u64,
    /// Bytes reserved on disk (size rounded up to cluster granularity).
    pub allocation: u64,
    /// Attribute flags.
    pub attributes: FileAttributes,
    /// Set when a delete has been requested while handles remain open; the
    /// node disappears when the last handle closes.
    pub delete_pending: bool,
    /// Monotonic count of times this file has been overwritten/truncated
    /// at open, feeding the §6.3 lifetime analysis.
    pub overwrite_count: u64,
}

/// Directory-specific metadata. Children are kept sorted for deterministic
/// enumeration order across runs.
#[derive(Clone, Debug, Default)]
pub struct DirMeta {
    pub(crate) children: BTreeMap<String, NodeId>,
}

impl DirMeta {
    /// Number of child files.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when the directory has no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

/// Whether a node is a file or a directory, with the kind-specific fields.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// A regular file.
    File(FileMeta),
    /// A directory.
    Directory(DirMeta),
}

impl NodeKind {
    /// True for files.
    pub fn is_file(&self) -> bool {
        matches!(self, NodeKind::File(_))
    }

    /// True for directories.
    pub fn is_directory(&self) -> bool {
        matches!(self, NodeKind::Directory(_))
    }
}

/// A node in the namespace tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Final path component, lower-cased.
    pub name: String,
    /// Parent directory; `None` for the root.
    pub parent: Option<NodeId>,
    /// The three NT timestamps.
    pub times: FileTimes,
    /// File or directory payload.
    pub kind: NodeKind,
}

impl Node {
    /// File metadata, if this is a file.
    pub fn file(&self) -> Option<&FileMeta> {
        match &self.kind {
            NodeKind::File(f) => Some(f),
            NodeKind::Directory(_) => None,
        }
    }

    /// Mutable file metadata, if this is a file.
    pub fn file_mut(&mut self) -> Option<&mut FileMeta> {
        match &mut self.kind {
            NodeKind::File(f) => Some(f),
            NodeKind::Directory(_) => None,
        }
    }

    /// Directory metadata, if this is a directory.
    pub fn dir(&self) -> Option<&DirMeta> {
        match &self.kind {
            NodeKind::Directory(d) => Some(d),
            NodeKind::File(_) => None,
        }
    }

    /// The file extension (lower-case), if a file with one.
    pub fn extension(&self) -> Option<&str> {
        if !self.kind.is_file() {
            return None;
        }
        let dot = self.name.rfind('.')?;
        if dot == 0 || dot + 1 == self.name.len() {
            None
        } else {
            Some(&self.name[dot + 1..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_sim::SimTime;

    fn file_node(name: &str) -> Node {
        Node {
            name: name.to_string(),
            parent: None,
            times: FileTimes::at_creation(SimTime::ZERO, true),
            kind: NodeKind::File(FileMeta::default()),
        }
    }

    #[test]
    fn kind_accessors() {
        let mut n = file_node("a.txt");
        assert!(n.kind.is_file());
        assert!(n.file().is_some());
        assert!(n.dir().is_none());
        n.file_mut().unwrap().size = 10;
        assert_eq!(n.file().unwrap().size, 10);
    }

    #[test]
    fn node_extension() {
        assert_eq!(file_node("a.txt").extension(), Some("txt"));
        assert_eq!(file_node("noext").extension(), None);
        assert_eq!(file_node(".hidden").extension(), None);
        let d = Node {
            name: "dir.d".to_string(),
            parent: None,
            times: FileTimes::default(),
            kind: NodeKind::Directory(DirMeta::default()),
        };
        assert_eq!(d.extension(), None, "directories have no extension");
    }
}
