//! Simulated Windows NT file-system state.
//!
//! The original study traced FAT and NTFS volumes on 45 production machines
//! (§2, §5 of the paper). This crate models the *state* those file systems
//! keep — the namespace tree, per-file metadata, timestamps with the
//! FAT/NTFS maintenance differences the paper calls out, volume capacity
//! and fullness — without any I/O-path logic. The NT driver stack that
//! operates on this state lives in `nt-io`; the snapshot walker that
//! reproduces §5 lives in `nt-trace`.
//!
//! Content bytes are deliberately not stored: a usage study needs sizes,
//! offsets and timestamps, never data. Files carry a size, a valid-data
//! length, and an allocation size in cluster units.
//!
//! # Examples
//!
//! ```
//! use nt_fs::{Volume, VolumeConfig};
//! use nt_fs::path::NtPath;
//! use nt_sim::SimTime;
//!
//! let mut vol = Volume::new(VolumeConfig::local_ntfs(2 << 30));
//! let now = SimTime::from_secs(1);
//! let dir = vol.mkdir_all(&NtPath::parse(r"\winnt\profiles\alice"), now).unwrap();
//! let file = vol.create_file(dir, "ntuser.dat", now).unwrap();
//! vol.set_file_size(file, 24_576, now).unwrap();
//! assert_eq!(vol.file_size(file).unwrap(), 24_576);
//! ```

pub mod attrs;
pub mod error;
pub mod namespace;
pub mod node;
pub mod path;
pub mod volume;

pub use attrs::{FileAttributes, FileTimes};
pub use error::{FsError, FsResult};
pub use namespace::{Namespace, VolumeId, VolumeLocation};
pub use node::{Node, NodeId, NodeKind};
pub use path::{NtPath, NtPathBuf};
pub use volume::{FsKind, Volume, VolumeConfig, VolumeStats};
