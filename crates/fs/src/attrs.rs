//! File attributes and timestamps.
//!
//! §5 of the paper observes that the three recorded file times (creation,
//! last access, last change) are under application control and therefore
//! unreliable — e.g. installers back-date creation times, and in 2–4 % of
//! files last-change is newer than last-access. The model keeps all three
//! and allows exactly those inconsistencies so the snapshot analysis can
//! reproduce the observation. On FAT, creation and last-access times are
//! not maintained (§3.1).

use nt_sim::SimTime;

/// Windows NT file attribute flags (the subset relevant to the study).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct FileAttributes(u32);

impl FileAttributes {
    /// FILE_ATTRIBUTE_READONLY.
    pub const READONLY: FileAttributes = FileAttributes(0x0001);
    /// FILE_ATTRIBUTE_HIDDEN.
    pub const HIDDEN: FileAttributes = FileAttributes(0x0002);
    /// FILE_ATTRIBUTE_SYSTEM.
    pub const SYSTEM: FileAttributes = FileAttributes(0x0004);
    /// FILE_ATTRIBUTE_DIRECTORY.
    pub const DIRECTORY: FileAttributes = FileAttributes(0x0010);
    /// FILE_ATTRIBUTE_ARCHIVE.
    pub const ARCHIVE: FileAttributes = FileAttributes(0x0020);
    /// FILE_ATTRIBUTE_NORMAL.
    pub const NORMAL: FileAttributes = FileAttributes(0x0080);
    /// FILE_ATTRIBUTE_TEMPORARY — §6.3: tells the lazy writer not to queue
    /// the file's dirty pages for disk writes; the file dies at close.
    pub const TEMPORARY: FileAttributes = FileAttributes(0x0100);
    /// FILE_ATTRIBUTE_COMPRESSED.
    pub const COMPRESSED: FileAttributes = FileAttributes(0x0800);

    /// The empty attribute set.
    pub const fn empty() -> Self {
        FileAttributes(0)
    }

    /// Raw bits, matching the Win32 encoding.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Union of two attribute sets.
    pub const fn union(self, other: FileAttributes) -> FileAttributes {
        FileAttributes(self.0 | other.0)
    }

    /// True when every flag in `other` is set in `self`.
    pub const fn contains(self, other: FileAttributes) -> bool {
        self.0 & other.0 == other.0
    }

    /// Removes the flags in `other`.
    pub const fn difference(self, other: FileAttributes) -> FileAttributes {
        FileAttributes(self.0 & !other.0)
    }
}

impl std::ops::BitOr for FileAttributes {
    type Output = FileAttributes;

    fn bitor(self, rhs: FileAttributes) -> FileAttributes {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for FileAttributes {
    fn bitor_assign(&mut self, rhs: FileAttributes) {
        *self = *self | rhs;
    }
}

/// The three timestamps a Windows NT file carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FileTimes {
    /// Creation time; `None` on FAT volumes, which do not maintain it.
    pub creation: Option<SimTime>,
    /// Last access time; `None` on FAT volumes.
    pub last_access: Option<SimTime>,
    /// Last write (change) time — maintained by all file systems.
    pub last_write: SimTime,
}

impl FileTimes {
    /// Fresh timestamps for a file created at `now`, per file-system rules.
    pub fn at_creation(now: SimTime, maintains_all: bool) -> Self {
        FileTimes {
            creation: maintains_all.then_some(now),
            last_access: maintains_all.then_some(now),
            last_write: now,
        }
    }

    /// The "functional lifetime" of Satyanarayanan \[18\], used by §5 when
    /// creation times are untrustworthy: last-write minus last-access,
    /// `None` when last-access is unavailable (FAT).
    pub fn functional_lifetime(&self) -> Option<i64> {
        self.last_access
            .map(|a| self.last_write.ticks() as i64 - a.ticks() as i64)
    }

    /// True when the timestamps are self-inconsistent in the way §5
    /// reports for 2–4 % of files: last change newer than last access.
    pub fn change_newer_than_access(&self) -> bool {
        match self.last_access {
            Some(a) => self.last_write > a,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_set_operations() {
        let a = FileAttributes::TEMPORARY | FileAttributes::HIDDEN;
        assert!(a.contains(FileAttributes::TEMPORARY));
        assert!(a.contains(FileAttributes::HIDDEN));
        assert!(!a.contains(FileAttributes::SYSTEM));
        let b = a.difference(FileAttributes::HIDDEN);
        assert!(b.contains(FileAttributes::TEMPORARY));
        assert!(!b.contains(FileAttributes::HIDDEN));
        assert_eq!(FileAttributes::empty().bits(), 0);
    }

    #[test]
    fn creation_times_per_fs() {
        let t = SimTime::from_secs(10);
        let ntfs = FileTimes::at_creation(t, true);
        assert_eq!(ntfs.creation, Some(t));
        assert_eq!(ntfs.last_access, Some(t));
        let fat = FileTimes::at_creation(t, false);
        assert_eq!(fat.creation, None);
        assert_eq!(fat.last_access, None);
        assert_eq!(fat.last_write, t);
    }

    #[test]
    fn inconsistent_timestamps_detectable() {
        let mut ft = FileTimes::at_creation(SimTime::from_secs(10), true);
        assert!(!ft.change_newer_than_access());
        ft.last_write = SimTime::from_secs(20);
        assert!(ft.change_newer_than_access());
        assert_eq!(
            ft.functional_lifetime(),
            Some(10 * nt_sim::TICKS_PER_SEC as i64)
        );
    }
}
