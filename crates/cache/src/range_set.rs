//! A set of disjoint half-open byte ranges, used for cache residency and
//! dirty-page tracking.

use std::collections::BTreeMap;

/// A set of disjoint, coalesced half-open ranges `[start, end)` over `u64`.
///
/// Insertions merge with neighbours; removals split as needed. All
/// operations are `O(log n + k)` for `k` touched ranges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeSet {
    // start -> end, non-overlapping, non-adjacent.
    ranges: BTreeMap<u64, u64>,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Number of disjoint ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// True when no bytes are present.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Iterates the disjoint ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &e)| (s, e))
    }

    /// Inserts `[start, end)`, merging with any overlapping or adjacent
    /// ranges. Empty input is a no-op.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Merge with a predecessor that overlaps or touches.
        if let Some((&s, &e)) = self.ranges.range(..=start).next_back() {
            if e >= start {
                new_start = s;
                new_end = new_end.max(e);
                self.ranges.remove(&s);
            }
        }
        // Merge with successors.
        let successors: Vec<u64> = self
            .ranges
            .range(new_start..=new_end)
            .map(|(&s, _)| s)
            .collect();
        for s in successors {
            let e = self.ranges.remove(&s).expect("key just observed");
            new_end = new_end.max(e);
        }
        self.ranges.insert(new_start, new_end);
    }

    /// Removes `[start, end)`, splitting ranges as needed.
    pub fn remove(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // A predecessor may straddle the removal start.
        if let Some((&s, &e)) = self.ranges.range(..start).next_back() {
            if e > start {
                self.ranges.insert(s, start);
                if e > end {
                    self.ranges.insert(end, e);
                    return;
                }
            }
        }
        let contained: Vec<u64> = self.ranges.range(start..end).map(|(&s, _)| s).collect();
        for s in contained {
            let e = self.ranges.remove(&s).expect("key just observed");
            if e > end {
                self.ranges.insert(end, e);
            }
        }
    }

    /// Clears the set.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// True when every byte of `[start, end)` is present.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        match self.ranges.range(..=start).next_back() {
            Some((_, &e)) => e >= end,
            None => false,
        }
    }

    /// True when any byte of `[start, end)` is present.
    pub fn intersects(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        if let Some((_, &e)) = self.ranges.range(..=start).next_back() {
            if e > start {
                return true;
            }
        }
        self.ranges.range(start..end).next().is_some()
    }

    /// The sub-ranges of `[start, end)` *not* present, in order.
    pub fn gaps(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut gaps = Vec::new();
        if start >= end {
            return gaps;
        }
        let mut cursor = start;
        // A predecessor range may cover the beginning.
        if let Some((_, &e)) = self.ranges.range(..=start).next_back() {
            if e > cursor {
                cursor = e.min(end);
            }
        }
        for (&s, &e) in self.ranges.range(start..end) {
            if s > cursor {
                gaps.push((cursor, s.min(end)));
            }
            cursor = cursor.max(e.min(end));
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            gaps.push((cursor, end));
        }
        gaps
    }

    /// Removes and returns up to `max_bytes` from the front of the set,
    /// as whole or partial leading ranges. Used by the lazy writer to pick
    /// the next burst of dirty bytes.
    pub fn take_front(&mut self, max_bytes: u64) -> Vec<(u64, u64)> {
        let mut taken = Vec::new();
        let mut budget = max_bytes;
        while budget > 0 {
            let Some((&s, &e)) = self.ranges.iter().next() else {
                break;
            };
            let len = e - s;
            if len <= budget {
                self.ranges.remove(&s);
                taken.push((s, e));
                budget -= len;
            } else {
                self.ranges.remove(&s);
                self.ranges.insert(s + budget, e);
                taken.push((s, s + budget));
                budget = 0;
            }
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[(u64, u64)]) -> RangeSet {
        let mut rs = RangeSet::new();
        for &(s, e) in ranges {
            rs.insert(s, e);
        }
        rs
    }

    #[test]
    fn insert_coalesces_adjacent_and_overlapping() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        rs.insert(10, 20);
        assert_eq!(rs.range_count(), 1);
        assert_eq!(rs.covered_bytes(), 20);
        rs.insert(30, 40);
        rs.insert(15, 35);
        assert_eq!(rs.range_count(), 1);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(0, 40)]);
    }

    #[test]
    fn insert_empty_is_noop() {
        let mut rs = RangeSet::new();
        rs.insert(5, 5);
        assert!(rs.is_empty());
    }

    #[test]
    fn remove_splits() {
        let mut rs = set(&[(0, 100)]);
        rs.remove(40, 60);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(0, 40), (60, 100)]);
        rs.remove(0, 40);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(60, 100)]);
        rs.remove(50, 200);
        assert!(rs.is_empty());
    }

    #[test]
    fn remove_across_multiple_ranges() {
        let mut rs = set(&[(0, 10), (20, 30), (40, 50)]);
        rs.remove(5, 45);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(0, 5), (45, 50)]);
    }

    #[test]
    fn covers_and_intersects() {
        let rs = set(&[(10, 20), (30, 40)]);
        assert!(rs.covers(10, 20));
        assert!(rs.covers(12, 18));
        assert!(!rs.covers(15, 25));
        assert!(!rs.covers(0, 5));
        assert!(rs.covers(7, 7), "empty range is trivially covered");
        assert!(rs.intersects(15, 35));
        assert!(rs.intersects(39, 100));
        assert!(!rs.intersects(20, 30), "half-open ends do not touch");
        assert!(!rs.intersects(0, 10));
    }

    #[test]
    fn gaps_enumerates_missing_pieces() {
        let rs = set(&[(10, 20), (30, 40)]);
        assert_eq!(rs.gaps(0, 50), vec![(0, 10), (20, 30), (40, 50)]);
        assert_eq!(rs.gaps(10, 40), vec![(20, 30)]);
        assert_eq!(rs.gaps(12, 18), vec![]);
        assert_eq!(rs.gaps(0, 5), vec![(0, 5)]);
        assert_eq!(rs.gaps(35, 45), vec![(40, 45)]);
    }

    #[test]
    fn take_front_respects_budget() {
        let mut rs = set(&[(0, 10), (20, 30)]);
        assert_eq!(rs.take_front(15), vec![(0, 10), (20, 25)]);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(25, 30)]);
        assert_eq!(rs.take_front(100), vec![(25, 30)]);
        assert!(rs.is_empty());
        assert_eq!(rs.take_front(10), vec![]);
    }

    #[test]
    fn covered_bytes_totals() {
        let rs = set(&[(0, 10), (20, 25)]);
        assert_eq!(rs.covered_bytes(), 15);
    }
}
