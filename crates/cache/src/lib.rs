//! The Windows NT cache manager model.
//!
//! §9 of the paper: the cache manager never directly asks a file system to
//! read or write; it maps files into virtual memory and lets page faults
//! pull data in, while read-ahead and lazy-write policies decide *when*.
//! This crate models those policies as a pure state machine: every entry
//! point returns the paging actions the real cache manager would have
//! triggered, and the caller (the driver stack in `nt-io`) turns them into
//! paging-I/O requests. Keeping the crate free of I/O-stack types makes the
//! policies independently testable — including the specific behaviours the
//! paper measures:
//!
//! * read-ahead granularity of 4096 bytes, boosted to 64 KB by FAT/NTFS;
//! * doubling of read-ahead when the file was opened sequential-only;
//! * prediction of sequential access on the 3rd sequential request, with a
//!   fuzzy comparison that masks the low 7 bits of offsets;
//! * lazy-writer scans once per second, writing a quarter of the dirty
//!   pages in bursts of requests up to 64 KB;
//! * the temporary-file attribute keeping dirty pages off the disk queue;
//! * the SetEndOfFile issued before close of a written file (§8.3);
//! * the two-stage cleanup/close dance (§8.1): read-cached files close
//!   4–10 ms after cleanup, write-cached ones only after dirty data drains.

pub mod manager;
pub mod metrics;
pub mod range_set;
pub mod read_ahead;

pub use manager::{
    CacheConfig, CacheManager, CacheOpenHints, CleanupOutcome, PagingAction, PagingIo, ReadOutcome,
    WriteOutcome, PAGE_SIZE,
};
pub use metrics::CacheMetrics;
pub use range_set::RangeSet;
pub use read_ahead::{ReadAheadDecision, ReadAheadState};
