//! Cache-manager counters backing the §9 analysis.

/// Monotonic counters kept by the [`crate::CacheManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Copy-reads fully satisfied from resident data.
    pub read_hits: u64,
    /// Copy-reads that needed at least one paging read.
    pub read_misses: u64,
    /// Bytes returned to readers from the cache.
    pub read_hit_bytes: u64,
    /// Bytes copy-reads asked for (clipped to EOF). Conservation: equals
    /// `read_hit_bytes + miss_resident_bytes + miss_pending_bytes`.
    pub requested_read_bytes: u64,
    /// On missing reads, the requested bytes that *were* already resident.
    pub miss_resident_bytes: u64,
    /// On missing reads, the requested bytes that had to be paged in.
    pub miss_pending_bytes: u64,
    /// Bytes that had to be paged in on demand (excludes read-ahead;
    /// page-rounded, so ≥ `miss_pending_bytes`).
    pub demand_read_bytes: u64,
    /// Demand paging reads issued (the non-speculative `PagingIo`s).
    pub demand_read_ios: u64,
    /// Read-ahead paging reads issued.
    pub readahead_ios: u64,
    /// Bytes prefetched by read-ahead.
    pub readahead_bytes: u64,
    /// Copy-writes absorbed by the cache (write-behind).
    pub cached_writes: u64,
    /// Bytes dirtied in the cache (page-rounded per write; overlapping
    /// rewrites count every time, so this is a volume, not a population).
    pub dirtied_bytes: u64,
    /// Bytes that *became* dirty (page-rounded, deduplicated against
    /// already-dirty ranges). Conservation: every such byte later leaves
    /// through the lazy writer, a flush, a purge, or remains dirty at
    /// end of run.
    pub newly_dirtied_bytes: u64,
    /// Paging writes issued by the lazy writer.
    pub lazy_writes: u64,
    /// Bytes written to disk by the lazy writer.
    pub lazy_write_bytes: u64,
    /// Paging writes issued by explicit flushes or write-through.
    pub forced_writes: u64,
    /// Bytes written by flushes / write-through.
    pub forced_write_bytes: u64,
    /// The explicit-flush share of `forced_write_bytes` (bytes drained
    /// from the dirty set by FlushFileBuffers, as opposed to
    /// write-through bytes that never dirtied a page).
    pub flush_write_bytes: u64,
    /// Dirty bytes discarded by purges (deleted before ever reaching disk).
    pub purged_dirty_bytes: u64,
    /// Files purged while still holding unwritten data (§6.3's 23 % / 5 %).
    pub purged_with_dirty: u64,
    /// Files purged clean.
    pub purged_clean: u64,
    /// Cache maps initialised (caching initiations, §10).
    pub cache_inits: u64,
    /// Dirty bytes the temporary-file attribute kept off the disk queue.
    pub temporary_bytes_spared: u64,
}

impl CacheMetrics {
    /// Fraction of copy-reads that hit, in [0, 1]; 0 when no reads.
    pub fn hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }

    /// Total paging-write bytes that reached the disk.
    pub fn disk_write_bytes(&self) -> u64 {
        self.lazy_write_bytes + self.forced_write_bytes
    }

    /// Posts the cache manager's side of the conservation accounts.
    ///
    /// The cache credits the paging traffic it originated (demand misses,
    /// read-ahead, lazy/forced writes) against the I/O layer's debits, and
    /// posts both sides of its two internal identities: the read split
    /// (every requested byte is a hit, already-resident, or paged-in) and
    /// the dirty lifecycle (every newly dirtied byte leaves via the lazy
    /// writer, a flush, a purge, or is still dirty at end of run —
    /// `residual_dirty_bytes`, which lives on the manager, not here).
    pub fn post_conservation(&self, residual_dirty_bytes: u64, ledger: &mut nt_audit::Ledger) {
        use nt_audit::accounts::*;
        ledger.credit(PAGING_READ_IOS, self.demand_read_ios + self.readahead_ios);
        ledger.credit(
            PAGING_READ_BYTES,
            self.demand_read_bytes + self.readahead_bytes,
        );
        ledger.credit(PAGING_WRITE_IOS, self.forced_writes + self.lazy_writes);
        ledger.credit(
            PAGING_WRITE_BYTES,
            self.forced_write_bytes + self.lazy_write_bytes,
        );
        ledger.credit(CACHE_REQUEST_BYTES, self.requested_read_bytes);
        ledger.debit(CACHE_READ_SPLIT, self.requested_read_bytes);
        ledger.credit(
            CACHE_READ_SPLIT,
            self.read_hit_bytes + self.miss_resident_bytes + self.miss_pending_bytes,
        );
        ledger.debit(DIRTY_LIFECYCLE, self.newly_dirtied_bytes);
        ledger.credit(
            DIRTY_LIFECYCLE,
            self.lazy_write_bytes
                + self.flush_write_bytes
                + self.purged_dirty_bytes
                + residual_dirty_bytes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheMetrics::default().hit_rate(), 0.0);
        let m = CacheMetrics {
            read_hits: 3,
            read_misses: 1,
            ..CacheMetrics::default()
        };
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
    }
}
