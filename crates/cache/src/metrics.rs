//! Cache-manager counters backing the §9 analysis.

/// Monotonic counters kept by the [`crate::CacheManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Copy-reads fully satisfied from resident data.
    pub read_hits: u64,
    /// Copy-reads that needed at least one paging read.
    pub read_misses: u64,
    /// Bytes returned to readers from the cache.
    pub read_hit_bytes: u64,
    /// Bytes that had to be paged in on demand (excludes read-ahead).
    pub demand_read_bytes: u64,
    /// Read-ahead paging reads issued.
    pub readahead_ios: u64,
    /// Bytes prefetched by read-ahead.
    pub readahead_bytes: u64,
    /// Copy-writes absorbed by the cache (write-behind).
    pub cached_writes: u64,
    /// Bytes dirtied in the cache.
    pub dirtied_bytes: u64,
    /// Paging writes issued by the lazy writer.
    pub lazy_writes: u64,
    /// Bytes written to disk by the lazy writer.
    pub lazy_write_bytes: u64,
    /// Paging writes issued by explicit flushes or write-through.
    pub forced_writes: u64,
    /// Bytes written by flushes / write-through.
    pub forced_write_bytes: u64,
    /// Dirty bytes discarded by purges (deleted before ever reaching disk).
    pub purged_dirty_bytes: u64,
    /// Files purged while still holding unwritten data (§6.3's 23 % / 5 %).
    pub purged_with_dirty: u64,
    /// Files purged clean.
    pub purged_clean: u64,
    /// Cache maps initialised (caching initiations, §10).
    pub cache_inits: u64,
    /// Dirty bytes the temporary-file attribute kept off the disk queue.
    pub temporary_bytes_spared: u64,
}

impl CacheMetrics {
    /// Fraction of copy-reads that hit, in [0, 1]; 0 when no reads.
    pub fn hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }

    /// Total paging-write bytes that reached the disk.
    pub fn disk_write_bytes(&self) -> u64 {
        self.lazy_write_bytes + self.forced_write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheMetrics::default().hit_rate(), 0.0);
        let m = CacheMetrics {
            read_hits: 3,
            read_misses: 1,
            ..CacheMetrics::default()
        };
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
    }
}
