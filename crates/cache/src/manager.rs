//! The cache manager proper: per-file cache maps plus the global policies.
//!
//! The manager is generic over a file key `K` (the I/O layer uses its FCB
//! identifier) and is a *pure* state machine: methods return the paging
//! I/O the real cache manager would have triggered through the VM system,
//! and the caller performs it, reporting completions back via
//! [`CacheManager::complete_paging_read`].

use std::collections::{BTreeMap, BTreeSet};

use nt_obs::{Phase, Telemetry};
use nt_sim::{SimDuration, SimTime};

use crate::metrics::CacheMetrics;
use crate::range_set::RangeSet;
use crate::read_ahead::{ReadAheadDecision, ReadAheadState};

/// The VM page size; caching is page-granular.
pub const PAGE_SIZE: u64 = 4096;

fn page_floor(x: u64) -> u64 {
    x / PAGE_SIZE * PAGE_SIZE
}

fn page_ceil(x: u64) -> u64 {
    x.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// Tunables of the cache manager, defaulting to the behaviour the paper
/// measured on NT 4.0.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Standard read-ahead granularity (§9.1: 4096 bytes).
    pub readahead_granularity: u64,
    /// Boosted granularity FAT/NTFS request for most files (§9.1: 64 KB).
    pub boosted_granularity: u64,
    /// Files at least this large get the boosted granularity.
    pub boost_threshold: u64,
    /// Period of the lazy-writer scan (§9.2: every second).
    pub lazy_write_interval: SimDuration,
    /// The lazy writer writes `dirty / lazy_write_divisor` bytes per scan
    /// (NT uses an adaptive fraction; 1/8 is the classic figure).
    pub lazy_write_divisor: u64,
    /// Maximum size of a single lazy-write request (§9.2: up to 64 KB).
    pub max_write_burst: u64,
    /// Maximum lazy-write requests issued per file per scan (§9.2: bursts
    /// of 2–8 requests).
    pub max_burst_requests: usize,
    /// Delay between cleanup and close for clean files (§8.1).
    pub clean_close_delay: SimDuration,
    /// Ablation: disable read-ahead entirely (demand paging only).
    pub readahead_enabled: bool,
    /// Ablation: treat every file as write-through (no lazy writer).
    pub force_write_through: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            readahead_granularity: 4_096,
            boosted_granularity: 65_536,
            boost_threshold: 4_096,
            lazy_write_interval: SimDuration::from_secs(1),
            lazy_write_divisor: 8,
            max_write_burst: 65_536,
            max_burst_requests: 8,
            clean_close_delay: SimDuration::from_micros(6),
            readahead_enabled: true,
            force_write_through: false,
        }
    }
}

/// Open-time hints that shape caching for one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheOpenHints {
    /// FILE_SEQUENTIAL_ONLY was specified: read-ahead size doubles.
    pub sequential_only: bool,
    /// Write-through: copy-writes also go straight to disk.
    pub write_through: bool,
    /// FILE_ATTRIBUTE_TEMPORARY: the lazy writer skips this file's pages.
    pub temporary: bool,
}

/// One paging I/O the caller must perform against the file system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagingIo {
    /// Byte offset (page aligned).
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// True for paging writes, false for paging reads.
    pub write: bool,
    /// True when this read was speculative read-ahead rather than demand.
    pub readahead: bool,
}

/// A paging I/O attributed to a file, as produced by the lazy writer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PagingAction<K> {
    /// The file to write.
    pub key: K,
    /// The I/O to issue.
    pub io: PagingIo,
}

/// Result of a copy-read through the cache.
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// True when the request was fully satisfied from resident pages.
    pub hit: bool,
    /// Paging reads the caller must issue (demand misses and read-ahead).
    pub ios: Vec<PagingIo>,
    /// True when this read initiated caching for the file.
    pub initiated_caching: bool,
}

/// Result of a copy-write through the cache.
#[derive(Clone, Debug)]
pub struct WriteOutcome {
    /// Paging writes to issue immediately (write-through files only).
    pub ios: Vec<PagingIo>,
    /// True when this write initiated caching for the file.
    pub initiated_caching: bool,
}

/// Result of a handle cleanup (first stage of the two-stage close, §8.1).
#[derive(Clone, Debug)]
pub struct CleanupOutcome {
    /// The cache manager issues SetEndOfFile before close for files that
    /// had cached writes (§8.3), trimming page-granular lazy writes back
    /// to the true size.
    pub set_end_of_file: Option<u64>,
    /// How long after cleanup the close IRP should arrive. `None` means
    /// the file still has dirty data; close follows the drain (1–4 s).
    pub close_after: Option<SimDuration>,
}

#[derive(Debug)]
struct FileCache {
    resident: RangeSet,
    dirty: RangeSet,
    size: u64,
    ra: ReadAheadState,
    hints: CacheOpenHints,
    written: bool,
    close_pending: bool,
    last_touch: u64,
}

/// The cache manager.
pub struct CacheManager<K> {
    config: CacheConfig,
    // A BTreeMap keeps scan order deterministic: the lazy writer and the
    // trimmer iterate this map, and their visit order decides RNG draw
    // order downstream. Hash-order iteration would make identical seeds
    // diverge run to run.
    files: BTreeMap<K, FileCache>,
    // The lazy writer's worklist: keys with dirty pages or a deferred
    // close still waiting on the drain. The per-second scan visits only
    // these; clean resident maps (the vast majority on a long run) cost
    // the scan nothing. A BTreeSet so the visit order stays the key
    // order the full-map scan had.
    attention: BTreeSet<K>,
    // Running total of resident bytes, maintained on every range insert
    // and map drop, so the per-tick trim check is O(1) instead of a
    // full-map sum.
    resident_total: u64,
    metrics: CacheMetrics,
    telemetry: Telemetry,
    last_scan: SimTime,
    touch_clock: u64,
}

impl<K: Ord + Clone> CacheManager<K> {
    /// Creates a manager with the given tunables.
    pub fn new(config: CacheConfig) -> Self {
        CacheManager {
            config,
            files: BTreeMap::new(),
            attention: BTreeSet::new(),
            resident_total: 0,
            metrics: CacheMetrics::default(),
            telemetry: Telemetry::off(),
            last_scan: SimTime::ZERO,
            touch_clock: 0,
        }
    }

    /// Attaches a telemetry handle; cache spans nest under the owning
    /// machine's dispatch spans.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Creates a manager with the NT 4.0 defaults.
    pub fn with_defaults() -> Self {
        Self::new(CacheConfig::default())
    }

    /// The tunables in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters for the §9 analysis.
    pub fn metrics(&self) -> CacheMetrics {
        self.metrics
    }

    /// True when caching has been initiated for the file (§10: the I/O
    /// manager only attempts FastIO once this is the case).
    pub fn is_cached(&self, key: &K) -> bool {
        self.files.contains_key(key)
    }

    /// Total dirty bytes across all cached files.
    pub fn dirty_bytes(&self) -> u64 {
        self.files.values().map(|f| f.dirty.covered_bytes()).sum()
    }

    /// Number of cache maps currently live.
    pub fn cached_files(&self) -> usize {
        self.files.len()
    }

    fn granularity_for(&self, file_size: u64) -> u64 {
        if file_size >= self.config.boost_threshold {
            self.config.boosted_granularity
        } else {
            self.config.readahead_granularity
        }
    }

    fn ensure(&mut self, key: &K, file_size: u64, hints: CacheOpenHints) -> bool {
        let config_gran = self.granularity_for(file_size);
        let mut initiated = false;
        let entry = self.files.entry(key.clone()).or_insert_with(|| {
            initiated = true;
            FileCache {
                resident: RangeSet::new(),
                dirty: RangeSet::new(),
                size: file_size,
                ra: ReadAheadState::new(config_gran, hints.sequential_only),
                hints,
                written: false,
                close_pending: false,
                last_touch: 0,
            }
        });
        entry.size = entry.size.max(file_size);
        if initiated {
            self.metrics.cache_inits += 1;
        }
        initiated
    }

    /// Copy-read `[offset, offset + len)`. Returns the paging reads the
    /// caller must issue; resident bytes are counted as hits.
    pub fn read(
        &mut self,
        key: &K,
        offset: u64,
        len: u64,
        file_size: u64,
        hints: CacheOpenHints,
    ) -> ReadOutcome {
        let _span = self.telemetry.span_child(Phase::Cache, "cache.read");
        let initiated = self.ensure(key, file_size, hints);
        self.touch_clock += 1;
        let clock = self.touch_clock;
        let readahead_enabled = self.config.readahead_enabled;
        let fc = self.files.get_mut(key).expect("ensured above");
        fc.last_touch = clock;
        let end = (offset + len).min(fc.size);
        let ra_decision = if readahead_enabled {
            fc.ra.on_read(offset, len, fc.size)
        } else {
            // Keep the sequential-detection state warm but clamp the
            // prefetch window to zero: pure demand paging.
            fc.ra.on_read(offset, len, 0);
            ReadAheadDecision::None
        };

        let requested = end.saturating_sub(offset);
        let mut ios = Vec::new();
        let mut demand_bytes = 0u64;
        let mut demand_ios = 0u64;
        let mut missing_request_bytes = 0u64;
        let mut readahead = (0u64, 0u64); // (ios, bytes)
        let hit;
        if end <= offset {
            // Read at or past EOF: nothing to fetch.
            hit = true;
        } else if fc.resident.covers(offset, end) {
            hit = true;
        } else if initiated {
            // Caching initiation (§9.1): the demand range and the initial
            // read-ahead are ONE paging read spanning from the request to
            // the prefetch horizon — which is why 92 % of read sessions
            // never need a second prefetch.
            let want = match ra_decision {
                ReadAheadDecision::Prefetch { start, len } => (start + len).max(end),
                ReadAheadDecision::None => end,
            };
            let (s, e) = (
                page_floor(offset),
                page_ceil(want).min(page_ceil(fc.size)).max(page_ceil(end)),
            );
            ios.push(PagingIo {
                offset: s,
                len: e - s,
                write: false,
                readahead: false,
            });
            self.metrics.read_misses += 1;
            self.metrics.demand_read_bytes += e - s;
            self.metrics.demand_read_ios += 1;
            // A fresh cache map holds nothing: the whole request is
            // pending on the paging read just issued.
            self.metrics.requested_read_bytes += requested;
            self.metrics.miss_pending_bytes += requested;
            return ReadOutcome {
                hit: false,
                ios,
                initiated_caching: initiated,
            };
        } else {
            hit = false;
            // Unrounded view of the request for the conservation ledger:
            // which of the asked-for bytes were resident vs pending.
            missing_request_bytes = fc
                .resident
                .gaps(offset, end)
                .iter()
                .map(|(s, e)| e - s)
                .sum();
            let clamp = page_ceil(end).min(page_ceil(fc.size));
            for (s, e) in fc.resident.gaps(page_floor(offset), clamp) {
                let (s, e) = (page_floor(s), page_ceil(e));
                ios.push(PagingIo {
                    offset: s,
                    len: e - s,
                    write: false,
                    readahead: false,
                });
                demand_bytes += e - s;
                demand_ios += 1;
            }
        }

        if let ReadAheadDecision::Prefetch { start, len } = ra_decision {
            let (s0, e0) = (page_floor(start), page_ceil(start + len));
            for (s, e) in fc.resident.gaps(s0, e0) {
                let (s, e) = (page_floor(s), page_ceil(e));
                // Skip ranges already queued as demand reads.
                if ios
                    .iter()
                    .any(|io| !io.write && io.offset <= s && io.offset + io.len >= e)
                {
                    continue;
                }
                ios.push(PagingIo {
                    offset: s,
                    len: e - s,
                    write: false,
                    readahead: true,
                });
                readahead.0 += 1;
                readahead.1 += e - s;
            }
        }

        self.metrics.requested_read_bytes += requested;
        if hit {
            self.metrics.read_hits += 1;
            self.metrics.read_hit_bytes += requested;
        } else {
            self.metrics.read_misses += 1;
            self.metrics.demand_read_bytes += demand_bytes;
            self.metrics.demand_read_ios += demand_ios;
            self.metrics.miss_pending_bytes += missing_request_bytes;
            self.metrics.miss_resident_bytes += requested - missing_request_bytes;
        }
        self.metrics.readahead_ios += readahead.0;
        self.metrics.readahead_bytes += readahead.1;

        ReadOutcome {
            hit,
            ios,
            initiated_caching: initiated,
        }
    }

    /// Reports completion of a paging read: the pages are now resident.
    pub fn complete_paging_read(&mut self, key: &K, offset: u64, len: u64) {
        if let Some(fc) = self.files.get_mut(key) {
            let before = fc.resident.covered_bytes();
            fc.resident
                .insert(page_floor(offset), page_ceil(offset + len));
            self.resident_total += fc.resident.covered_bytes() - before;
        }
    }

    /// Copy-write `[offset, offset + len)` into the cache.
    pub fn write(
        &mut self,
        key: &K,
        offset: u64,
        len: u64,
        file_size: u64,
        hints: CacheOpenHints,
    ) -> WriteOutcome {
        let _span = self.telemetry.span_child(Phase::Cache, "cache.write");
        let initiated = self.ensure(key, file_size, hints);
        self.touch_clock += 1;
        let clock = self.touch_clock;
        let self_force_write_through = self.config.force_write_through;
        let fc = self.files.get_mut(key).expect("ensured above");
        fc.last_touch = clock;
        let end = offset + len;
        fc.size = fc.size.max(end);
        fc.ra.note_size(fc.size);
        fc.written = true;
        let (ps, pe) = (page_floor(offset), page_ceil(end));
        let resident_before = fc.resident.covered_bytes();
        fc.resident.insert(ps, pe);
        self.resident_total += fc.resident.covered_bytes() - resident_before;
        let mut ios = Vec::new();
        let through = hints.write_through || fc.hints.write_through || self_force_write_through;
        let mut newly_dirtied = 0;
        if through {
            ios.push(PagingIo {
                offset: ps,
                len: pe - ps,
                write: true,
                readahead: false,
            });
        } else {
            let before = fc.dirty.covered_bytes();
            fc.dirty.insert(ps, pe);
            newly_dirtied = fc.dirty.covered_bytes() - before;
            self.attention.insert(key.clone());
        }
        if through {
            self.metrics.forced_writes += 1;
            self.metrics.forced_write_bytes += pe - ps;
        } else {
            self.metrics.cached_writes += 1;
            self.metrics.dirtied_bytes += pe - ps;
            self.metrics.newly_dirtied_bytes += newly_dirtied;
        }
        WriteOutcome {
            ios,
            initiated_caching: initiated,
        }
    }

    /// Explicit flush (FlushFileBuffers): returns the paging writes that
    /// push every dirty page of the file to disk.
    pub fn flush(&mut self, key: &K) -> Vec<PagingIo> {
        let Some(fc) = self.files.get_mut(key) else {
            return Vec::new();
        };
        let mut ios = Vec::new();
        loop {
            let chunk = fc.dirty.take_front(self.config.max_write_burst);
            if chunk.is_empty() {
                break;
            }
            for (s, e) in chunk {
                ios.push(PagingIo {
                    offset: s,
                    len: e - s,
                    write: true,
                    readahead: false,
                });
                self.metrics.forced_writes += 1;
                self.metrics.forced_write_bytes += e - s;
                self.metrics.flush_write_bytes += e - s;
            }
        }
        if !fc.close_pending {
            self.attention.remove(key);
        }
        ios
    }

    /// One lazy-writer scan (§9.2). Call once per
    /// [`CacheConfig::lazy_write_interval`]. Returns the paging writes to
    /// issue, plus the keys whose deferred close can now complete.
    pub fn lazy_scan(&mut self, now: SimTime) -> (Vec<PagingAction<K>>, Vec<K>) {
        let _span = self.telemetry.span(Phase::Cache, "cache.lazy_scan", now);
        self.last_scan = now;
        let mut actions = Vec::new();
        let mut closable = Vec::new();
        // Only the worklist — clean resident maps never concern the lazy
        // writer. The keys are snapshotted up front because draining a
        // file can retire it from the worklist mid-scan.
        let worklist: Vec<K> = self.attention.iter().cloned().collect();
        for key in &worklist {
            let Some(fc) = self.files.get_mut(key) else {
                self.attention.remove(key);
                continue;
            };
            if fc.hints.temporary {
                // §6.3: the temporary attribute keeps the lazy writer away.
                let spared = fc.dirty.covered_bytes();
                if spared > 0 {
                    self.metrics.temporary_bytes_spared =
                        self.metrics.temporary_bytes_spared.saturating_add(spared);
                }
                if fc.close_pending {
                    closable.push(key.clone());
                    // The deferred close is reported exactly once; the
                    // map stays on the worklist only for its dirty pages.
                    fc.close_pending = false;
                }
                if fc.dirty.is_empty() {
                    self.attention.remove(key);
                }
                continue;
            }
            let dirty = fc.dirty.covered_bytes();
            if dirty == 0 {
                if fc.close_pending {
                    closable.push(key.clone());
                    // Drained and reported: the map is an ordinary clean
                    // resident map from here on (and trimmable again).
                    fc.close_pending = false;
                }
                self.attention.remove(key);
                continue;
            }
            // Write an eighth of the dirty data, at least one page, capped
            // by the burst limits.
            let budget = (dirty / self.config.lazy_write_divisor)
                .max(PAGE_SIZE)
                .min(self.config.max_write_burst * self.config.max_burst_requests as u64);
            let mut issued = 0usize;
            let mut remaining = budget;
            while remaining > 0 && issued < self.config.max_burst_requests {
                let chunk = fc
                    .dirty
                    .take_front(remaining.min(self.config.max_write_burst));
                if chunk.is_empty() {
                    break;
                }
                for (s, e) in chunk {
                    actions.push(PagingAction {
                        key: key.clone(),
                        io: PagingIo {
                            offset: s,
                            len: e - s,
                            write: true,
                            readahead: false,
                        },
                    });
                    self.metrics.lazy_writes += 1;
                    self.metrics.lazy_write_bytes += e - s;
                    remaining = remaining.saturating_sub(e - s);
                    issued += 1;
                    if issued >= self.config.max_burst_requests {
                        break;
                    }
                }
            }
            if fc.dirty.is_empty() {
                if fc.close_pending {
                    closable.push(key.clone());
                    fc.close_pending = false;
                }
                self.attention.remove(key);
            }
        }
        (actions, closable)
    }

    /// Handle cleanup (§8.1). The I/O manager sends a cleanup IRP when the
    /// last user handle closes; the cache manager decides when the final
    /// close IRP can follow.
    pub fn cleanup(&mut self, key: &K, true_size: u64) -> CleanupOutcome {
        let Some(fc) = self.files.get_mut(key) else {
            return CleanupOutcome {
                set_end_of_file: None,
                close_after: Some(self.config.clean_close_delay),
            };
        };
        let set_eof = fc.written.then_some(true_size);
        if fc.dirty.is_empty() || fc.hints.temporary {
            CleanupOutcome {
                set_end_of_file: set_eof,
                close_after: Some(self.config.clean_close_delay),
            }
        } else {
            fc.close_pending = true;
            self.attention.insert(key.clone());
            CleanupOutcome {
                set_end_of_file: set_eof,
                close_after: None,
            }
        }
    }

    /// Drops a file's cache map (final close, delete, or overwrite purge).
    /// Returns the dirty bytes that never reached the disk — §6.3 found
    /// unwritten pages present in 23 % of overwrites and 5 % of deletes.
    pub fn purge(&mut self, key: &K) -> u64 {
        self.attention.remove(key);
        match self.files.remove(key) {
            Some(fc) => {
                self.resident_total -= fc.resident.covered_bytes();
                let lost = fc.dirty.covered_bytes();
                if lost > 0 {
                    self.metrics.purged_dirty_bytes += lost;
                    self.metrics.purged_with_dirty += 1;
                } else {
                    self.metrics.purged_clean += 1;
                }
                lost
            }
            None => 0,
        }
    }

    /// Total resident (clean + dirty) cached bytes. O(1): the total is
    /// maintained incrementally (see `recounted_resident_bytes` for the
    /// ground truth the tests audit it against).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_total
    }

    /// Recomputes the resident total from the cache maps — the slow
    /// ground truth for the incremental counter.
    #[doc(hidden)]
    pub fn recounted_resident_bytes(&self) -> u64 {
        self.files
            .values()
            .map(|f| f.resident.covered_bytes())
            .sum()
    }

    /// Trims cold cache maps until resident data fits `budget_bytes`.
    ///
    /// Victims are the least-recently-touched files; maps with dirty pages
    /// or a pending deferred close are never trimmed (their data is still
    /// on its way to the disk). Returns the number of maps dropped. This
    /// models the standby-list reclaim that bounds the real cache.
    pub fn trim(&mut self, budget_bytes: u64) -> usize {
        let mut dropped = 0;
        while self.resident_total > budget_bytes {
            let victim = self
                .files
                .iter()
                .filter(|(_, f)| f.dirty.is_empty() && !f.close_pending)
                .min_by_key(|(_, f)| f.last_touch)
                .map(|(k, f)| (k.clone(), f.resident.covered_bytes()));
            let Some((key, bytes)) = victim else {
                break;
            };
            self.files.remove(&key);
            self.attention.remove(&key);
            self.metrics.purged_clean += 1;
            self.resident_total -= bytes;
            dropped += 1;
        }
        dropped
    }

    /// Read-ahead granularity currently in force for a cached file.
    pub fn file_granularity(&self, key: &K) -> Option<u64> {
        self.files.get(key).map(|fc| fc.ra.granularity())
    }

    /// Dirty bytes for one file.
    pub fn file_dirty_bytes(&self, key: &K) -> u64 {
        self.files.get(key).map_or(0, |fc| fc.dirty.covered_bytes())
    }

    /// Size of the lazy writer's worklist — the only maps the per-second
    /// scan touches. Clean resident maps never appear here.
    #[doc(hidden)]
    pub fn scan_worklist_len(&self) -> usize {
        self.attention.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Mgr = CacheManager<u32>;

    fn mgr() -> Mgr {
        Mgr::with_defaults()
    }

    const NO_HINTS: CacheOpenHints = CacheOpenHints {
        sequential_only: false,
        write_through: false,
        temporary: false,
    };

    #[test]
    fn first_read_misses_then_hits() {
        let mut m = mgr();
        let out = m.read(&1, 0, 512, 10_000, NO_HINTS);
        assert!(!out.hit);
        assert!(out.initiated_caching);
        assert!(!out.ios.is_empty());
        for io in &out.ios {
            m.complete_paging_read(&1, io.offset, io.len);
        }
        let out2 = m.read(&1, 512, 512, 10_000, NO_HINTS);
        assert!(out2.hit, "after prefetch completes, reads hit");
        assert!(out2.ios.is_empty());
        assert!(m.metrics().hit_rate() > 0.0);
    }

    #[test]
    fn small_file_single_prefetch_covers_everything() {
        // §9.1: 92 % of read sessions needed exactly one prefetch. For a
        // boosted file smaller than 64 KB the first read loads it all.
        let mut m = mgr();
        let size = 26_000;
        let out = m.read(&1, 0, 4096, size, NO_HINTS);
        let prefetched: u64 = out.ios.iter().map(|io| io.len).sum();
        assert!(prefetched >= size, "one prefetch spans the file");
        for io in &out.ios {
            m.complete_paging_read(&1, io.offset, io.len);
        }
        let mut off = 4096;
        while off < size {
            let o = m.read(&1, off, 4096, size, NO_HINTS);
            assert!(o.hit, "no further paging reads at offset {off}");
            off += 4096;
        }
    }

    #[test]
    fn boost_threshold_selects_granularity() {
        let mut m = mgr();
        m.read(&1, 0, 100, 1_000, NO_HINTS);
        assert_eq!(m.file_granularity(&1), Some(4_096), "small file: 4 KB");
        m.read(&2, 0, 100, 1 << 20, NO_HINTS);
        assert_eq!(m.file_granularity(&2), Some(65_536), "big file: boosted");
    }

    #[test]
    fn cached_write_dirties_pages_until_lazy_scan() {
        let mut m = mgr();
        let out = m.write(&1, 0, 8_192, 0, NO_HINTS);
        assert!(out.ios.is_empty(), "write-behind issues nothing");
        assert_eq!(m.dirty_bytes(), 8_192);
        let (actions, _) = m.lazy_scan(SimTime::from_secs(1));
        assert!(!actions.is_empty());
        let written: u64 = actions.iter().map(|a| a.io.len).sum();
        assert!(written >= PAGE_SIZE);
        assert!(m.dirty_bytes() < 8_192);
    }

    #[test]
    fn lazy_scan_drains_in_bursts() {
        let mut m = mgr();
        m.write(&1, 0, 1 << 20, 0, NO_HINTS); // 1 MB dirty
        let (actions, _) = m.lazy_scan(SimTime::from_secs(1));
        assert!(actions.len() <= m.config().max_burst_requests);
        for a in &actions {
            assert!(a.io.len <= m.config().max_write_burst);
            assert!(a.io.write);
        }
        let mut scans = 1;
        while m.dirty_bytes() > 0 {
            m.lazy_scan(SimTime::from_secs(1 + scans));
            scans += 1;
            assert!(scans < 1_000, "lazy writer must drain eventually");
        }
    }

    #[test]
    fn write_through_writes_immediately() {
        let mut m = mgr();
        let hints = CacheOpenHints {
            write_through: true,
            ..NO_HINTS
        };
        let out = m.write(&1, 0, 4_096, 0, hints);
        assert_eq!(out.ios.len(), 1);
        assert!(out.ios[0].write);
        assert_eq!(m.dirty_bytes(), 0);
    }

    #[test]
    fn temporary_files_never_reach_disk() {
        let mut m = mgr();
        let hints = CacheOpenHints {
            temporary: true,
            ..NO_HINTS
        };
        m.write(&1, 0, 65_536, 0, hints);
        let (actions, _) = m.lazy_scan(SimTime::from_secs(1));
        assert!(actions.is_empty(), "temporary pages stay in memory");
        assert!(m.metrics().temporary_bytes_spared >= 65_536);
        let lost = m.purge(&1);
        assert_eq!(lost, 65_536);
    }

    #[test]
    fn flush_clears_all_dirty() {
        let mut m = mgr();
        m.write(&1, 0, 200_000, 0, NO_HINTS);
        let ios = m.flush(&1);
        let total: u64 = ios.iter().map(|io| io.len).sum();
        assert_eq!(total, page_ceil(200_000));
        assert_eq!(m.dirty_bytes(), 0);
        for io in ios {
            assert!(io.len <= m.config().max_write_burst);
        }
    }

    #[test]
    fn cleanup_clean_file_closes_quickly() {
        let mut m = mgr();
        m.read(&1, 0, 512, 4_096, NO_HINTS);
        let out = m.cleanup(&1, 4_096);
        assert_eq!(out.set_end_of_file, None, "read-only: no SetEndOfFile");
        assert!(out.close_after.is_some());
    }

    #[test]
    fn cleanup_dirty_file_defers_close_until_drained() {
        let mut m = mgr();
        m.write(&1, 0, 100_000, 0, NO_HINTS);
        let out = m.cleanup(&1, 100_000);
        assert_eq!(out.set_end_of_file, Some(100_000), "§8.3 SetEndOfFile");
        assert!(out.close_after.is_none(), "close waits for the drain");
        let mut closable = Vec::new();
        for s in 1..100 {
            let (_, c) = m.lazy_scan(SimTime::from_secs(s));
            closable = c;
            if !closable.is_empty() {
                break;
            }
        }
        assert_eq!(closable, vec![1], "close signalled after drain");
    }

    #[test]
    fn purge_reports_unwritten_dirty_data() {
        let mut m = mgr();
        m.write(&1, 0, 4_096, 0, NO_HINTS);
        assert_eq!(m.purge(&1), 4_096);
        assert_eq!(m.metrics().purged_with_dirty, 1);
        assert_eq!(m.purge(&1), 0, "second purge is a no-op");
        m.read(&2, 0, 100, 100, NO_HINTS);
        assert_eq!(m.purge(&2), 0);
        assert_eq!(m.metrics().purged_clean, 1);
    }

    #[test]
    fn trim_evicts_cold_clean_maps_only() {
        let mut m = mgr();
        // File 1: clean resident data, touched first (cold).
        let out = m.read(&1, 0, 4_096, 100_000, NO_HINTS);
        for io in &out.ios {
            m.complete_paging_read(&1, io.offset, io.len);
        }
        // File 2: dirty data (never trimmable).
        m.write(&2, 0, 65_536, 0, NO_HINTS);
        // File 3: clean, touched last (warm).
        let out = m.read(&3, 0, 4_096, 100_000, NO_HINTS);
        for io in &out.ios {
            m.complete_paging_read(&3, io.offset, io.len);
        }
        let before = m.resident_bytes();
        assert!(before > 65_536);
        let dropped = m.trim(70_000);
        assert!(dropped >= 1);
        assert!(!m.is_cached(&1), "coldest clean file evicted");
        assert!(m.is_cached(&2), "dirty file protected");
        // A zero budget still cannot evict dirty data.
        m.trim(0);
        assert!(m.is_cached(&2));
    }

    #[test]
    fn ablation_no_readahead_pages_on_demand_only() {
        let mut m = Mgr::new(CacheConfig {
            readahead_enabled: false,
            ..CacheConfig::default()
        });
        let out = m.read(&1, 0, 512, 1 << 20, NO_HINTS);
        let total: u64 = out.ios.iter().map(|io| io.len).sum();
        assert_eq!(total, PAGE_SIZE, "exactly the faulting page, no prefetch");
        assert!(out.ios.iter().all(|io| !io.readahead));
        assert_eq!(m.metrics().readahead_ios, 0);
    }

    #[test]
    fn ablation_force_write_through_bypasses_lazy_writer() {
        let mut m = Mgr::new(CacheConfig {
            force_write_through: true,
            ..CacheConfig::default()
        });
        let out = m.write(&1, 0, 8_192, 0, NO_HINTS);
        assert_eq!(out.ios.len(), 1, "write goes straight to disk");
        assert_eq!(m.dirty_bytes(), 0);
        let (actions, _) = m.lazy_scan(SimTime::from_secs(1));
        assert!(actions.is_empty());
    }

    #[test]
    fn eof_read_is_trivially_hit() {
        let mut m = mgr();
        m.read(&1, 0, 100, 100, NO_HINTS);
        let out = m.read(&1, 200, 50, 100, NO_HINTS);
        assert!(out.hit);
        assert!(out.ios.is_empty());
    }

    #[test]
    fn lazy_scan_worklist_stays_small_as_clean_maps_accumulate() {
        // Regression: the per-second scan used to walk every cache map,
        // making a multi-day run quadratic in simulated time as clean
        // resident maps piled up. Only dirty / close-pending maps may
        // cost the scan anything.
        let mut m = mgr();
        for key in 0..500u32 {
            let out = m.read(&key, 0, 4_096, 50_000, NO_HINTS);
            for io in &out.ios {
                m.complete_paging_read(&key, io.offset, io.len);
            }
        }
        m.write(&1_000, 0, 8_192, 0, NO_HINTS);
        assert_eq!(m.cached_files(), 501);
        assert_eq!(m.scan_worklist_len(), 1, "only the dirty map is scanned");
        // Drain it: the worklist empties even though every map stays.
        while m.dirty_bytes() > 0 {
            m.lazy_scan(SimTime::from_secs(1));
        }
        assert_eq!(m.scan_worklist_len(), 0);
        assert_eq!(m.cached_files(), 501);
    }

    #[test]
    fn resident_counter_tracks_ground_truth_through_churn() {
        // Regression: `resident_bytes` is now an O(1) counter; it must
        // match a full recount through reads, overlapping writes, purges
        // and trims.
        let mut m = mgr();
        for key in 0..40u32 {
            let out = m.read(&key, 0, 12_288, 200_000, NO_HINTS);
            for io in &out.ios {
                m.complete_paging_read(&key, io.offset, io.len);
            }
            // Overlap the resident ranges so the deltas are non-trivial.
            m.write(&key, 4_096, 16_384, 200_000, NO_HINTS);
            m.write(&key, 8_192, 4_096, 200_000, NO_HINTS);
        }
        assert_eq!(m.resident_bytes(), m.recounted_resident_bytes());
        for key in 0..10u32 {
            m.purge(&key);
        }
        assert_eq!(m.resident_bytes(), m.recounted_resident_bytes());
        m.flush(&11);
        m.lazy_scan(SimTime::from_secs(1));
        m.trim(64_000);
        assert_eq!(m.resident_bytes(), m.recounted_resident_bytes());
        assert!(m.resident_bytes() > 0);
    }

    #[test]
    fn drained_deferred_close_is_reported_once_and_map_becomes_trimmable() {
        // A deferred close used to pin its cache map forever: the map
        // kept `close_pending` after the drain was reported, so the
        // trimmer could never evict it. The drain now clears the flag.
        let mut m = mgr();
        m.write(&1, 0, 4_096, 0, NO_HINTS);
        let out = m.cleanup(&1, 4_096);
        assert!(out.close_after.is_none(), "dirty close is deferred");
        let mut reported = 0;
        for s in 1..=10 {
            let (_, closable) = m.lazy_scan(SimTime::from_secs(s));
            reported += closable.iter().filter(|k| **k == 1).count();
        }
        assert_eq!(reported, 1, "drain reported exactly once");
        assert!(m.is_cached(&1), "map stays resident after close");
        m.trim(0);
        assert!(!m.is_cached(&1), "drained map is trimmable again");
    }
}
