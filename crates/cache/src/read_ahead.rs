//! The read-ahead policy (§9.1 of the paper).
//!
//! The cache manager predicts sequential access and loads data before the
//! application asks for it. The measured behaviours modelled here:
//!
//! * the standard granularity is 4096 bytes, and the file system may boost
//!   it per file (FAT and NTFS often boost to 64 KB);
//! * when the file was opened with the sequential-only hint the cache
//!   manager doubles the read-ahead size;
//! * without the hint, read-ahead triggers on the **3rd** of a run of
//!   sequential requests;
//! * sequentiality is *fuzzy*: offsets are compared with the low 7 bits
//!   masked, tolerating small gaps (§9.1 measured this widens the
//!   sequential classification by about 1.5 %).

/// Mask applied to offsets before comparing for sequentiality.
pub const FUZZY_MASK: u64 = !0x7F;

/// What the policy wants prefetched after a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadAheadDecision {
    /// No prefetch.
    None,
    /// Prefetch `[start, start + len)`.
    Prefetch {
        /// Start offset (page aligned by the manager).
        start: u64,
        /// Prefetch length in bytes (already doubled for sequential-only).
        len: u64,
    },
}

/// Per-file read-ahead state.
#[derive(Clone, Debug)]
pub struct ReadAheadState {
    granularity: u64,
    sequential_only: bool,
    last_end: Option<u64>,
    run_length: u32,
    /// Highest offset the policy has decided to prefetch up to.
    prefetched_to: u64,
}

impl ReadAheadState {
    /// Creates the state for a newly cached file.
    pub fn new(granularity: u64, sequential_only: bool) -> Self {
        ReadAheadState {
            granularity: granularity.max(1),
            sequential_only,
            last_end: None,
            run_length: 0,
            prefetched_to: 0,
        }
    }

    /// Effective read-ahead unit: doubled under the sequential-only hint.
    pub fn unit(&self) -> u64 {
        if self.sequential_only {
            self.granularity * 2
        } else {
            self.granularity
        }
    }

    /// The per-file granularity (after any file-system boost).
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Length of the current sequential run, in requests.
    pub fn run_length(&self) -> u32 {
        self.run_length
    }

    /// True when `offset` continues the previous request sequentially,
    /// under the fuzzy 7-bit mask.
    ///
    /// The fuzzy comparison tolerates only small *forward* gaps: a read
    /// must resume at or after the previous request's end, within the
    /// same 128-byte block. Re-reads and backwards seeks inside the block
    /// are not sequential — treating them as such inflates run lengths
    /// and over-triggers prefetch on looping readers.
    pub fn is_sequential_next(&self, offset: u64) -> bool {
        match self.last_end {
            Some(end) => {
                offset == end || (offset > end && (offset & FUZZY_MASK) == (end & FUZZY_MASK))
            }
            None => false,
        }
    }

    /// Feeds a read of `[offset, offset + len)` through the policy.
    ///
    /// `file_size` clamps prefetch decisions; a zero-length file never
    /// prefetches.
    pub fn on_read(&mut self, offset: u64, len: u64, file_size: u64) -> ReadAheadDecision {
        let first = self.last_end.is_none();
        if first {
            self.run_length = 1;
        } else if self.is_sequential_next(offset) {
            self.run_length += 1;
        } else {
            self.run_length = 1;
        }
        let end = offset + len;
        self.last_end = Some(end);

        if first {
            // Caching initiation: one prefetch of the read-ahead unit,
            // starting at the read offset. §9.1: 92 % of read sessions
            // never needed another.
            let want = end.max(offset + self.unit()).min(file_size);
            if want > self.prefetched_to.max(offset) {
                self.prefetched_to = want;
                return ReadAheadDecision::Prefetch {
                    start: offset,
                    len: want - offset,
                };
            }
            return ReadAheadDecision::None;
        }

        // Sequential-only files keep streaming ahead of the reader; others
        // wait for the 3rd sequential request.
        let trigger = if self.sequential_only {
            self.run_length >= 2
        } else {
            self.run_length >= 3
        };
        if !trigger {
            return ReadAheadDecision::None;
        }
        // Only fetch beyond what a previous decision already covers, and
        // only when the reader is getting close to the prefetch horizon.
        if end + self.unit() / 2 < self.prefetched_to {
            return ReadAheadDecision::None;
        }
        let start = self.prefetched_to.max(end);
        let want = (start + self.unit()).min(file_size);
        if want <= start {
            return ReadAheadDecision::None;
        }
        self.prefetched_to = want;
        ReadAheadDecision::Prefetch {
            start,
            len: want - start,
        }
    }

    /// Notes that the file grew (writes extend the prefetch clamp).
    pub fn note_size(&mut self, file_size: u64) {
        self.prefetched_to = self.prefetched_to.min(file_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: u64 = 4096;

    #[test]
    fn first_read_prefetches_one_unit() {
        let mut ra = ReadAheadState::new(G, false);
        let d = ra.on_read(0, 512, 1 << 20);
        assert_eq!(d, ReadAheadDecision::Prefetch { start: 0, len: G });
    }

    #[test]
    fn first_read_prefetch_clamped_to_file_size() {
        let mut ra = ReadAheadState::new(G, false);
        let d = ra.on_read(0, 100, 1000);
        assert_eq!(
            d,
            ReadAheadDecision::Prefetch {
                start: 0,
                len: 1000
            }
        );
    }

    #[test]
    fn third_sequential_read_triggers_more() {
        let mut ra = ReadAheadState::new(G, false);
        let big = 1 << 20;
        ra.on_read(0, 512, big);
        assert_eq!(ra.on_read(512, 512, big), ReadAheadDecision::None);
        // 3rd sequential request, reader approaching the 4K horizon.
        let d = ra.on_read(1024, 2560, big);
        assert_eq!(d, ReadAheadDecision::Prefetch { start: G, len: G });
        assert_eq!(ra.run_length(), 3);
    }

    #[test]
    fn random_reads_reset_the_run() {
        let mut ra = ReadAheadState::new(G, false);
        let big = 1 << 20;
        ra.on_read(0, 512, big);
        ra.on_read(512, 512, big);
        assert_eq!(ra.on_read(100_000, 512, big), ReadAheadDecision::None);
        assert_eq!(ra.run_length(), 1);
    }

    #[test]
    fn fuzzy_mask_tolerates_small_gaps() {
        let mut ra = ReadAheadState::new(G, false);
        let big = 1 << 20;
        ra.on_read(0, 500, big);
        // Next read at 510: gap of 10 bytes, same 128-byte block as 500.
        assert!(ra.is_sequential_next(510));
        ra.on_read(510, 500, big);
        assert_eq!(ra.run_length(), 2);
        // A gap that crosses into another 128-byte block is not sequential.
        assert!(!ra.is_sequential_next(2000));
    }

    #[test]
    fn fuzzy_mask_is_forward_only() {
        // Regression: the pre-fix comparison `(offset & MASK) == (end &
        // MASK)` classified *any* offset in the previous end's 128-byte
        // block as sequential, including duplicates and backwards seeks.
        let mut ra = ReadAheadState::new(G, false);
        ra.on_read(0, 100, 1 << 20); // last_end = 100, block 0
        assert!(!ra.is_sequential_next(0), "duplicate re-read from 0");
        assert!(!ra.is_sequential_next(50), "backwards seek in the block");
        assert!(!ra.is_sequential_next(99), "one byte short of the end");
        assert!(ra.is_sequential_next(100), "exact continuation");
        assert!(ra.is_sequential_next(110), "small forward gap, same block");
        assert!(!ra.is_sequential_next(200), "gap into the next block");
    }

    #[test]
    fn rereading_the_same_range_resets_the_run() {
        // Regression: a reader looping over the same bytes must never
        // build up a sequential run (pre-fix, run_length grew without
        // bound because every re-read shared the previous end's block).
        let mut ra = ReadAheadState::new(G, false);
        let big = 1 << 20;
        ra.on_read(0, 64, big);
        for _ in 0..5 {
            assert_eq!(ra.on_read(0, 64, big), ReadAheadDecision::None);
            assert_eq!(ra.run_length(), 1, "re-reads are not sequential");
        }
    }

    #[test]
    fn small_forward_gap_extends_the_run() {
        let mut ra = ReadAheadState::new(G, false);
        let big = 1 << 20;
        ra.on_read(0, 120, big);
        // Resumes at 125: 5-byte forward gap inside block 0.
        ra.on_read(125, 100, big);
        assert_eq!(ra.run_length(), 2);
    }

    #[test]
    fn sequential_only_doubles_the_unit() {
        let ra = ReadAheadState::new(G, true);
        assert_eq!(ra.unit(), 2 * G);
        let ra2 = ReadAheadState::new(G, false);
        assert_eq!(ra2.unit(), G);
    }

    #[test]
    fn sequential_only_streams_from_second_read() {
        let mut ra = ReadAheadState::new(G, true);
        let big = 1 << 20;
        ra.on_read(0, 4096, big);
        let d = ra.on_read(4096, 4096, big);
        assert!(
            matches!(d, ReadAheadDecision::Prefetch { start, len } if start >= 2 * G && len == 2 * G),
            "got {d:?}"
        );
    }

    #[test]
    fn no_prefetch_at_eof() {
        let mut ra = ReadAheadState::new(G, false);
        ra.on_read(0, 100, 100);
        for i in 1..5 {
            assert_eq!(
                ra.on_read(i * 100, 100, 100),
                ReadAheadDecision::None,
                "reads at/past EOF never prefetch"
            );
        }
    }

    #[test]
    fn small_file_single_prefetch_suffices() {
        // The §9.1 claim: for files under the granularity, one prefetch
        // loads everything and later sequential reads need nothing.
        let mut ra = ReadAheadState::new(65_536, false);
        let size = 20_000;
        let d = ra.on_read(0, 512, size);
        assert_eq!(
            d,
            ReadAheadDecision::Prefetch {
                start: 0,
                len: size
            }
        );
        let mut off = 512;
        while off < size {
            assert_eq!(ra.on_read(off, 512, size), ReadAheadDecision::None);
            off += 512;
        }
    }
}
