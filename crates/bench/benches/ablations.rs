//! The DESIGN.md ablations: each design choice the paper highlights is
//! switched off and the study re-run, measuring simulation wall time and
//! printing the metric shifts once per configuration.
//!
//! 1. FastIO vs IRP-only (§10) — median data-path latency shift.
//! 2. Read-ahead policy (§9.1) — cache hit rate and paging read count.
//! 3. Lazy writer vs write-through (§9.2) — paging writes and latency.
//! 4. Temporary-file attribute (§6.3) — disk writes avoided.
//! 5. Heavy-tailed vs exponential arrivals (§7) — dispersion collapse.

use criterion::{criterion_group, criterion_main, Criterion};
use nt_analysis::{burstiness::BinnedArrivals, latency, tails};
use nt_study::{Study, StudyConfig};
use rand::{Rng, SeedableRng};

fn small_config(seed: u64) -> StudyConfig {
    let mut c = StudyConfig::smoke_test(seed);
    c.duration = nt_sim::SimDuration::from_secs(300);
    c
}

fn describe_run(tag: &str, config: &StudyConfig) {
    let data = Study::run(config);
    let p = latency::path_latencies(&data.trace_set);
    let (hits, misses, paging_w, temp_spared) =
        data.machines
            .iter()
            .fold((0u64, 0u64, 0u64, 0u64), |acc, m| {
                (
                    acc.0 + m.cache.read_hits,
                    acc.1 + m.cache.read_misses,
                    acc.2 + m.io.paging_writes,
                    acc.3 + m.cache.temporary_bytes_spared,
                )
            });
    eprintln!(
        "[ablation {tag}] fastio reads {:.0}%, read median {:.1}us, hit rate {:.0}%, \
         paging writes {paging_w}, temp bytes spared {temp_spared}",
        100.0 * p.fastio_read_fraction,
        p.fastio_read_latency
            .median()
            .or(p.irp_read_latency.median())
            .unwrap_or(0.0),
        100.0 * hits as f64 / (hits + misses).max(1) as f64,
    );
}

fn bench_ablation_fastio(c: &mut Criterion) {
    let baseline = small_config(3);
    let mut no_fastio = small_config(3);
    no_fastio.disable_fastio = true;
    describe_run("baseline", &baseline);
    describe_run("no-fastio", &no_fastio);
    let mut g = c.benchmark_group("ablation_fastio");
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| std::hint::black_box(Study::run(&baseline).total_records))
    });
    g.bench_function("irp_only", |b| {
        b.iter(|| std::hint::black_box(Study::run(&no_fastio).total_records))
    });
    g.finish();
}

fn bench_ablation_readahead(c: &mut Criterion) {
    // The DESIGN.md sweep: no read-ahead at all, a fixed 4 KB prefetch
    // (no FAT/NTFS 64 KB boost, no sequential doubling), and the full NT
    // policy.
    let nt_policy = small_config(4);
    let mut no_ra = small_config(4);
    no_ra.disable_readahead = true;
    let fixed_4k = small_config(4);
    describe_run("readahead-nt", &nt_policy);
    describe_run("readahead-off", &no_ra);
    // The fixed-4K variant needs cache-config surgery the StudyConfig
    // doesn't expose; run it through the replay engine instead, which
    // accepts a full CacheConfig.
    {
        use nt_analysis::TraceSet;
        use nt_cache::CacheConfig;
        use nt_study::{replay, ReplayConfig};
        let data = Study::run(&nt_policy);
        let ts: &TraceSet = &data.trace_set;
        let run = |label: &str, cache: CacheConfig| {
            let r = replay(
                ts,
                &ReplayConfig {
                    cache,
                    ..ReplayConfig::default()
                },
            );
            eprintln!(
                "[ablation readahead/{label}] hit rate {:.0}%, paging reads {}, prefetched {:.1} MB",
                100.0 * r.hit_rate(),
                r.paging_reads,
                r.readahead_bytes as f64 / 1.0e6
            );
        };
        run("nt", CacheConfig::default());
        run(
            "fixed-4k",
            CacheConfig {
                boosted_granularity: 4_096,
                boost_threshold: u64::MAX,
                ..CacheConfig::default()
            },
        );
        run(
            "none",
            CacheConfig {
                readahead_enabled: false,
                ..CacheConfig::default()
            },
        );
    }
    let mut g = c.benchmark_group("ablation_readahead");
    g.sample_size(10);
    g.bench_function("nt_policy", |b| {
        b.iter(|| std::hint::black_box(Study::run(&nt_policy).total_records))
    });
    g.bench_function("fixed_4k_via_replay", |b| {
        use nt_cache::CacheConfig;
        use nt_study::{replay, ReplayConfig};
        let data = Study::run(&fixed_4k);
        b.iter(|| {
            std::hint::black_box(
                replay(
                    &data.trace_set,
                    &ReplayConfig {
                        cache: CacheConfig {
                            boosted_granularity: 4_096,
                            boost_threshold: u64::MAX,
                            ..CacheConfig::default()
                        },
                        ..ReplayConfig::default()
                    },
                )
                .read_hits,
            )
        })
    });
    g.bench_function("demand_only", |b| {
        b.iter(|| std::hint::black_box(Study::run(&no_ra).total_records))
    });
    g.finish();
}

fn bench_ablation_write_through(c: &mut Criterion) {
    let baseline = small_config(5);
    let mut wt = small_config(5);
    wt.force_write_through = true;
    describe_run("lazy-writer", &baseline);
    describe_run("write-through", &wt);
    let mut g = c.benchmark_group("ablation_write_behind");
    g.sample_size(10);
    g.bench_function("lazy_writer", |b| {
        b.iter(|| std::hint::black_box(Study::run(&baseline).total_records))
    });
    g.bench_function("write_through", |b| {
        b.iter(|| std::hint::black_box(Study::run(&wt).total_records))
    });
    g.finish();
}

fn bench_ablation_arrival_model(c: &mut Criterion) {
    // §7's modelling point, reproduced without the simulator: bin a
    // Pareto arrival process and an exponential one at a coarse scale and
    // compare dispersion and Hill alpha.
    fn synth(heavy: bool, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = 0u64;
        (0..n)
            .map(|_| {
                let gap_s = if heavy {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    0.02 / u.powf(1.0 / 1.3)
                } else {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    -0.08 * u.ln()
                };
                t += (gap_s * 1e7) as u64;
                t
            })
            .collect()
    }
    let heavy = synth(true, 60_000, 9);
    let light = synth(false, 60_000, 9);
    let disp = |ticks: &[u64]| {
        let b = nt_analysis::burstiness::bin_arrivals(ticks, 100);
        BinnedArrivals::dispersion(&b)
    };
    let gaps = |ticks: &[u64]| -> Vec<f64> {
        ticks
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .filter(|&g| g > 0.0)
            .collect()
    };
    eprintln!(
        "[ablation arrivals] heavy-tail: dispersion {:.1}, hill alpha {:.2} | \
         exponential: dispersion {:.1}, hill alpha {:.2}",
        disp(&heavy),
        tails::hill_alpha(&gaps(&heavy)),
        disp(&light),
        tails::hill_alpha(&gaps(&light)),
    );
    let mut g = c.benchmark_group("ablation_arrival_model");
    g.bench_function("bin_and_estimate_heavy", |b| {
        b.iter(|| {
            let g1 = gaps(&heavy);
            std::hint::black_box(tails::hill_alpha(&g1))
        })
    });
    g.bench_function("bin_and_estimate_exponential", |b| {
        b.iter(|| {
            let g1 = gaps(&light);
            std::hint::black_box(tails::hill_alpha(&g1))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ablation_fastio,
    bench_ablation_readahead,
    bench_ablation_write_through,
    bench_ablation_arrival_model
);
criterion_main!(benches);
