//! Streaming-pipeline benchmarks: the cost of online analysis relative to
//! materialize-then-analyze, plus the substrate operations both paths
//! lean on (event dispatch, range coalescing, sketch ingestion).
//!
//! Besides the usual per-bench console lines this harness can emit a
//! machine-readable baseline: run with `NT_BENCH_WRITE=1` and the results
//! land in `BENCH_streaming.json` at the repository root, which is checked
//! in as the reference measurement (see README.md). `NT_BENCH_ITERS`
//! controls iterations per bench (default 3; CI smokes with 1).
//!
//! With `NT_BENCH_GATE=1` the harness enforces the checked-in baseline
//! two ways. First, the **full-baseline regression gate**: every
//! `*_min_ns` entry in `BENCH_streaming.json` is re-measured and judged
//! against its recorded floor at `NT_BENCH_FULL_TOLERANCE` percent
//! slowdown budget (default 50 — raw nanoseconds wear host noise that
//! the ratio gates below cancel away, so the raw budget is loose; it
//! exists to catch the 2x cliffs the three ratio gates never saw).
//! Entries recorded at a different `NT_BENCH_ITERS` than the current
//! run are refused outright rather than judged — fewer iterations mean
//! noisier minima, so cross-iteration comparisons would gate on noise.
//! A bench that misses its budget is re-measured before it fails: a
//! real regression is systematic and misses every round, while a noise
//! spike (a background compile landing on one iteration) misses once
//! and passes the re-run — the same discipline the ratio gates use.
//! Stale baseline entries (no longer measured) and new benches (never
//! recorded) also fail, keeping the file and the harness in lock-step.
//! Regenerate with `NT_BENCH_WRITE=1` after an intended change, exactly
//! like the warehouse golden's `GOLDEN_REGEN=1`.
//!
//! Second, the three ratio gates. The harness enforces the
//! telemetry-off overhead budget: the simulate phase of a one-machine
//! study, normalised against the machine-construction phase measured
//! beside it (same volume, file table and allocator — only simulate
//! crosses the instrumented paths), must stay within
//! `NT_BENCH_TOLERANCE` percent (default 3) of the checked-in baseline
//! (see [`gate`]). The whole `nt-obs` layer rides
//! the study hot paths, so this is the regression tripwire proving the
//! Off configuration stays free.
//!
//! The gate also covers the sharded collection tree: a 4-shard smoke
//! study, normalised against the flat streaming study measured beside
//! it on the same single worker thread, must stay within
//! `NT_BENCH_SHARD_TOLERANCE` percent (default 25 — the tree spawns
//! twelve collector threads, so it wears more scheduler noise than the
//! single-threaded telemetry gate) of the checked-in ratio. That pins
//! the cost of the tree itself: the extra pools and the hierarchical
//! merge, not the machines.
//!
//! And it covers the NTT warehouse encoder: serializing 100k records
//! into a segment, normalised against building the batch fact tables
//! over the same records beside it, must stay within
//! `NT_BENCH_WAREHOUSE_TOLERANCE` percent (default 25) of the
//! checked-in ratio. That keeps "export the study while running it"
//! cheap enough to leave on.

use std::time::Instant;

use nt_analysis::stream::{MachineSink, StreamConfig};
use nt_analysis::{HistogramSketch, TraceSet};
use nt_bench::{check_min_ns, Baseline, Verdict};
use nt_cache::{CacheConfig, RangeSet};
use nt_sim::{Engine, SimDuration, SimTime};
use nt_study::{MachineRun, ReplayConfig, StreamOptions, Study, StudyConfig, WhatIfStudy};
use nt_trace::{CollectionServer, MachineId};

/// One measurement: median-free, warm-up-free wall clock per iteration —
/// the same regime as the vendored criterion harness, but keeping the
/// number so the JSON baseline can be written.
struct Sample {
    name: &'static str,
    ns_per_iter: u128,
    /// Fastest single iteration — the gate compares this, not the mean,
    /// so a background compile on the CI host doesn't trip the budget.
    min_ns: u128,
    /// Work items per iteration (records, events …) for ns/item context.
    elements: u64,
    /// Iterations this sample was measured over — recorded per entry in
    /// the baseline so the gate can refuse cross-`NT_BENCH_ITERS`
    /// comparisons (a min over fewer iterations is a noisier floor).
    iters: u32,
}

fn iterations() -> u32 {
    std::env::var("NT_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// One registered benchmark: its name, the per-iteration element count,
/// and the closure the harness can run again. Keeping the closure (not
/// just the measurement) is what lets the full gate re-measure a bench
/// that misses its budget instead of failing on one noisy round.
struct Bench {
    name: &'static str,
    elements: u64,
    run: Box<dyn FnMut()>,
}

/// `n` timed iterations of one bench: (mean ns/iter, fastest iteration).
fn measure_rounds(bench: &mut Bench, n: u32) -> (u128, u128) {
    let mut total = 0u128;
    let mut min_ns = u128::MAX;
    for _ in 0..n {
        let start = Instant::now();
        (bench.run)();
        let ns = start.elapsed().as_nanos();
        total += ns;
        min_ns = min_ns.min(ns);
    }
    (total / u128::from(n), min_ns)
}

fn measure(bench: &mut Bench) -> Sample {
    let n = iterations();
    let (ns_per_iter, min_ns) = measure_rounds(bench, n);
    eprintln!(
        "bench streaming/{}: {ns_per_iter} ns/iter ({} elements)",
        bench.name, bench.elements
    );
    Sample {
        name: bench.name,
        ns_per_iter,
        min_ns,
        elements: bench.elements,
        iters: n,
    }
}

/// Baseline `*_min_ns` entries the per-bench gate must NOT judge raw:
/// they are the ratio-gate inputs, re-measured and consumed by
/// [`gate_ratio`] below. Raw comparison would gate on host-speed drift —
/// cancelling that drift is the whole reason the ratios exist.
const RATIO_GATE_ENTRIES: &[&str] = &[
    "gate_smoke_serial",
    "gate_reference",
    "gate_sharded",
    "gate_sharded_reference",
    "gate_warehouse",
    "gate_warehouse_reference",
];

/// The full-baseline regression gate: judges this run's samples against
/// every `*_min_ns` entry of the checked-in baseline. Fails on a
/// regression beyond `NT_BENCH_FULL_TOLERANCE` percent, on a stale or
/// missing entry, and refuses entries recorded at a different
/// `NT_BENCH_ITERS` than the current run.
///
/// A bench over budget is re-measured up to twice, folding the new
/// floor into its sample, before the verdict sticks: a real regression
/// is systematic and stays over in every round, while host noise — a
/// background compile landing on one single-iteration minimum — spikes
/// one round and passes the next.
fn gate_full_baseline(baseline: &Baseline, benches: &mut [Bench], samples: &mut [Sample]) {
    let tolerance = env_tolerance("NT_BENCH_FULL_TOLERANCE", 50.0);
    let mut checks = Vec::new();
    for round in 1..=3 {
        let current: Vec<(String, u128, u32)> = samples
            .iter()
            .map(|s| (s.name.to_string(), s.min_ns, s.iters))
            .collect();
        checks = check_min_ns(baseline, &current, RATIO_GATE_ENTRIES, tolerance);
        let over: Vec<&str> = checks
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
            .map(|c| c.name.as_str())
            .collect();
        if over.is_empty() || round == 3 {
            break;
        }
        eprintln!(
            "bench gate [full]: {} bench(es) over budget on round {round} ({}); re-measuring",
            over.len(),
            over.join(", ")
        );
        for bench in benches.iter_mut() {
            if !over.contains(&bench.name) {
                continue;
            }
            let sample = samples
                .iter_mut()
                .find(|s| s.name == bench.name)
                .expect("every bench was sampled");
            let (_, min_ns) = measure_rounds(bench, sample.iters);
            sample.min_ns = sample.min_ns.min(min_ns);
        }
    }
    let mut failures = 0usize;
    for c in &checks {
        let verdict = match c.verdict {
            Verdict::Ok => "ok",
            Verdict::Regressed => "FAIL (regressed)",
            Verdict::MissingCurrent => "FAIL (stale baseline entry — bench no longer runs)",
            Verdict::MissingBaseline => "FAIL (bench not in baseline)",
            Verdict::ItersMismatch => "REFUSED (recorded at different NT_BENCH_ITERS)",
        };
        eprintln!(
            "bench gate [full/{}]: {} ns vs baseline {} ns ({:+.1}%, budget {tolerance}%) {verdict}",
            c.name,
            c.current_min_ns.map_or_else(|| "-".into(), |v| v.to_string()),
            c.baseline_min_ns.map_or_else(|| "-".into(), |v| v.to_string()),
            c.delta_pct,
        );
        failures += usize::from(c.failed());
    }
    assert_eq!(
        failures,
        0,
        "full-baseline gate: {failures} of {} benches failed; if the change is \
         intended, regenerate the baseline with NT_BENCH_WRITE=1 at the same \
         NT_BENCH_ITERS the gate runs with",
        checks.len()
    );
}

/// The `NT_BENCH_GATE=1` enforcement pass: the full-baseline per-bench
/// gate above, then the three ratio gates.
///
/// Comparing raw nanoseconds against a baseline recorded in a different
/// process would gate on host-speed drift (shared CPUs, turbo decay),
/// which swings far more than the 3% budget. Instead both the baseline
/// writer and the gate run [`gate_measurements`] and compare the
/// *ratio* of the simulate phase to the machine-construction phase
/// measured beside it: ambient slowdown — CPU sharing, cache and
/// memory-bandwidth pressure — hits both phases alike and cancels,
/// while a real regression on the instrumented simulate path moves
/// the ratio.
fn gate(baseline_path: &str, benches: &mut [Bench], samples: &mut [Sample]) {
    let json = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("bench gate needs {baseline_path}: {e}"));
    let baseline = Baseline::parse(&json);
    assert!(
        !baseline.is_empty(),
        "baseline {baseline_path} parsed to nothing; regenerate with NT_BENCH_WRITE=1"
    );
    gate_full_baseline(&baseline, benches, samples);
    let baseline_min = |name: &str| -> f64 {
        baseline.get(&format!("{name}_min_ns")).unwrap_or_else(|| {
            panic!("baseline entry for {name}; regenerate with NT_BENCH_WRITE=1")
        }) as f64
    };
    gate_ratio(
        "telemetry-off overhead",
        baseline_min("gate_smoke_serial") / baseline_min("gate_reference"),
        env_tolerance("NT_BENCH_TOLERANCE", 3.0),
        gate_measurements,
    );
    gate_ratio(
        "sharded-tree overhead",
        baseline_min("gate_sharded") / baseline_min("gate_sharded_reference"),
        env_tolerance("NT_BENCH_SHARD_TOLERANCE", 25.0),
        gate_sharded_measurements,
    );
    gate_ratio(
        "warehouse encode overhead",
        baseline_min("gate_warehouse") / baseline_min("gate_warehouse_reference"),
        env_tolerance("NT_BENCH_WAREHOUSE_TOLERANCE", 25.0),
        gate_warehouse_measurements,
    );
}

fn env_tolerance(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Judges one (numerator, reference) ratio against its baseline.
///
/// A real regression is systematic: it shows up in every measurement
/// round. Host noise is not: it spikes one round and misses the next.
/// Up to three rounds run, and the best one is judged — a true slowdown
/// beyond the budget still fails all three.
fn gate_ratio(what: &str, baseline_ratio: f64, tolerance: f64, measure: fn() -> (u128, u128)) {
    let mut best_delta = f64::INFINITY;
    for round in 1..=3 {
        let (numerator, reference) = measure();
        let current_ratio = numerator as f64 / reference as f64;
        let delta = 100.0 * (current_ratio - baseline_ratio) / baseline_ratio;
        best_delta = best_delta.min(delta);
        let verdict = if delta > tolerance { "FAIL" } else { "ok" };
        eprintln!(
            "bench gate [{what}] round {round}: ratio {current_ratio:.3} vs baseline \
             {baseline_ratio:.3} ({delta:+.1}%, budget {tolerance}%) {verdict}",
        );
        if best_delta <= tolerance {
            break;
        }
    }
    assert!(
        best_delta <= tolerance,
        "{what} exceeds the {tolerance}% budget in every round; \
         if the regression is intended, regenerate the baseline with NT_BENCH_WRITE=1"
    );
}

/// Times the gate's two measurements, interleaved on one thread so both
/// sample the same host conditions, with enough iterations that the
/// minima converge to the host's floor. The gated number simulates one
/// machine straight into a local collection server — single-threaded
/// (no worker or collector threads to pick up scheduler jitter) yet
/// crossing every dispatch/cache/vm/trace hot path the telemetry layer
/// instruments. The reference — populating a §5 content volume — has
/// the same allocation-heavy namespace-churn profile (so cache and
/// memory pressure move both and cancel in the ratio) but never touches
/// those hot paths, so an off-path regression moves only the numerator.
fn gate_measurements() -> (u128, u128) {
    let mut config = StudyConfig::smoke_test(13);
    config.duration = SimDuration::from_secs(120);
    let spec = config.machines[0].clone();
    // Per block: time machine construction (the reference — it never
    // crosses the instrumented dispatch path) and the simulate phase
    // that runs over it (the numerator — every span/sampler check sits
    // on it). Both walk the same volume, file table and allocator, so
    // ambient cache and memory-bandwidth pressure moves them together
    // and cancels in the ratio. The block ratios are reduced by median
    // below, which shrugs off the blocks a noisy neighbour landed on.
    let mut ratios = Vec::new();
    for block in 0..12 {
        // Symmetric floors: both sides take the minimum over the same
        // number of passes, so transient spikes can't bias the ratio
        // toward either workload.
        let mut reference_ns = u128::MAX;
        let mut study_ns = u128::MAX;
        for _round in 0..3 {
            let start = Instant::now();
            let mut run = MachineRun::build(&config, 0, &spec);
            reference_ns = reference_ns.min(start.elapsed().as_nanos());
            let mut server = CollectionServer::new();
            let start = Instant::now();
            run.simulate(&config, &mut server);
            std::hint::black_box(server.records_for(MachineId(0)).len());
            study_ns = study_ns.min(start.elapsed().as_nanos());
        }
        // The first blocks warm the allocator and caches; skip them.
        if block >= 2 {
            ratios.push((study_ns, reference_ns));
        }
    }
    ratios.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)));
    ratios[ratios.len() / 2]
}

/// Times the sharded-tree gate's two measurements, interleaved like
/// [`gate_measurements`]: a 4-shard smoke study (numerator) against the
/// flat streaming study (reference), both on one worker thread so the
/// only difference is the tree — four 3-server pools instead of one,
/// plus the shard → aggregator → fleet merge.
fn gate_sharded_measurements() -> (u128, u128) {
    use nt_study::ShardOptions;
    let config = StudyConfig::smoke_test(13);
    let serial = StreamOptions {
        workers: Some(1),
        ..StreamOptions::default()
    };
    let tree = ShardOptions {
        shards: 4,
        workers: Some(1),
        ..ShardOptions::default()
    };
    let mut ratios = Vec::new();
    for block in 0..6 {
        let mut flat_ns = u128::MAX;
        let mut tree_ns = u128::MAX;
        for _round in 0..2 {
            let start = Instant::now();
            std::hint::black_box(Study::run_streaming(&config, &serial).total_records);
            flat_ns = flat_ns.min(start.elapsed().as_nanos());
            let start = Instant::now();
            std::hint::black_box(Study::run_sharded(&config, &tree).data.total_records);
            tree_ns = tree_ns.min(start.elapsed().as_nanos());
        }
        if block >= 1 {
            ratios.push((tree_ns, flat_ns));
        }
    }
    ratios.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)));
    ratios[ratios.len() / 2]
}

/// Times the warehouse gate's two measurements, interleaved like the
/// others: serializing 100k records into an NTT segment (numerator)
/// against the validate-and-decode pass over those same bytes
/// (reference). Both are linear scans of the same ~9 MB — checksum,
/// fixed-width field moves — so ambient memory-bandwidth pressure moves
/// them together and cancels in the ratio; a regression specific to the
/// writer — interning, footer accounting, buffer growth — moves only
/// the numerator.
fn gate_warehouse_measurements() -> (u128, u128) {
    use nt_warehouse::Segment;
    let (records, names) = warehouse_stream_100k();
    let encoded = encode_warehouse_segment(&records, &names);
    let mut ratios = Vec::new();
    for block in 0..8 {
        let mut encode_ns = u128::MAX;
        let mut reference_ns = u128::MAX;
        for _round in 0..3 {
            let start = Instant::now();
            let seg = Segment::parse(encoded.clone()).expect("fresh segment is valid");
            let decoded: u64 = seg
                .reader()
                .records()
                .map(|v| v.to_record().expect("valid record").length)
                .sum();
            std::hint::black_box(decoded);
            reference_ns = reference_ns.min(start.elapsed().as_nanos());
            let start = Instant::now();
            std::hint::black_box(encode_warehouse_segment(&records, &names).len());
            encode_ns = encode_ns.min(start.elapsed().as_nanos());
        }
        if block >= 2 {
            ratios.push((encode_ns, reference_ns));
        }
    }
    ratios.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)));
    ratios[ratios.len() / 2]
}

/// 100k records with one machine-run's kind mix: the smoke stream,
/// tiled forward in time so timestamps stay monotone across copies.
fn warehouse_stream_100k() -> (Vec<nt_trace::TraceRecord>, Vec<nt_trace::NameRecord>) {
    let (base, names) = one_machine_stream();
    let span = base.iter().map(|r| r.end_ticks).max().unwrap_or(0) + 1;
    let mut records = Vec::with_capacity(100_000);
    let mut shift = 0u64;
    'fill: loop {
        for r in &base {
            if records.len() == 100_000 {
                break 'fill;
            }
            let mut r = *r;
            r.start_ticks += shift;
            r.end_ticks += shift;
            records.push(r);
        }
        shift += span;
    }
    (records, names)
}

/// One full export: agent-sized batches, names, footer and checksum.
fn encode_warehouse_segment(
    records: &[nt_trace::TraceRecord],
    names: &[nt_trace::NameRecord],
) -> Vec<u8> {
    let mut w = nt_warehouse::SegmentWriter::new(0);
    for chunk in records.chunks(3_000) {
        w.push_batch(chunk).expect("bench batches fit u32");
    }
    for name in names {
        w.push_name(name).expect("bench paths fit u32");
    }
    w.finish()
}

/// One machine-run's worth of records and names, built once.
fn one_machine_stream() -> (Vec<nt_trace::TraceRecord>, Vec<nt_trace::NameRecord>) {
    let mut config = StudyConfig::smoke_test(9);
    config.duration = SimDuration::from_secs(120);
    let mut run = MachineRun::build(&config, 0, &config.machines[0].clone());
    let mut server = CollectionServer::new();
    run.simulate(&config, &mut server);
    let records = server.records_for(MachineId(0));
    let names: Vec<_> = server
        .names_for(MachineId(0))
        .into_iter()
        .cloned()
        .collect();
    (records, names)
}

fn main() {
    let mut benches: Vec<Bench> = Vec::new();

    // Substrate: raw event dispatch, the floor under every simulated op.
    benches.push(Bench {
        name: "engine_schedule_and_fire_10k",
        elements: 10_000,
        run: Box::new(|| {
            let mut engine: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                engine.schedule_at(SimTime::from_micros(i * 7 % 9_999), |w, _| *w += 1);
            }
            let mut fired = 0u64;
            engine.run(&mut fired);
            std::hint::black_box(fired);
        }),
    });

    // Substrate: range coalescing, the cache manager's hot structure.
    benches.push(Bench {
        name: "range_set_insert_coalesce_1k",
        elements: 1_000,
        run: Box::new(|| {
            let mut rs = RangeSet::new();
            for i in 0..1_000u64 {
                let s = (i * 37) % 100_000;
                rs.insert(s, s + 64);
            }
            std::hint::black_box(rs.covered_bytes());
        }),
    });

    // Driver-stack dispatch: 100k warm FastIO reads through a machine
    // whose stack holds only the (non-intercepting) observer layer — the
    // shape every production machine has with telemetry off. The number
    // is the per-op floor of the trait-object stack; the NT_BENCH_GATE
    // ratio below proves the refactor kept the end-to-end simulate phase
    // within budget of the pre-refactor baseline.
    benches.push(Bench {
        name: "machine_dispatch_warm_read_100k",
        elements: 100_000,
        run: Box::new(|| {
            use nt_fs::{NtPath, VolumeConfig};
            use nt_io::{
                AccessMode, CreateOptions, DiskParams, Disposition, Machine, MachineConfig,
                NullObserver, ProcessId,
            };
            let mut m = Machine::new(MachineConfig::default(), NullObserver);
            let vol = m.add_local_volume(
                'C',
                VolumeConfig::local_ntfs(1 << 30),
                DiskParams::local_ide(),
            );
            let (reply, h) = m.create(
                ProcessId(1),
                vol,
                &NtPath::parse(r"\bench.dat"),
                AccessMode::ReadWrite,
                Disposition::OpenIf,
                CreateOptions::default(),
                SimTime::from_secs(1),
            );
            assert!(reply.status.is_success());
            let h = h.expect("open succeeded");
            let mut at = SimTime::from_secs(2);
            at = m.write(h, Some(0), 65_536, at).end;
            for _ in 0..100_000u32 {
                at = m.read(h, Some(0), 4_096, at).end;
            }
            std::hint::black_box(m.metrics().fastio_reads);
        }),
    });

    // Sketch ingestion: the per-record overhead the streaming sinks add.
    benches.push(Bench {
        name: "histogram_sketch_record_100k",
        elements: 100_000,
        run: Box::new(|| {
            let mut h = HistogramSketch::new();
            for i in 0..100_000u64 {
                h.record(((i * 2_654_435_761) % (1 << 24)) as f64);
            }
            std::hint::black_box(h.len());
        }),
    });

    // Head-to-head on identical input: one machine's stream through a
    // MachineSink (online aggregates) vs TraceSet::build (fact tables).
    let (records, names) = one_machine_stream();
    let n = records.len() as u64;
    {
        let (records, names) = (records.clone(), names.clone());
        benches.push(Bench {
            name: "sink_ingest_one_machine",
            elements: n,
            run: Box::new(move || {
                let mut sink = MachineSink::new(0, &StreamConfig::default());
                for (seq, chunk) in records.chunks(3_000).enumerate() {
                    sink.on_batch(Some(seq as u64), chunk.to_vec(), None);
                }
                for name in &names {
                    sink.on_name(None, name.clone());
                }
                std::hint::black_box(sink.records());
            }),
        });
    }
    benches.push(Bench {
        name: "trace_set_build_one_machine",
        elements: n,
        run: Box::new(move || {
            std::hint::black_box(
                TraceSet::build(vec![(0, records.clone(), names.clone())])
                    .instances
                    .len(),
            );
        }),
    });

    // Warehouse encode: 100k records through the NTT segment writer —
    // interning, batch table, footer accounting, checksum, all of it.
    let (wrecords, wnames) = warehouse_stream_100k();
    benches.push(Bench {
        name: "warehouse_export_100k",
        elements: 100_000,
        run: Box::new(move || {
            std::hint::black_box(encode_warehouse_segment(&wrecords, &wnames).len());
        }),
    });

    // End to end at smoke scale: full study, batch vs streaming driver.
    let config = StudyConfig::smoke_test(13);
    {
        let config = config.clone();
        benches.push(Bench {
            name: "smoke_study_batch",
            elements: 1,
            run: Box::new(move || {
                std::hint::black_box(Study::run(&config).total_records);
            }),
        });
    }
    {
        let config = config.clone();
        benches.push(Bench {
            name: "smoke_study_streaming",
            elements: 1,
            run: Box::new(move || {
                std::hint::black_box(
                    Study::run_streaming(&config, &StreamOptions::default()).total_records,
                );
            }),
        });
    }
    // The same study on one worker thread: scheduler-jitter-free, so the
    // telemetry-off overhead gate compares against this one.
    {
        let config = config.clone();
        benches.push(Bench {
            name: "smoke_study_serial",
            elements: 1,
            run: Box::new(move || {
                std::hint::black_box(Study::run_with_workers(&config, 1).total_records);
            }),
        });
    }
    // The same study through the sharded collection tree — the whole
    // agent → shard → aggregator → fleet reduction, auto-sized workers.
    {
        let config = config.clone();
        benches.push(Bench {
            name: "sharded_study_smoke",
            elements: 1,
            run: Box::new(move || {
                std::hint::black_box(
                    Study::run_sharded(
                        &config,
                        &nt_study::ShardOptions {
                            shards: 4,
                            ..nt_study::ShardOptions::default()
                        },
                    )
                    .data
                    .total_records,
                );
            }),
        });
    }

    // What-if matrix replay: a smoke-scale trace answered under a
    // 3-variant policy matrix (plus baseline) — stream extraction, the
    // (variant × machine) grid on the work-stealing pool, per-variant
    // conservation audit, and the differential tables. Every trace
    // record is replayed once per matrix row.
    {
        let trace = Study::run(&config).trace_set;
        let replays = trace.records.len() as u64 * 4;
        benches.push(Bench {
            name: "whatif_matrix_smoke",
            elements: replays,
            run: Box::new(move || {
                use nt_io::DiskParams;
                let report = WhatIfStudy::new(ReplayConfig::default())
                    .variant(
                        "no-read-ahead",
                        ReplayConfig {
                            cache: CacheConfig {
                                readahead_enabled: false,
                                ..CacheConfig::default()
                            },
                            ..ReplayConfig::default()
                        },
                    )
                    .variant(
                        "irp-only",
                        ReplayConfig {
                            disable_fastio: true,
                            ..ReplayConfig::default()
                        },
                    )
                    .variant(
                        "ssd-class-disk",
                        ReplayConfig {
                            disk: DiskParams::ssd_class(),
                            ..ReplayConfig::default()
                        },
                    )
                    .run_trace_set(&trace)
                    .expect("smoke variants reconcile");
                std::hint::black_box(report.tables.len());
            }),
        });
    }

    let mut samples: Vec<Sample> = benches.iter_mut().map(measure).collect();

    // Context the timings need: stream volume and the streaming memory
    // footprint at this scale.
    let streamed = Study::run_streaming(&config, &StreamOptions::default());
    let extras = [
        ("smoke_total_records", streamed.total_records as u128),
        ("smoke_stored_bytes", streamed.stored_bytes as u128),
        (
            "smoke_peak_state_bytes",
            streamed.summary.peak_state_bytes as u128,
        ),
    ];

    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    if std::env::var("NT_BENCH_GATE").is_ok() {
        gate(baseline_path, &mut benches, &mut samples);
    }

    if std::env::var("NT_BENCH_WRITE").is_ok() {
        let (gate_study, gate_reference) = gate_measurements();
        let (gate_sharded, gate_sharded_reference) = gate_sharded_measurements();
        let (gate_warehouse, gate_warehouse_reference) = gate_warehouse_measurements();
        let path = baseline_path;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"iterations\": {},\n", iterations()));
        for s in &samples {
            out.push_str(&format!(
                "  \"{}_ns_per_iter\": {},\n",
                s.name, s.ns_per_iter
            ));
            out.push_str(&format!("  \"{}_min_ns\": {},\n", s.name, s.min_ns));
            out.push_str(&format!("  \"{}_iters\": {},\n", s.name, s.iters));
            out.push_str(&format!("  \"{}_elements\": {},\n", s.name, s.elements));
        }
        out.push_str(&format!("  \"gate_smoke_serial_min_ns\": {gate_study},\n"));
        out.push_str(&format!("  \"gate_reference_min_ns\": {gate_reference},\n"));
        out.push_str(&format!("  \"gate_sharded_min_ns\": {gate_sharded},\n"));
        out.push_str(&format!(
            "  \"gate_sharded_reference_min_ns\": {gate_sharded_reference},\n"
        ));
        out.push_str(&format!("  \"gate_warehouse_min_ns\": {gate_warehouse},\n"));
        out.push_str(&format!(
            "  \"gate_warehouse_reference_min_ns\": {gate_warehouse_reference},\n"
        ));
        for (i, (k, v)) in extras.iter().enumerate() {
            let comma = if i + 1 == extras.len() { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v}{comma}\n"));
        }
        out.push_str("}\n");
        std::fs::write(path, out).expect("baseline written");
        eprintln!("bench streaming: wrote {path}");
    }
}
