//! Streaming-pipeline benchmarks: the cost of online analysis relative to
//! materialize-then-analyze, plus the substrate operations both paths
//! lean on (event dispatch, range coalescing, sketch ingestion).
//!
//! Besides the usual per-bench console lines this harness can emit a
//! machine-readable baseline: run with `NT_BENCH_WRITE=1` and the results
//! land in `BENCH_streaming.json` at the repository root, which is checked
//! in as the reference measurement (see README.md). `NT_BENCH_ITERS`
//! controls iterations per bench (default 3; CI smokes with 1).

use std::time::Instant;

use nt_analysis::stream::{MachineSink, StreamConfig};
use nt_analysis::{HistogramSketch, TraceSet};
use nt_cache::RangeSet;
use nt_sim::{Engine, SimDuration, SimTime};
use nt_study::{MachineRun, StreamOptions, Study, StudyConfig};
use nt_trace::{CollectionServer, MachineId};

/// One measurement: median-free, warm-up-free wall clock per iteration —
/// the same regime as the vendored criterion harness, but keeping the
/// number so the JSON baseline can be written.
struct Sample {
    name: &'static str,
    ns_per_iter: u128,
    /// Work items per iteration (records, events …) for ns/item context.
    elements: u64,
}

fn iterations() -> u32 {
    std::env::var("NT_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

fn time<O, F: FnMut() -> O>(name: &'static str, elements: u64, mut f: F) -> Sample {
    let n = iterations();
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(f());
    }
    let ns_per_iter = start.elapsed().as_nanos() / u128::from(n);
    eprintln!("bench streaming/{name}: {ns_per_iter} ns/iter ({elements} elements)");
    Sample {
        name,
        ns_per_iter,
        elements,
    }
}

/// One machine-run's worth of records and names, built once.
fn one_machine_stream() -> (Vec<nt_trace::TraceRecord>, Vec<nt_trace::NameRecord>) {
    let mut config = StudyConfig::smoke_test(9);
    config.duration = SimDuration::from_secs(120);
    let mut run = MachineRun::build(&config, 0, &config.machines[0].clone());
    let mut server = CollectionServer::new();
    run.simulate(&config, &mut server);
    let records = server.records_for(MachineId(0));
    let names: Vec<_> = server
        .names_for(MachineId(0))
        .into_iter()
        .cloned()
        .collect();
    (records, names)
}

fn main() {
    let mut samples = Vec::new();

    // Substrate: raw event dispatch, the floor under every simulated op.
    samples.push(time("engine_schedule_and_fire_10k", 10_000, || {
        let mut engine: Engine<u64> = Engine::new();
        for i in 0..10_000u64 {
            engine.schedule_at(SimTime::from_micros(i * 7 % 9_999), |w, _| *w += 1);
        }
        let mut fired = 0u64;
        engine.run(&mut fired);
        fired
    }));

    // Substrate: range coalescing, the cache manager's hot structure.
    samples.push(time("range_set_insert_coalesce_1k", 1_000, || {
        let mut rs = RangeSet::new();
        for i in 0..1_000u64 {
            let s = (i * 37) % 100_000;
            rs.insert(s, s + 64);
        }
        rs.covered_bytes()
    }));

    // Sketch ingestion: the per-record overhead the streaming sinks add.
    samples.push(time("histogram_sketch_record_100k", 100_000, || {
        let mut h = HistogramSketch::new();
        for i in 0..100_000u64 {
            h.record(((i * 2_654_435_761) % (1 << 24)) as f64);
        }
        h.len()
    }));

    // Head-to-head on identical input: one machine's stream through a
    // MachineSink (online aggregates) vs TraceSet::build (fact tables).
    let (records, names) = one_machine_stream();
    let n = records.len() as u64;
    samples.push(time("sink_ingest_one_machine", n, || {
        let mut sink = MachineSink::new(0, &StreamConfig::default());
        for (seq, chunk) in records.chunks(3_000).enumerate() {
            sink.on_batch(Some(seq as u64), chunk.to_vec());
        }
        for name in &names {
            sink.on_name(None, name.clone());
        }
        sink.records()
    }));
    samples.push(time("trace_set_build_one_machine", n, || {
        TraceSet::build(vec![(0, records.clone(), names.clone())])
            .instances
            .len()
    }));

    // End to end at smoke scale: full study, batch vs streaming driver.
    let config = StudyConfig::smoke_test(13);
    samples.push(time("smoke_study_batch", 1, || {
        Study::run(&config).total_records
    }));
    samples.push(time("smoke_study_streaming", 1, || {
        Study::run_streaming(&config, &StreamOptions::default()).total_records
    }));

    // Context the timings need: stream volume and the streaming memory
    // footprint at this scale.
    let streamed = Study::run_streaming(&config, &StreamOptions::default());
    let extras = [
        ("smoke_total_records", streamed.total_records as u128),
        ("smoke_stored_bytes", streamed.stored_bytes as u128),
        (
            "smoke_peak_state_bytes",
            streamed.summary.peak_state_bytes as u128,
        ),
    ];

    if std::env::var("NT_BENCH_WRITE").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"iterations\": {},\n", iterations()));
        for s in &samples {
            out.push_str(&format!(
                "  \"{}_ns_per_iter\": {},\n",
                s.name, s.ns_per_iter
            ));
            out.push_str(&format!("  \"{}_elements\": {},\n", s.name, s.elements));
        }
        for (i, (k, v)) in extras.iter().enumerate() {
            let comma = if i + 1 == extras.len() { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v}{comma}\n"));
        }
        out.push_str("}\n");
        std::fs::write(path, out).expect("baseline written");
        eprintln!("bench streaming: wrote {path}");
    }
}
