//! One bench per table: regenerating tables 1–3 from a prebuilt study.
//!
//! The measured unit is the analysis + rendering pass over the fact
//! tables — the part of the pipeline a user re-runs while exploring the
//! data (the simulation itself is benched in `pipeline.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use nt_bench::{run_study, Scale};
use nt_study::report;

fn bench_tables(c: &mut Criterion) {
    let data = run_study(Scale::Smoke, 42);
    let mut g = c.benchmark_group("tables");
    g.sample_size(20);
    g.bench_function("table1_summary", |b| {
        b.iter(|| std::hint::black_box(report::table1(&data)))
    });
    g.bench_function("table2_user_activity", |b| {
        b.iter(|| std::hint::black_box(report::table2(&data)))
    });
    g.bench_function("table3_access_patterns", |b| {
        b.iter(|| std::hint::black_box(report::table3(&data)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
