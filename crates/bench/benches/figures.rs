//! One bench per figure: regenerating figures 1–14 from a prebuilt study.

use criterion::{criterion_group, criterion_main, Criterion};
use nt_bench::{run_study, Scale};
use nt_study::report;

fn bench_figures(c: &mut Criterion) {
    let data = run_study(Scale::Smoke, 42);
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    g.bench_function("fig01_02_sequential_runs", |b| {
        b.iter(|| std::hint::black_box(report::fig_runs(&data)))
    });
    g.bench_function("fig03_04_file_sizes", |b| {
        b.iter(|| std::hint::black_box(report::fig_sizes(&data)))
    });
    g.bench_function("fig05_open_times", |b| {
        b.iter(|| std::hint::black_box(report::fig5(&data)))
    });
    g.bench_function("fig06_07_lifetimes", |b| {
        b.iter(|| std::hint::black_box(report::fig_lifetimes(&data)))
    });
    g.bench_function("fig08_burstiness", |b| {
        b.iter(|| std::hint::black_box(report::fig8(&data)))
    });
    g.bench_function("fig09_qq", |b| {
        b.iter(|| std::hint::black_box(report::fig9(&data)))
    });
    g.bench_function("fig10_llcd", |b| {
        b.iter(|| std::hint::black_box(report::fig10(&data)))
    });
    g.bench_function("fig11_interarrivals", |b| {
        b.iter(|| std::hint::black_box(report::fig11(&data)))
    });
    g.bench_function("fig12_session_lifetimes", |b| {
        b.iter(|| std::hint::black_box(report::fig12(&data)))
    });
    g.bench_function("fig13_14_fastio_paths", |b| {
        b.iter(|| std::hint::black_box(report::fig_paths(&data)))
    });
    g.bench_function("section5_content", |b| {
        b.iter(|| std::hint::black_box(report::section5(&data)))
    });
    g.bench_function("section8_operational", |b| {
        b.iter(|| std::hint::black_box(report::section8(&data)))
    });
    g.bench_function("section9_cache", |b| {
        b.iter(|| std::hint::black_box(report::section9(&data)))
    });
    g.bench_function("section10_fastio", |b| {
        b.iter(|| std::hint::black_box(report::section10(&data)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
