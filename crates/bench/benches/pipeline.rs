//! Microbenchmarks of the simulator substrate and the trace pipeline:
//! the event engine, the cache manager's hot paths, record encoding, the
//! collection server's compression, fact-table construction, and a whole
//! machine-minute of simulation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nt_analysis::TraceSet;
use nt_cache::{CacheManager, CacheOpenHints, RangeSet};
use nt_fs::{NtPath, VolumeConfig};
use nt_io::{
    AccessMode, CreateOptions, DiskParams, Disposition, Machine, MachineConfig, NullObserver,
    ProcessId,
};
use nt_sim::{Engine, SimDuration, SimTime};
use nt_study::{MachineRun, StudyConfig};
use nt_trace::{CollectionServer, MachineId, RecordBatch, TraceRecord};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_and_fire_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                engine.schedule_at(SimTime::from_micros(i * 7 % 9_999), |w, _| *w += 1);
            }
            let mut fired = 0u64;
            engine.run(&mut fired);
            std::hint::black_box(fired)
        })
    });
    g.finish();
}

fn bench_range_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("range_set");
    g.bench_function("insert_coalesce_1k", |b| {
        b.iter(|| {
            let mut rs = RangeSet::new();
            for i in 0..1_000u64 {
                let s = (i * 37) % 100_000;
                rs.insert(s, s + 64);
            }
            std::hint::black_box(rs.covered_bytes())
        })
    });
    g.bench_function("gaps_query", |b| {
        let mut rs = RangeSet::new();
        for i in 0..500u64 {
            rs.insert(i * 200, i * 200 + 100);
        }
        b.iter(|| std::hint::black_box(rs.gaps(0, 100_000).len()))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_manager");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("warm_copy_reads_1k", |b| {
        let mut m: CacheManager<u32> = CacheManager::with_defaults();
        let hints = CacheOpenHints::default();
        let out = m.read(&1, 0, 4_096, 1 << 20, hints);
        for io in &out.ios {
            m.complete_paging_read(&1, io.offset, io.len);
        }
        b.iter(|| {
            for i in 0..1_000u64 {
                std::hint::black_box(m.read(&1, (i * 64) % 32_768, 512, 1 << 20, hints).hit);
            }
        })
    });
    g.bench_function("cached_writes_and_lazy_scan", |b| {
        b.iter(|| {
            let mut m: CacheManager<u32> = CacheManager::with_defaults();
            let hints = CacheOpenHints::default();
            for i in 0..200u64 {
                m.write(&(i as u32 % 8), i * 4_096, 4_096, 1 << 20, hints);
            }
            let mut total = 0;
            for s in 1..20 {
                let (actions, _) = m.lazy_scan(SimTime::from_secs(s));
                total += actions.len();
            }
            std::hint::black_box(total)
        })
    });
    g.finish();
}

fn bench_records(c: &mut Criterion) {
    let records: Vec<TraceRecord> = (0..3_000u64)
        .map(|i| TraceRecord {
            code: (i % 54) as u8,
            flags: (i % 8) as u8,
            status: nt_io::NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: i,
            fcb: i / 3,
            process: 4,
            volume: 0,
            offset: i * 512,
            length: 4_096,
            transferred: 4_096,
            file_size: 1 << 20,
            byte_offset: 0,
            start_ticks: 1_000_000 + i * 131,
            end_ticks: 1_000_000 + i * 131 + 300,
        })
        .collect();
    let mut g = c.benchmark_group("trace_records");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("compress_one_buffer", |b| {
        b.iter(|| std::hint::black_box(RecordBatch::compress(&records).compressed_bytes()))
    });
    let batch = RecordBatch::compress(&records);
    g.bench_function("decompress_one_buffer", |b| {
        b.iter(|| std::hint::black_box(batch.decompress().len()))
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.sample_size(20);
    g.bench_function("open_read_close_cycle", |b| {
        let mut m = Machine::new(MachineConfig::default(), NullObserver);
        let vol = m.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(1 << 30),
            DiskParams::local_ide(),
        );
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let f = v.create_file(root, "f.dat", SimTime::ZERO).unwrap();
            v.set_file_size(f, 100_000, SimTime::ZERO).unwrap();
        }
        let path = NtPath::parse(r"\f.dat");
        let mut t = SimTime::from_secs(1);
        b.iter(|| {
            let (_, h) = m.create(
                ProcessId(1),
                vol,
                &path,
                AccessMode::Read,
                Disposition::Open,
                CreateOptions::default(),
                t,
            );
            let h = h.expect("file exists");
            let r = m.read(h, Some(0), 4_096, t);
            let r = m.close(h, r.end);
            t = r.end + SimDuration::from_micros(10);
            std::hint::black_box(t)
        })
    });
    g.bench_function("simulate_machine_minute", |b| {
        b.iter(|| {
            let mut config = StudyConfig::smoke_test(7);
            config.duration = SimDuration::from_secs(60);
            let mut run = MachineRun::build(&config, 0, &config.machines[0].clone());
            let mut server = CollectionServer::new();
            run.simulate(&config, &mut server);
            std::hint::black_box(server.total_records())
        })
    });
    g.finish();
}

fn bench_fact_tables(c: &mut Criterion) {
    // Build one machine-run worth of records once.
    let mut config = StudyConfig::smoke_test(9);
    config.duration = SimDuration::from_secs(120);
    let mut run = MachineRun::build(&config, 0, &config.machines[0].clone());
    let mut server = CollectionServer::new();
    run.simulate(&config, &mut server);
    let records = server.records_for(MachineId(0));
    let names: Vec<_> = server
        .names_for(MachineId(0))
        .into_iter()
        .cloned()
        .collect();
    let mut g = c.benchmark_group("fact_tables");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("trace_set_build", |b| {
        b.iter(|| {
            std::hint::black_box(
                TraceSet::build(vec![(0, records.clone(), names.clone())])
                    .instances
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_downstream(c: &mut Criterion) {
    use nt_study::{replay, ReplayConfig, Study};
    let data = Study::run(&StudyConfig::smoke_test(13));
    let mut g = c.benchmark_group("downstream");
    g.sample_size(10);
    g.bench_function("replay_default_policy", |b| {
        b.iter(|| {
            std::hint::black_box(
                replay(&data.trace_set, &ReplayConfig::default()).replayed_requests,
            )
        })
    });
    g.bench_function("profile_fit", |b| {
        b.iter(|| {
            std::hint::black_box(
                nt_analysis::profile::fit_profile(&data.trace_set).map(|p| p.control_fraction),
            )
        })
    });
    let records: Vec<_> = data.trace_set.records.iter().map(|(_, r)| r).collect();
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("paging_dedup_filter", |b| {
        b.iter(|| std::hint::black_box(nt_trace::filter_paging_duplicates(&records).len()))
    });
    g.finish();
}

fn bench_snapshots(c: &mut Criterion) {
    use nt_trace::SnapshotWalker;
    use nt_workload::{ContentBuilder, ContentPlan};
    use rand::SeedableRng;
    let mut vol = nt_fs::Volume::new(VolumeConfig::local_ntfs(8 << 30));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let plan = ContentPlan {
        target_files: 8_000,
        users: vec!["bench".into()],
        web_cache_files: 800,
        developer_package: true,
        backdated_fraction: 0.3,
    };
    ContentBuilder::build(&mut vol, &plan, SimTime::ZERO, &mut rng).expect("content fits");
    let mut g = c.benchmark_group("snapshots");
    g.throughput(Throughput::Elements(vol.stats().files));
    g.bench_function("walk_8k_file_volume", |b| {
        b.iter(|| {
            std::hint::black_box(
                SnapshotWalker::walk_volume(nt_fs::VolumeId(0), &vol, SimTime::ZERO)
                    .records
                    .len(),
            )
        })
    });
    let snap = SnapshotWalker::walk_volume(nt_fs::VolumeId(0), &vol, SimTime::ZERO);
    g.bench_function("content_stats", |b| {
        b.iter(|| std::hint::black_box(nt_analysis::content::content_stats(&snap).files))
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    use nt_study::Study;
    let mut g = c.benchmark_group("sim_scaling");
    g.sample_size(10);
    for machines in [1usize, 5, 15] {
        let mut config = StudyConfig::smoke_test(19);
        config.duration = SimDuration::from_secs(60);
        let mut specs = Vec::new();
        while specs.len() < machines {
            for s in StudyConfig::smoke_test(19).machines {
                if specs.len() < machines {
                    specs.push(s);
                }
            }
        }
        config.machines = specs;
        g.bench_function(format!("machines_{machines:02}_x_60s"), |b| {
            b.iter(|| std::hint::black_box(Study::run(&config).total_records))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_range_set,
    bench_cache,
    bench_records,
    bench_machine,
    bench_fact_tables,
    bench_downstream,
    bench_snapshots,
    bench_scaling
);
criterion_main!(benches);
