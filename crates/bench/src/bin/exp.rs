//! Regenerates any table or figure of the paper from a fresh study run.
//!
//! ```text
//! exp --all                         # every artefact, evaluation scale
//! exp --table 2                     # just table 2
//! exp --fig 10 --scale smoke        # figure 10 from a tiny run
//! exp --section 9 --seed 7          # §9 cache report, another seed
//! ```

use nt_bench::{run_study, Scale};
use nt_study::report;

fn usage() -> ! {
    eprintln!(
        "usage: exp [--all] [--table 1|2|3] [--fig 1..14] [--section 4|5|7|8|9|10]\n\
         \x20          [--replay] [--csv DIR] [--scale smoke|eval|paper] [--seed N]"
    );
    std::process::exit(2);
}

fn run_replay(data: &nt_study::StudyData) -> String {
    use nt_cache::CacheConfig;
    use nt_study::{compare_policies, ReplayConfig};
    let rows = compare_policies(
        &data.trace_set,
        [
            ("nt-defaults", ReplayConfig::default()),
            (
                "no-read-ahead",
                ReplayConfig {
                    cache: CacheConfig {
                        readahead_enabled: false,
                        ..CacheConfig::default()
                    },
                    ..ReplayConfig::default()
                },
            ),
            (
                "write-through",
                ReplayConfig {
                    cache: CacheConfig {
                        force_write_through: true,
                        ..CacheConfig::default()
                    },
                    ..ReplayConfig::default()
                },
            ),
            (
                "irp-only",
                ReplayConfig {
                    disable_fastio: true,
                    ..ReplayConfig::default()
                },
            ),
        ],
    );
    let mut out = String::from("Trace replay under alternative cache policies\n");
    out.push_str(&format!(
        "  {:<16} {:>9} {:>7} {:>8} {:>10} {:>10}\n",
        "policy", "requests", "hit%", "fastio%", "pag.reads", "pag.writes"
    ));
    for (label, r) in &rows {
        out.push_str(&format!(
            "  {:<16} {:>9} {:>6.0}% {:>7.0}% {:>10} {:>10}\n",
            label,
            r.replayed_requests,
            100.0 * r.hit_rate(),
            100.0 * r.fastio_read_fraction(),
            r.paging_reads,
            r.paging_writes
        ));
    }
    out
}

fn write_csvs(data: &nt_study::StudyData, dir: &str) {
    std::fs::create_dir_all(dir).expect("create csv dir");
    for (name, points) in report::csv_series(data) {
        let mut body = String::from("x,percent\n");
        for (x, y) in points {
            body.push_str(&format!("{x},{y}\n"));
        }
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, body).expect("write csv");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let mut scale = Scale::Evaluation;
    let mut seed = 1u64;
    let mut wants: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => wants.push("all".into()),
            "--replay" => wants.push("replay".into()),
            "--csv" => {
                csv_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--table" | "--fig" | "--section" => {
                let n = args.next().unwrap_or_else(|| usage());
                wants.push(format!("{}{}", arg.trim_start_matches("--"), n));
            }
            "--scale" => {
                let s = args.next().unwrap_or_else(|| usage());
                scale = Scale::parse(&s).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let s = args.next().unwrap_or_else(|| usage());
                seed = s.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    if wants.is_empty() {
        wants.push("all".into());
    }

    eprintln!("running the study at {scale:?} scale (seed {seed}) ...");
    let t0 = std::time::Instant::now();
    let data = run_study(scale, seed);
    eprintln!(
        "collected {} records from {} machines in {:.1}s\n",
        data.total_records,
        data.machines.len(),
        t0.elapsed().as_secs_f64()
    );

    if let Some(dir) = &csv_dir {
        write_csvs(&data, dir);
    }
    for want in wants {
        let out = match want.as_str() {
            "all" => report::full_report(&data),
            "replay" => run_replay(&data),
            "table1" => report::table1(&data),
            "table2" => report::table2(&data),
            "table3" => report::table3(&data),
            "fig1" | "fig2" => report::fig_runs(&data),
            "fig3" | "fig4" => report::fig_sizes(&data),
            "fig5" => report::fig5(&data),
            "fig6" | "fig7" => report::fig_lifetimes(&data),
            "fig8" => report::fig8(&data),
            "fig9" => report::fig9(&data),
            "fig10" => report::fig10(&data),
            "fig11" => report::fig11(&data),
            "fig12" => report::fig12(&data),
            "fig13" | "fig14" => report::fig_paths(&data),
            "section4" => report::section4(&data),
            "section5" => report::section5(&data),
            "section7" => report::section7(&data),
            "section8" => report::section8(&data),
            "section9" => report::section9(&data),
            "section10" => report::section10(&data),
            other => {
                eprintln!("unknown artefact: {other}");
                usage()
            }
        };
        print!("{out}");
        println!();
    }
}
