//! Shared plumbing for the benchmark harness.
//!
//! The `exp` binary (`src/bin/exp.rs`) regenerates any table or figure of
//! the paper from a fresh study run; the Criterion benches
//! (`benches/*.rs`) measure the simulator and the analysis pipeline, and
//! run the DESIGN.md ablations.

use nt_study::{StreamOptions, StreamedStudyData, Study, StudyConfig, StudyData};

pub mod baseline;
pub use baseline::{check_min_ns, Baseline, BenchCheck, Verdict};

/// The scales the harness runs at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// 5 machines, 5 simulated minutes — CI-friendly.
    Smoke,
    /// 45 machines, 1 simulated hour — the default evaluation scale.
    Evaluation,
    /// 45 machines, 4 simulated weeks — the paper's deployment. Expect a
    /// very long run; use [`run_study_streaming`] at this scale so memory
    /// stays bounded by analysis state instead of growing with the trace
    /// (the batch path materializes every record and will not fit).
    Paper,
}

impl Scale {
    /// Parses a CLI scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "eval" | "evaluation" => Some(Scale::Evaluation),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The study configuration at this scale.
    pub fn config(self, seed: u64) -> StudyConfig {
        match self {
            Scale::Smoke => StudyConfig::smoke_test(seed),
            Scale::Evaluation => StudyConfig::evaluation(seed),
            Scale::Paper => StudyConfig::paper_scale(seed),
        }
    }
}

/// Runs a study at the given scale through the batch (materializing)
/// pipeline.
pub fn run_study(scale: Scale, seed: u64) -> StudyData {
    Study::run(&scale.config(seed))
}

/// Runs a study at the given scale through the streaming pipeline: online
/// aggregates only, bounded memory, no materialized trace. The only
/// feasible driver at [`Scale::Paper`].
pub fn run_study_streaming(scale: Scale, seed: u64) -> StreamedStudyData {
    Study::run_streaming(&scale.config(seed), &StreamOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("eval"), Some(Scale::Evaluation));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn smoke_study_runs() {
        let data = run_study(Scale::Smoke, 5);
        assert!(data.total_records > 100);
    }
}
