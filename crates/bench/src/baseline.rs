//! The checked-in bench baseline: flat-JSON parsing and the per-bench
//! regression verdicts behind `NT_BENCH_GATE`.
//!
//! `BENCH_streaming.json` is a flat object of integer fields, written by
//! the streaming harness under `NT_BENCH_WRITE=1`. This module owns the
//! reading half: [`Baseline::parse`] pulls every `"key": N` pair out of
//! the text (no JSON dependency — the file never nests), and
//! [`check_min_ns`] judges a fresh set of measurements against every
//! `*_min_ns` entry, so a regression in *any* bench fails the gate, not
//! just the three ratio-gated ones.

use std::collections::BTreeMap;

/// A parsed baseline file: every integer field, keyed by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    values: BTreeMap<String, u128>,
}

impl Baseline {
    /// Parses the flat `"key": N` fields of the baseline JSON. Non-integer
    /// or malformed fields are skipped — the writer only emits integers,
    /// so anything else is hand-editing damage the gate will then surface
    /// as a missing entry.
    pub fn parse(json: &str) -> Baseline {
        let mut values = BTreeMap::new();
        let mut rest = json;
        while let Some(open) = rest.find('"') {
            rest = &rest[open + 1..];
            let Some(close) = rest.find('"') else { break };
            let key = &rest[..close];
            rest = &rest[close + 1..];
            let after = rest.trim_start();
            if let Some(num) = after.strip_prefix(':') {
                let num = num.trim_start();
                let end = num.find(|c: char| !c.is_ascii_digit()).unwrap_or(num.len());
                if end > 0 {
                    if let Ok(v) = num[..end].parse() {
                        values.insert(key.to_string(), v);
                    }
                }
            }
        }
        Baseline { values }
    }

    /// The raw integer for one field.
    pub fn get(&self, key: &str) -> Option<u128> {
        self.values.get(key).copied()
    }

    /// The `NT_BENCH_ITERS` the whole baseline was recorded at.
    pub fn iterations(&self) -> Option<u32> {
        self.get("iterations").map(|v| v as u32)
    }

    /// The iteration count one bench entry was recorded at: its own
    /// `{name}_iters` field when present, else the file-wide count.
    /// Baselines predating per-entry counts fall back to the global one.
    pub fn iters_for(&self, name: &str) -> Option<u32> {
        self.get(&format!("{name}_iters"))
            .map(|v| v as u32)
            .or_else(|| self.iterations())
    }

    /// Every bench with a recorded `*_min_ns` floor, suffix stripped.
    pub fn min_ns_benches(&self) -> impl Iterator<Item = (&str, u128)> {
        self.values
            .iter()
            .filter_map(|(k, &v)| Some((k.strip_suffix("_min_ns")?, v)))
    }

    /// True when the file parsed to nothing — wrong path or clobbered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The gate's judgement of one bench against its baseline floor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the recorded floor (or faster).
    Ok,
    /// Slower than the floor by more than the tolerance.
    Regressed,
    /// In the baseline but not measured this run — a renamed or deleted
    /// bench. The stale entry would otherwise rot unchecked.
    MissingCurrent,
    /// Measured this run but absent from the baseline — a new bench that
    /// was never recorded. Regenerate so it is gated from now on.
    MissingBaseline,
    /// Recorded at a different `NT_BENCH_ITERS` than this run: the floors
    /// are not comparable (fewer iterations → noisier minima), so the
    /// gate refuses to judge rather than pass or fail on noise.
    ItersMismatch,
}

/// One row of the full-baseline gate report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCheck {
    /// Bench name (the `*_min_ns` key without its suffix).
    pub name: String,
    /// The checked-in floor, when the baseline has one.
    pub baseline_min_ns: Option<u128>,
    /// This run's floor, when the bench ran.
    pub current_min_ns: Option<u128>,
    /// Slowdown in percent vs the floor (negative = faster); only
    /// meaningful when both measurements exist.
    pub delta_pct: f64,
    pub verdict: Verdict,
}

impl BenchCheck {
    /// True when this row should fail the gate.
    pub fn failed(&self) -> bool {
        self.verdict != Verdict::Ok
    }
}

/// Judges every `*_min_ns` entry of the baseline against the current
/// measurements `(name, min_ns, iters)`, and every current measurement
/// against the baseline, at `tolerance_pct` percent slowdown budget.
///
/// `covered_elsewhere` names baseline entries judged by another gate
/// (the ratio gates re-measure their own `gate_*` pairs); they are
/// exempt from the raw comparison but still checked for staleness —
/// an exempt name with no consumer would silently rot.
pub fn check_min_ns(
    baseline: &Baseline,
    current: &[(String, u128, u32)],
    covered_elsewhere: &[&str],
    tolerance_pct: f64,
) -> Vec<BenchCheck> {
    let current_iters = |name: &str| current.iter().find(|(n, _, _)| n == name);
    let mut checks = Vec::new();
    for (name, base_min) in baseline.min_ns_benches() {
        if covered_elsewhere.contains(&name) {
            continue;
        }
        let check = match current_iters(name) {
            None => BenchCheck {
                name: name.to_string(),
                baseline_min_ns: Some(base_min),
                current_min_ns: None,
                delta_pct: 0.0,
                verdict: Verdict::MissingCurrent,
            },
            Some(&(_, cur_min, iters)) => {
                let recorded_iters = baseline.iters_for(name);
                let delta_pct =
                    100.0 * (cur_min as f64 - base_min as f64) / (base_min as f64).max(1.0);
                let verdict = if recorded_iters != Some(iters) {
                    Verdict::ItersMismatch
                } else if delta_pct > tolerance_pct {
                    Verdict::Regressed
                } else {
                    Verdict::Ok
                };
                BenchCheck {
                    name: name.to_string(),
                    baseline_min_ns: Some(base_min),
                    current_min_ns: Some(cur_min),
                    delta_pct,
                    verdict,
                }
            }
        };
        checks.push(check);
    }
    for (name, cur_min, _) in current {
        if baseline.get(&format!("{name}_min_ns")).is_none() {
            checks.push(BenchCheck {
                name: name.clone(),
                baseline_min_ns: None,
                current_min_ns: Some(*cur_min),
                delta_pct: 0.0,
                verdict: Verdict::MissingBaseline,
            });
        }
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "iterations": 2,
  "fast_bench_ns_per_iter": 120,
  "fast_bench_min_ns": 100,
  "fast_bench_iters": 2,
  "fast_bench_elements": 10,
  "slow_bench_min_ns": 1000,
  "slow_bench_iters": 2,
  "gate_reference_min_ns": 555,
  "smoke_total_records": 6410
}"#;

    #[test]
    fn parses_flat_integer_fields() {
        let b = Baseline::parse(SAMPLE);
        assert!(!b.is_empty());
        assert_eq!(b.get("iterations"), Some(2));
        assert_eq!(b.get("fast_bench_min_ns"), Some(100));
        assert_eq!(b.get("smoke_total_records"), Some(6410));
        assert_eq!(b.get("absent"), None);
        assert_eq!(b.iterations(), Some(2));
        assert!(Baseline::parse("not json at all").is_empty());
    }

    #[test]
    fn per_entry_iters_fall_back_to_global() {
        let b = Baseline::parse(SAMPLE);
        assert_eq!(b.iters_for("fast_bench"), Some(2));
        // gate_reference has no _iters field → global count.
        assert_eq!(b.iters_for("gate_reference"), Some(2));
        let no_global = Baseline::parse(r#"{"x_min_ns": 5}"#);
        assert_eq!(no_global.iters_for("x"), None);
    }

    #[test]
    fn min_ns_benches_strips_suffix() {
        let b = Baseline::parse(SAMPLE);
        let names: Vec<&str> = b.min_ns_benches().map(|(n, _)| n).collect();
        assert_eq!(names, ["fast_bench", "gate_reference", "slow_bench"]);
    }

    #[test]
    fn within_tolerance_passes_and_regression_fails() {
        let b = Baseline::parse(SAMPLE);
        let current = vec![
            ("fast_bench".to_string(), 104u128, 2u32), // +4% < 5% budget
            ("slow_bench".to_string(), 1200, 2),       // +20% > 5% budget
        ];
        let checks = check_min_ns(&b, &current, &["gate_reference"], 5.0);
        assert_eq!(checks.len(), 2);
        let fast = checks.iter().find(|c| c.name == "fast_bench").unwrap();
        assert_eq!(fast.verdict, Verdict::Ok);
        assert!(!fast.failed());
        assert!((fast.delta_pct - 4.0).abs() < 1e-9);
        let slow = checks.iter().find(|c| c.name == "slow_bench").unwrap();
        assert_eq!(slow.verdict, Verdict::Regressed);
        assert!(slow.failed());
    }

    #[test]
    fn improvement_is_never_a_failure() {
        let b = Baseline::parse(SAMPLE);
        let current = vec![
            ("fast_bench".to_string(), 40u128, 2u32),
            ("slow_bench".to_string(), 1000, 2),
        ];
        let checks = check_min_ns(&b, &current, &["gate_reference"], 5.0);
        assert!(checks.iter().all(|c| c.verdict == Verdict::Ok));
        assert!(checks.iter().any(|c| c.delta_pct < -50.0));
    }

    #[test]
    fn stale_and_new_benches_both_fail() {
        let b = Baseline::parse(SAMPLE);
        // slow_bench not measured; brand_new not recorded.
        let current = vec![
            ("fast_bench".to_string(), 100u128, 2u32),
            ("brand_new".to_string(), 7, 2),
        ];
        let checks = check_min_ns(&b, &current, &["gate_reference"], 5.0);
        let stale = checks.iter().find(|c| c.name == "slow_bench").unwrap();
        assert_eq!(stale.verdict, Verdict::MissingCurrent);
        let fresh = checks.iter().find(|c| c.name == "brand_new").unwrap();
        assert_eq!(fresh.verdict, Verdict::MissingBaseline);
        assert!(checks.iter().filter(|c| c.failed()).count() == 2);
    }

    #[test]
    fn mismatched_iters_refuse_to_gate() {
        let b = Baseline::parse(SAMPLE);
        // Recorded at 2 iterations, run at 1 → not comparable.
        let current = vec![
            ("fast_bench".to_string(), 100u128, 1u32),
            ("slow_bench".to_string(), 1000, 1),
        ];
        let checks = check_min_ns(&b, &current, &["gate_reference"], 5.0);
        assert!(checks.iter().all(|c| c.verdict == Verdict::ItersMismatch));
        assert!(checks.iter().all(|c| c.failed()));
    }
}
