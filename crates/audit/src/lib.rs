//! Conservation ledgers for the trace-study pipeline.
//!
//! The paper's headline results are accounting identities — bytes moved
//! by FastIO vs IRP vs paging I/O (§10), records traced vs records
//! analysed (§4), cache hits vs paging reads (§9) — so silent drift
//! between simulator layers corrupts every table downstream. This crate
//! is the bookkeeping: a [`Ledger`] of named double-entry accounts that
//! the instrumented layers post debits and credits into, plus
//! [`Ledger::reconcile`], which surfaces the *first* unbalanced account
//! as an [`Imbalance`].
//!
//! The crate is deliberately a leaf — no dependency on any simulator
//! layer — so `nt-io`, `nt-cache`, `nt-vm`, `nt-trace` and `nt-analysis`
//! can all post into the same ledger without a dependency cycle. Each
//! layer owns a posting routine (`post_conservation` by convention) that
//! translates its own counters into debits/credits on the accounts in
//! [`accounts`]; the study driver assembles one ledger per machine plus
//! one fleet-global ledger and reconciles them at end of run.
//!
//! Debit/credit convention: the layer that *originates* a quantity
//! debits it (the dispatcher saw N read requests; the machine emitted N
//! trace events), and every layer that *accounts for a share* of it
//! credits its share (N₁ rode FastIO, N₂ took the IRP path, …). A
//! balanced account means nothing leaked between the layers.

use std::collections::BTreeMap;
use std::fmt;

/// Account names shared by the posting layers. Keeping them here (rather
/// than stringly-typed at each call site) means a typo is a compile
/// error, not a silently always-balanced orphan account.
pub mod accounts {
    /// Read requests accepted by the dispatcher vs the §10 path buckets
    /// (FastIO + IRP + lock conflicts + stat failures).
    pub const READ_DISPATCH: &str = "io.read-dispatch";
    /// Write requests accepted by the dispatcher vs its path buckets.
    pub const WRITE_DISPATCH: &str = "io.write-dispatch";
    /// Paging reads the I/O layer performed vs their originators (cache
    /// demand misses + read-ahead + VM section faults).
    pub const PAGING_READ_IOS: &str = "paging.read-ios";
    /// Bytes moved by paging reads vs originator byte counts.
    pub const PAGING_READ_BYTES: &str = "paging.read-bytes";
    /// Paging writes performed vs originators (lazy writer + flushes +
    /// write-through).
    pub const PAGING_WRITE_IOS: &str = "paging.write-ios";
    /// Bytes moved by paging writes vs originator byte counts.
    pub const PAGING_WRITE_BYTES: &str = "paging.write-bytes";
    /// Bytes applications asked the cache for, as seen by the I/O layer,
    /// vs as seen by the cache manager (catches file-size drift between
    /// the namespace and the cache maps).
    pub const CACHE_REQUEST_BYTES: &str = "cache.request-bytes";
    /// The cache's own split of every requested byte: hit + resident-on-
    /// miss + pending-on-miss.
    pub const CACHE_READ_SPLIT: &str = "cache.read-split";
    /// Every byte that became dirty vs its exit route (lazy writer +
    /// flush + purge + still-dirty residue at end of run).
    pub const DIRTY_LIFECYCLE: &str = "cache.dirty-lifecycle";
    /// Trace events the machine emitted vs the agent's intake (recorded
    /// + dropped while suspended).
    pub const TRACE_EVENTS: &str = "trace.events";
    /// Records the agent accepted vs their fate (delivered + dropped on
    /// buffer overflow) — the `LossLedger` identity, as an account.
    pub const TRACE_RECORDS: &str = "trace.records";
    /// Records delivered to the collection tier vs records the analysis
    /// sinks actually analysed for this machine.
    pub const ANALYSIS_RECORDS: &str = "analysis.records";
    /// Fleet-global: per-machine delivered sums vs the pool's total.
    pub const POOL_RECORDS: &str = "pool.records";
    /// Shard tier: the shard's machines' delivered sums vs the shard
    /// collector pool's own total — the per-shard leg of the sharded
    /// roll-up.
    pub const SHARD_RECORDS: &str = "shard.records";
    /// Fleet root of the sharded roll-up: per-shard pool totals vs the
    /// fleet-merged total.
    pub const FLEET_ROLLUP_RECORDS: &str = "fleet.rollup-records";
    /// What-if replay: source records fed to a machine's replay vs their
    /// fate in the replayed stack (replayed + skipped + control).
    pub const REPLAY_RECORDS: &str = "replay.records";
}

/// One account's running debit and credit totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Entry {
    /// Sum of postings on the originating side.
    pub debit: u64,
    /// Sum of postings on the accounted-for side.
    pub credit: u64,
}

impl Entry {
    /// Signed drift (credit − debit); zero when balanced.
    pub fn drift(&self) -> i128 {
        self.credit as i128 - self.debit as i128
    }
}

/// The first unbalanced account found by [`Ledger::reconcile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Imbalance {
    /// The ledger's scope (e.g. `machine-7` or `fleet`).
    pub scope: String,
    /// The offending account name.
    pub account: &'static str,
    /// Debit total at reconciliation.
    pub debit: u64,
    /// Credit total at reconciliation.
    pub credit: u64,
}

impl fmt::Display for Imbalance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conservation violated in {}: account '{}' has debit {} vs credit {} (drift {:+})",
            self.scope,
            self.account,
            self.debit,
            self.credit,
            self.credit as i128 - self.debit as i128
        )
    }
}

impl std::error::Error for Imbalance {}

/// A scoped set of double-entry conservation accounts.
///
/// Accounts materialize on first posting; `BTreeMap` keeps report and
/// reconciliation order deterministic.
#[derive(Clone, Debug)]
pub struct Ledger {
    scope: String,
    accounts: BTreeMap<&'static str, Entry>,
}

impl Ledger {
    /// An empty ledger labelled `scope` (shown in failure reports).
    pub fn new(scope: impl Into<String>) -> Self {
        Ledger {
            scope: scope.into(),
            accounts: BTreeMap::new(),
        }
    }

    /// The ledger's scope label.
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Posts on the originating side of `account`.
    pub fn debit(&mut self, account: &'static str, amount: u64) {
        self.accounts.entry(account).or_default().debit += amount;
    }

    /// Posts on the accounted-for side of `account`.
    pub fn credit(&mut self, account: &'static str, amount: u64) {
        self.accounts.entry(account).or_default().credit += amount;
    }

    /// The current totals of one account, if anything was posted to it.
    pub fn entry(&self, account: &str) -> Option<Entry> {
        self.accounts.get(account).copied()
    }

    /// All accounts in name order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, Entry)> + '_ {
        self.accounts.iter().map(|(&name, &e)| (name, e))
    }

    /// Checks every account; returns the first (in account-name order)
    /// whose debits and credits disagree.
    pub fn reconcile(&self) -> Result<(), Imbalance> {
        for (&account, entry) in &self.accounts {
            if entry.debit != entry.credit {
                return Err(Imbalance {
                    scope: self.scope.clone(),
                    account,
                    debit: entry.debit,
                    credit: entry.credit,
                });
            }
        }
        Ok(())
    }

    /// A one-line-per-account textual report, for `run_audited` output
    /// and EXPERIMENTS.md examples.
    pub fn report(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "ledger {}", self.scope);
        for (name, e) in self.entries() {
            let state = if e.debit == e.credit { "ok" } else { "DRIFT" };
            let _ = writeln!(
                out,
                "  {name:<24} debit {:>14} credit {:>14} {state}",
                e.debit, e.credit
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ledger_reconciles() {
        let mut l = Ledger::new("machine-0");
        l.debit(accounts::READ_DISPATCH, 10);
        l.credit(accounts::READ_DISPATCH, 4);
        l.credit(accounts::READ_DISPATCH, 6);
        assert_eq!(l.reconcile(), Ok(()));
        let e = l.entry(accounts::READ_DISPATCH).unwrap();
        assert_eq!((e.debit, e.credit, e.drift()), (10, 10, 0));
    }

    #[test]
    fn first_unbalanced_account_is_reported_in_name_order() {
        let mut l = Ledger::new("machine-3");
        l.debit(accounts::TRACE_RECORDS, 5);
        l.credit(accounts::TRACE_RECORDS, 5);
        // Two drifting accounts; 'cache.request-bytes' sorts before
        // 'paging.read-ios', so it must be the one reported.
        l.debit(accounts::PAGING_READ_IOS, 3);
        l.debit(accounts::CACHE_REQUEST_BYTES, 100);
        l.credit(accounts::CACHE_REQUEST_BYTES, 90);
        let err = l.reconcile().unwrap_err();
        assert_eq!(err.account, accounts::CACHE_REQUEST_BYTES);
        assert_eq!(err.scope, "machine-3");
        assert_eq!((err.debit, err.credit), (100, 90));
        let msg = err.to_string();
        assert!(msg.contains("machine-3"), "{msg}");
        assert!(msg.contains("-10"), "{msg}");
    }

    #[test]
    fn empty_and_untouched_accounts_balance() {
        let l = Ledger::new("fleet");
        assert_eq!(l.reconcile(), Ok(()));
        assert_eq!(l.entry(accounts::POOL_RECORDS), None);
    }

    #[test]
    fn report_flags_drift() {
        let mut l = Ledger::new("machine-1");
        l.debit(accounts::TRACE_EVENTS, 2);
        l.credit(accounts::TRACE_EVENTS, 1);
        l.debit(accounts::TRACE_RECORDS, 1);
        l.credit(accounts::TRACE_RECORDS, 1);
        let r = l.report();
        assert!(r.contains("trace.events"));
        assert!(r.contains("DRIFT"));
        assert!(r.contains("ok"));
    }
}
