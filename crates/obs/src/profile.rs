//! Runtime self-profiling: host wall-clock attribution per subsystem
//! phase, accumulated by the span layer.

use std::fmt;

use crate::Phase;

/// Accumulated wall-clock for one [`Phase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans closed in this phase.
    pub spans: u64,
    /// Exclusive (self) nanoseconds: time inside the phase's spans minus
    /// time inside nested child spans.
    pub self_ns: u64,
    /// Inclusive nanoseconds: child spans included. Nested spans of the
    /// same phase are double-counted here (as in any inclusive profile),
    /// so `self_ns` is the column that sums to real elapsed time.
    pub total_ns: u64,
}

/// Per-phase wall-clock attribution for one machine or a whole study.
///
/// Profiles add: merging every machine's profile (plus the study-side
/// analysis profiler) yields the fleet view reported in `StudyData`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeProfile {
    phases: [PhaseStat; Phase::ALL.len()],
}

impl RuntimeProfile {
    /// The accumulated stat for one phase.
    pub fn phase(&self, phase: Phase) -> PhaseStat {
        self.phases[phase.index()]
    }

    /// Folds one closed span into the profile.
    pub(crate) fn record(&mut self, phase: Phase, self_ns: u64, total_ns: u64) {
        let s = &mut self.phases[phase.index()];
        s.spans += 1;
        s.self_ns = s.self_ns.saturating_add(self_ns);
        s.total_ns = s.total_ns.saturating_add(total_ns);
    }

    /// Adds another profile into this one.
    pub fn merge(&mut self, other: &RuntimeProfile) {
        for (mine, theirs) in self.phases.iter_mut().zip(other.phases.iter()) {
            mine.spans += theirs.spans;
            mine.self_ns = mine.self_ns.saturating_add(theirs.self_ns);
            mine.total_ns = mine.total_ns.saturating_add(theirs.total_ns);
        }
    }

    /// Sum of exclusive time over all phases — the instrumented share of
    /// the run's wall-clock.
    pub fn total_self_ns(&self) -> u64 {
        self.phases.iter().map(|s| s.self_ns).sum()
    }

    /// Total number of closed spans.
    pub fn total_spans(&self) -> u64 {
        self.phases.iter().map(|s| s.spans).sum()
    }

    /// True when nothing was recorded (telemetry off).
    pub fn is_empty(&self) -> bool {
        self.total_spans() == 0
    }
}

/// One row of the per-layer ns/op budget table: how much host wall-clock
/// one span (one operation) of the phase costs on average. Published in
/// `StudyData` so perf regressions show up as budget drift, the same way
/// determinism drift shows up in the digest suite.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseBudget {
    /// The driver layer / subsystem phase.
    pub phase: Phase,
    /// Operations (closed spans) attributed to the phase.
    pub spans: u64,
    /// Exclusive nanoseconds spent in the phase.
    pub self_ns: u64,
    /// Average exclusive nanoseconds per operation.
    pub ns_per_op: f64,
}

impl RuntimeProfile {
    /// The per-layer ns/op budget: one row per phase that recorded at
    /// least one span, in [`Phase::ALL`] order. Empty with telemetry off.
    pub fn layer_budget(&self) -> Vec<PhaseBudget> {
        Phase::ALL
            .iter()
            .map(|&phase| (phase, self.phase(phase)))
            .filter(|(_, s)| s.spans > 0)
            .map(|(phase, s)| PhaseBudget {
                phase,
                spans: s.spans,
                self_ns: s.self_ns,
                ns_per_op: s.self_ns as f64 / s.spans as f64,
            })
            .collect()
    }
}

impl fmt::Display for PhaseBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>10} ops {:>12} {:>10.1} ns/op",
            self.phase.name(),
            self.spans,
            fmt_ns(self.self_ns),
            self.ns_per_op
        )
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for RuntimeProfile {
    /// A small fixed-width table:
    ///
    /// ```text
    /// phase        spans        self       total   self%
    /// dispatch    123456     1.23s       1.80s    61.2%
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let grand = self.total_self_ns().max(1);
        writeln!(
            f,
            "{:<10} {:>10} {:>12} {:>12} {:>7}",
            "phase", "spans", "self", "total", "self%"
        )?;
        for phase in Phase::ALL {
            let s = self.phase(phase);
            writeln!(
                f,
                "{:<10} {:>10} {:>12} {:>12} {:>6.1}%",
                phase.name(),
                s.spans,
                fmt_ns(s.self_ns),
                fmt_ns(s.total_ns),
                100.0 * s.self_ns as f64 / grand as f64,
            )?;
        }
        write!(
            f,
            "{:<10} {:>10} {:>12}",
            "(sum)",
            self.total_spans(),
            fmt_ns(self.total_self_ns())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = RuntimeProfile::default();
        a.record(Phase::Dispatch, 10, 15);
        a.record(Phase::Dispatch, 5, 5);
        a.record(Phase::Cache, 7, 7);
        let mut b = RuntimeProfile::default();
        b.record(Phase::Cache, 3, 3);
        a.merge(&b);
        assert_eq!(a.phase(Phase::Dispatch).spans, 2);
        assert_eq!(a.phase(Phase::Dispatch).self_ns, 15);
        assert_eq!(a.phase(Phase::Dispatch).total_ns, 20);
        assert_eq!(a.phase(Phase::Cache).self_ns, 10);
        assert_eq!(a.total_self_ns(), 25);
        assert_eq!(a.total_spans(), 4);
        assert!(!a.is_empty());
        assert!(RuntimeProfile::default().is_empty());
    }

    #[test]
    fn layer_budget_averages_self_time() {
        let mut p = RuntimeProfile::default();
        p.record(Phase::Dispatch, 100, 120);
        p.record(Phase::Dispatch, 50, 60);
        p.record(Phase::Trace, 30, 30);
        let budget = p.layer_budget();
        assert_eq!(budget.len(), 2, "only phases with spans appear");
        assert_eq!(budget[0].phase, Phase::Dispatch);
        assert_eq!(budget[0].spans, 2);
        assert_eq!(budget[0].self_ns, 150);
        assert!((budget[0].ns_per_op - 75.0).abs() < f64::EPSILON);
        assert_eq!(budget[1].phase, Phase::Trace);
        assert!(budget[1].to_string().contains("ns/op"));
        assert!(RuntimeProfile::default().layer_budget().is_empty());
    }

    #[test]
    fn display_renders_every_phase() {
        let mut p = RuntimeProfile::default();
        p.record(Phase::Vm, 1_500_000, 1_500_000);
        let s = p.to_string();
        for phase in Phase::ALL {
            assert!(s.contains(phase.name()), "missing {}", phase.name());
        }
        assert!(s.contains("1.50ms"));
    }
}
