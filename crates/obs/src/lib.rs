//! `nt-obs`: fleet telemetry — spans, time-series and runtime
//! self-profiling for the whole simulator.
//!
//! The paper's artefact *is* instrumentation: a filter driver stacked on
//! every file system that watches each IRP and FastIO call go by (§3).
//! This crate plays the same role for the reproduction itself. A
//! [`Telemetry`] handle is threaded through a machine's layers exactly
//! the way the paper's filter driver sits in the driver stack, and
//! records three things:
//!
//! * **Spans** — scoped timings of the IRP lifecycle, cache and paging
//!   internals, trace shipping and analysis ingest. Each span carries a
//!   *simulated* timestamp (the machine's virtual clock) and a *host*
//!   timestamp (wall-clock nanoseconds since the handle was created), so
//!   one log answers both "when in the workload" and "where did the
//!   wall-clock go". Spans can be mirrored to a JSONL log.
//! * **Time-series** — ring-buffered gauges and counters sampled on a
//!   simulated-clock cadence ([`series`]), exported per machine and
//!   fleet-aggregated ([`export`]).
//! * **A runtime profile** — per-phase wall-clock attribution
//!   ([`RuntimeProfile`]) with exclusive (self) and inclusive times, so
//!   bench regressions can be localised to a subsystem.
//!
//! Everything is **off by default**. A disabled handle is a `None`
//! check per call site — no allocation, no lock, no clock read — and the
//! instrumented crates never behave differently based on what telemetry
//! observes, which `tests/obs.rs` locks down by diffing fact tables.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use nt_sim::{SimDuration, SimTime};

pub mod export;
pub mod profile;
pub mod recorder;
pub mod series;
pub mod shipment;
pub mod sparkline;
pub mod watchdog;

pub use export::{write_timeseries_jsonl, ExportError, SeriesRow};
pub use profile::{PhaseBudget, PhaseStat, RuntimeProfile};
pub use recorder::{FlightEvent, FlightRecorder, RecorderScope};
pub use series::{SeriesData, SeriesKind, SeriesRegistry};
pub use shipment::{write_chrome_trace, Hop, HopSpan, ShipmentTracer, TraceContext};
pub use watchdog::{HealthFinding, Watchdog};

/// A subsystem phase, the unit of wall-clock attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// IRP/FastIO dispatch in `nt-io` — the filter driver's vantage point.
    Dispatch,
    /// Cache manager work: lookups, copy interface, lazy-writer passes.
    Cache,
    /// Memory manager work: section paging, image loads.
    Vm,
    /// Trace agent work: batching, shipping, final flush.
    Trace,
    /// Analysis ingest: record parsing, online accumulators, table builds.
    Analysis,
    /// Work done by optional filter drivers layered above the FSD —
    /// e.g. the antivirus scan filter's per-open/per-read latency.
    Filter,
    /// NTT warehouse I/O: segment export at study finish, re-ingest of
    /// stored segments.
    Warehouse,
    /// What-if replay: trace-driven re-execution of recorded requests
    /// against variant policy stacks (§9 simulation studies).
    Replay,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 8] = [
        Phase::Dispatch,
        Phase::Cache,
        Phase::Vm,
        Phase::Trace,
        Phase::Analysis,
        Phase::Filter,
        Phase::Warehouse,
        Phase::Replay,
    ];

    /// Stable lower-case name used in span logs and reports.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::Cache => "cache",
            Phase::Vm => "vm",
            Phase::Trace => "trace",
            Phase::Analysis => "analysis",
            Phase::Filter => "filter",
            Phase::Warehouse => "warehouse",
            Phase::Replay => "replay",
        }
    }

    pub(crate) const fn index(self) -> usize {
        match self {
            Phase::Dispatch => 0,
            Phase::Cache => 1,
            Phase::Vm => 2,
            Phase::Trace => 3,
            Phase::Analysis => 4,
            Phase::Filter => 5,
            Phase::Warehouse => 6,
            Phase::Replay => 7,
        }
    }
}

/// Whether a study runs with telemetry, and how.
#[derive(Clone, Debug, Default)]
pub enum TelemetryConfig {
    /// No telemetry: handles are inert, nothing is sampled or logged.
    #[default]
    Off,
    /// Telemetry on, with the given knobs.
    On(TelemetryOptions),
}

impl TelemetryConfig {
    /// True when telemetry is enabled.
    pub fn is_on(&self) -> bool {
        matches!(self, TelemetryConfig::On(_))
    }

    /// The options when enabled.
    pub fn options(&self) -> Option<&TelemetryOptions> {
        match self {
            TelemetryConfig::Off => None,
            TelemetryConfig::On(o) => Some(o),
        }
    }
}

/// Knobs for an enabled telemetry layer.
#[derive(Clone, Debug)]
pub struct TelemetryOptions {
    /// Artefact directory. Span logs (`spans-m<NN>.jsonl`) and the fleet
    /// `timeseries.jsonl` land here; `None` keeps everything in memory.
    pub dir: Option<PathBuf>,
    /// Mirror spans to per-machine JSONL logs (needs `dir`).
    pub log_spans: bool,
    /// Simulated-clock cadence of the gauge/counter sampler.
    pub sample_interval: SimDuration,
    /// Ring capacity per series; the oldest points fall off and are
    /// counted in [`SeriesData::dropped`].
    pub ring_capacity: usize,
    /// Attach a deterministic [`TraceContext`] to every shipped record
    /// batch and emit parent-linked hop spans (agent → collector →
    /// analysis → warehouse), exported as a Chrome trace-event timeline
    /// (`trace.json` under `dir`).
    pub trace_shipments: bool,
    /// Keep a bounded per-machine/per-shard ring of recent pipeline
    /// events (drops, failovers, suspensions, merge boundaries) for the
    /// post-mortem dump (`flight-recorder.jsonl` under `dir`).
    pub flight_recorder: bool,
    /// Ring capacity per flight-recorder scope; oldest events fall off
    /// and are counted per scope.
    pub flight_recorder_capacity: usize,
    /// Sample the pipeline health watchdogs on the simulated clock and
    /// surface typed [`HealthFinding`]s in the study output.
    pub watchdogs: bool,
    /// Dump the flight recorder at end of run when the fleet lost any
    /// records, even if the study itself completed without a fault.
    pub dump_on_loss: bool,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            dir: None,
            log_spans: true,
            sample_interval: SimDuration::from_secs(30),
            ring_capacity: 4_096,
            trace_shipments: false,
            flight_recorder: false,
            flight_recorder_capacity: 256,
            watchdogs: false,
            dump_on_loss: false,
        }
    }
}

/// A per-span record on the enter stack.
struct Frame {
    phase: Phase,
    name: &'static str,
    sim_ticks: u64,
    host_enter_ns: u64,
    /// Wall-clock spent in child spans, subtracted to get self time.
    child_ns: u64,
}

/// Live telemetry state behind one machine's handle.
struct Inner {
    machine: u32,
    epoch: Instant,
    profile: RuntimeProfile,
    stack: Vec<Frame>,
    series: SeriesRegistry,
    log: Option<std::io::BufWriter<fs::File>>,
    /// Reused line buffer so span logging never allocates per span.
    line: String,
    /// High-water mark of simulated time seen by any span; used to keep
    /// logged sim stamps monotone per machine even when a caller lacks a
    /// trustworthy clock (e.g. the end-of-run flush).
    last_sim_ticks: u64,
    /// High-water mark of simulated stamps already written to the span
    /// log. Spans are logged at exit, so a parent whose body advanced
    /// simulated time (e.g. `load_image` issuing creates and faults at
    /// later stamps) would otherwise land *after* its children with an
    /// *earlier* stamp; the logged stamp is clamped to this mark, which
    /// keeps every span file monotone and reads naturally as "the latest
    /// simulated instant the span covered".
    last_logged_sim: u64,
    spans_logged: u64,
    log_write_failures: u64,
    log_failed: bool,
}

impl Inner {
    fn host_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn enter(&mut self, phase: Phase, name: &'static str, sim_ticks: Option<u64>) {
        let sim = match sim_ticks {
            Some(t) => t.max(self.last_sim_ticks),
            // A child span inherits its parent's simulated stamp; with no
            // parent, the machine's high-water mark stands in.
            None => self
                .stack
                .last()
                .map(|f| f.sim_ticks)
                .unwrap_or(self.last_sim_ticks),
        };
        self.last_sim_ticks = self.last_sim_ticks.max(sim);
        self.stack.push(Frame {
            phase,
            name,
            sim_ticks: sim,
            host_enter_ns: self.host_ns(),
            child_ns: 0,
        });
    }

    fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let total_ns = self.host_ns().saturating_sub(frame.host_enter_ns);
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        self.profile.record(frame.phase, self_ns, total_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(total_ns);
        }
        if self.log.is_some() {
            self.log_span(&frame, total_ns, self_ns);
        }
    }

    fn log_span(&mut self, frame: &Frame, total_ns: u64, self_ns: u64) {
        use fmt::Write as _;
        self.last_logged_sim = self.last_logged_sim.max(frame.sim_ticks);
        self.line.clear();
        // Hand-rolled JSON: every field is a number or a static
        // identifier, so no escaping is needed.
        let _ = write!(
            self.line,
            "{{\"m\":{},\"phase\":\"{}\",\"name\":\"{}\",\"sim\":{},\"host_enter_ns\":{},\"host_ns\":{},\"self_ns\":{},\"depth\":{}}}",
            self.machine,
            frame.phase.name(),
            frame.name,
            self.last_logged_sim,
            frame.host_enter_ns,
            total_ns,
            self_ns,
            self.stack.len(),
        );
        // The log can race away between the caller's check and here (a
        // prior write may have disabled it); treat a missing writer as a
        // counted failure, never a panic — a full disk must not kill the
        // study it is observing.
        let ok = match self.log.as_mut() {
            Some(log) => writeln!(log, "{}", self.line).is_ok(),
            None => false,
        };
        if ok {
            self.spans_logged += 1;
        } else {
            self.log_write_failures += 1;
            if !self.log_failed {
                self.log_failed = true;
                eprintln!(
                    "nt-obs: span log write failed for machine {}; disabling the log",
                    self.machine
                );
                self.log = None;
            }
        }
    }
}

/// A per-machine telemetry handle.
///
/// Cloning is cheap (an `Arc`); every layer of one machine shares the
/// same underlying state. The disabled handle ([`Telemetry::off`], also
/// `Default`) costs one `Option` check per call.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Telemetry {
    /// The inert handle: every operation is a no-op.
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A live handle for one machine, honouring `options` (span log file
    /// under `options.dir` when `log_spans` is set).
    pub fn for_machine(machine: u32, options: &TelemetryOptions) -> Self {
        let log = match (&options.dir, options.log_spans) {
            (Some(dir), true) => {
                let _ = fs::create_dir_all(dir);
                let path = dir.join(format!("spans-m{machine:02}.jsonl"));
                match fs::File::create(&path) {
                    Ok(f) => Some(std::io::BufWriter::new(f)),
                    Err(e) => {
                        eprintln!(
                            "nt-obs: cannot open {}: {e}; spans stay in memory",
                            path.display()
                        );
                        None
                    }
                }
            }
            _ => None,
        };
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner {
                machine,
                epoch: Instant::now(),
                profile: RuntimeProfile::default(),
                stack: Vec::with_capacity(8),
                series: SeriesRegistry::new(options.ring_capacity),
                log,
                line: String::with_capacity(160),
                last_sim_ticks: 0,
                last_logged_sim: 0,
                spans_logged: 0,
                log_write_failures: 0,
                log_failed: false,
            }))),
        }
    }

    /// A live handle that only accumulates the [`RuntimeProfile`] — no
    /// span log, no series. Used for study-side phases (analysis ingest)
    /// that have no machine identity.
    pub fn profiler() -> Self {
        Telemetry::for_machine(
            u32::MAX,
            &TelemetryOptions {
                dir: None,
                log_spans: false,
                sample_interval: SimDuration::MAX,
                ring_capacity: 0,
                ..TelemetryOptions::default()
            },
        )
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, Inner>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Opens a span stamped with the machine's simulated clock. The span
    /// closes when the guard drops.
    #[inline]
    pub fn span(&self, phase: Phase, name: &'static str, sim: SimTime) -> SpanGuard {
        if let Some(mut inner) = self.lock() {
            inner.enter(phase, name, Some(sim.ticks()));
            SpanGuard {
                inner: self.inner.clone(),
            }
        } else {
            SpanGuard { inner: None }
        }
    }

    /// Opens a span that inherits the enclosing span's simulated stamp
    /// (or the machine's high-water mark at top level). For call sites
    /// without a trustworthy simulated clock of their own.
    #[inline]
    pub fn span_child(&self, phase: Phase, name: &'static str) -> SpanGuard {
        if let Some(mut inner) = self.lock() {
            inner.enter(phase, name, None);
            SpanGuard {
                inner: self.inner.clone(),
            }
        } else {
            SpanGuard { inner: None }
        }
    }

    /// Records one sampler tick: each `(name, kind, value)` lands in its
    /// ring series under the simulated timestamp `now`. One lock per
    /// tick, not per series.
    pub fn record_many(&self, now: SimTime, samples: &[(&'static str, SeriesKind, f64)]) {
        if let Some(mut inner) = self.lock() {
            let t = now.ticks();
            inner.last_sim_ticks = inner.last_sim_ticks.max(t);
            for &(name, kind, value) in samples {
                inner.series.record(name, kind, t, value);
            }
        }
    }

    /// Flushes the span log and snapshots everything recorded so far.
    /// `None` on a disabled handle.
    pub fn report(&self) -> Option<MachineTelemetry> {
        let mut inner = self.lock()?;
        if let Some(log) = inner.log.as_mut() {
            let _ = log.flush();
        }
        Some(MachineTelemetry {
            machine: inner.machine,
            profile: inner.profile,
            series: inner.series.dump(),
            spans_logged: inner.spans_logged,
            log_write_failures: inner.log_write_failures,
        })
    }
}

/// Closes its span on drop.
pub struct SpanGuard {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(m) = &self.inner {
            m.lock().unwrap_or_else(|p| p.into_inner()).exit();
        }
    }
}

/// Everything one machine's telemetry recorded, snapshotted by
/// [`Telemetry::report`].
#[derive(Clone, Debug, PartialEq)]
pub struct MachineTelemetry {
    /// Machine id (`u32::MAX` for the study-side profiler handle).
    pub machine: u32,
    /// Wall-clock attribution per phase.
    pub profile: RuntimeProfile,
    /// Ring-buffered series, in registration order.
    pub series: Vec<SeriesData>,
    /// Spans mirrored to the JSONL log (0 when logging is off).
    pub spans_logged: u64,
    /// Span-log writes that failed (disk full, log torn down mid-run).
    /// Non-fatal by design: the log is dropped, the study keeps running,
    /// and the failure count is surfaced here.
    pub log_write_failures: u64,
}

impl MachineTelemetry {
    /// The named series, if it was ever recorded.
    pub fn series(&self, name: &str) -> Option<&SeriesData> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        {
            let _g = t.span(Phase::Dispatch, "noop", SimTime::from_secs(1));
            let _h = t.span_child(Phase::Cache, "noop-child");
        }
        t.record_many(SimTime::ZERO, &[("x", SeriesKind::Gauge, 1.0)]);
        assert!(t.report().is_none());
    }

    #[test]
    fn spans_nest_and_attribute_self_time() {
        let t = Telemetry::for_machine(7, &TelemetryOptions::default());
        {
            let _outer = t.span(Phase::Dispatch, "read", SimTime::from_secs(5));
            {
                let _inner = t.span_child(Phase::Cache, "cache.read");
            }
        }
        let r = t.report().unwrap();
        assert_eq!(r.machine, 7);
        let d = r.profile.phase(Phase::Dispatch);
        let c = r.profile.phase(Phase::Cache);
        assert_eq!(d.spans, 1);
        assert_eq!(c.spans, 1);
        // The child's total is carved out of the parent's self time.
        assert!(d.self_ns <= d.total_ns);
        assert!(c.self_ns <= d.total_ns.max(c.total_ns) + d.total_ns);
        assert_eq!(r.profile.phase(Phase::Vm).spans, 0);
    }

    #[test]
    fn sim_stamps_are_monotone_even_with_stale_callers() {
        let t = Telemetry::for_machine(0, &TelemetryOptions::default());
        drop(t.span(Phase::Dispatch, "a", SimTime::from_secs(10)));
        // A caller handing in an older stamp gets clamped forward.
        drop(t.span(Phase::Dispatch, "b", SimTime::from_secs(3)));
        drop(t.span_child(Phase::Trace, "flush"));
        let r = t.report().unwrap();
        assert_eq!(r.profile.phase(Phase::Dispatch).spans, 2);
        assert_eq!(r.profile.phase(Phase::Trace).spans, 1);
    }

    #[test]
    fn record_many_lands_in_named_series() {
        let t = Telemetry::for_machine(1, &TelemetryOptions::default());
        t.record_many(
            SimTime::from_secs(30),
            &[
                ("cache.resident_bytes", SeriesKind::Gauge, 42.0),
                ("io.ops", SeriesKind::Counter, 10.0),
            ],
        );
        t.record_many(
            SimTime::from_secs(60),
            &[
                ("cache.resident_bytes", SeriesKind::Gauge, 41.0),
                ("io.ops", SeriesKind::Counter, 25.0),
            ],
        );
        let r = t.report().unwrap();
        let g = r.series("cache.resident_bytes").unwrap();
        assert_eq!(g.kind, SeriesKind::Gauge);
        assert_eq!(g.points.len(), 2);
        assert_eq!(g.points[1], (SimTime::from_secs(60).ticks(), 41.0));
        let c = r.series("io.ops").unwrap();
        assert_eq!(c.kind, SeriesKind::Counter);
        assert_eq!(c.points[1].1, 25.0);
    }

    /// A full disk (here: the span log symlinked to `/dev/full`) must
    /// never kill the study — the failed write is counted, the log is
    /// dropped, and everything else keeps recording.
    #[test]
    #[cfg(target_os = "linux")]
    fn span_log_write_failure_is_counted_not_fatal() {
        let dir = std::env::temp_dir().join(format!("nt-obs-full-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        std::os::unix::fs::symlink("/dev/full", dir.join("spans-m09.jsonl")).unwrap();
        let t = Telemetry::for_machine(
            9,
            &TelemetryOptions {
                dir: Some(dir.clone()),
                ..TelemetryOptions::default()
            },
        );
        // Enough spans to overflow the BufWriter and hit ENOSPC.
        for _ in 0..2_000 {
            drop(t.span(Phase::Dispatch, "read", SimTime::from_secs(1)));
        }
        let r = t.report().unwrap();
        assert!(r.log_write_failures >= 1, "the failed write was counted");
        assert!(
            r.spans_logged < 2_000,
            "logging stopped once the disk filled"
        );
        // The profile kept attributing spans regardless.
        assert_eq!(r.profile.phase(Phase::Dispatch).spans, 2_000);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn span_log_writes_jsonl() {
        let dir = std::env::temp_dir().join(format!("nt-obs-test-{}", std::process::id()));
        let t = Telemetry::for_machine(
            3,
            &TelemetryOptions {
                dir: Some(dir.clone()),
                ..TelemetryOptions::default()
            },
        );
        drop(t.span(Phase::Vm, "vm.fault", SimTime::from_secs(2)));
        let r = t.report().unwrap();
        assert_eq!(r.spans_logged, 1);
        let text = fs::read_to_string(dir.join("spans-m03.jsonl")).unwrap();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"phase\":\"vm\""));
        assert!(line.contains("\"sim\":20000000"));
        let _ = fs::remove_dir_all(&dir);
    }
}
