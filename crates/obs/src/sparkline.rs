//! Terminal sparklines for the fleet dashboard.

/// Eight-level block ramp.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline at most `width` glyphs wide.
/// Longer inputs are resampled by averaging equal-length buckets; a flat
/// (or empty) series renders at the lowest level.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let buckets = resample(values, width);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &buckets {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    buckets
        .iter()
        .map(|&v| {
            if range <= 0.0 || !range.is_finite() {
                BARS[0]
            } else {
                let level = ((v - lo) / range * (BARS.len() - 1) as f64).round() as usize;
                BARS[level.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Averages `values` down to at most `width` buckets.
fn resample(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let start = i * values.len() / width;
            let end = ((i + 1) * values.len() / width).max(start + 1);
            let slice = &values[start..end];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_from_low_to_high() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn flat_series_renders_low() {
        assert_eq!(sparkline(&[5.0, 5.0, 5.0], 8), "▁▁▁");
    }

    #[test]
    fn long_series_resamples_to_width() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = sparkline(&values, 10);
        assert_eq!(s.chars().count(), 10);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
    }
}
