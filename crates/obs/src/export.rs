//! Fleet aggregation and the `timeseries.jsonl` artefact.
//!
//! One line per (scope, series): fleet-wide sums first, then
//! per-category sums, then each machine's own rings. Samples are taken
//! on a shared simulated cadence (every machine samples at the same
//! multiples of the interval), so summing values at equal tick stamps is
//! exact, not an interpolation.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::series::{SeriesData, SeriesKind};
use crate::MachineTelemetry;

/// Why an artefact export failed. Every exporter in this crate (the
/// time-series JSONL, the Chrome shipment trace, the flight-recorder
/// dump) reports failure through this type instead of panicking or
/// silently clobbering whatever sat at the target path.
#[derive(Debug)]
pub enum ExportError {
    /// A path component that must be a directory exists but is not one
    /// (e.g. a regular file sitting where the artefact directory should
    /// be). Nothing is overwritten.
    NotADirectory {
        /// The offending pre-existing non-directory path.
        path: PathBuf,
    },
    /// An underlying I/O failure (permission, disk full, ...).
    Io {
        /// The path being written or created.
        path: PathBuf,
        /// The originating error.
        source: io::Error,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::NotADirectory { path } => {
                write!(
                    f,
                    "export path component {} exists and is not a directory",
                    path.display()
                )
            }
            ExportError::Io { path, source } => {
                write!(f, "export to {} failed: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::NotADirectory { .. } => None,
            ExportError::Io { source, .. } => Some(source),
        }
    }
}

/// Ensures `path`'s parent chain exists as directories, refusing with a
/// typed error when a pre-existing non-directory blocks the way.
pub(crate) fn ensure_parent_dir(path: &Path) -> Result<(), ExportError> {
    let Some(parent) = path.parent() else {
        return Ok(());
    };
    if parent.as_os_str().is_empty() {
        return Ok(());
    }
    // Name the offending ancestor precisely: `create_dir_all` would fold
    // "a file is in the way" into an opaque io::Error.
    for ancestor in parent.ancestors() {
        if let Ok(meta) = fs::metadata(ancestor) {
            if !meta.is_dir() {
                return Err(ExportError::NotADirectory {
                    path: ancestor.to_path_buf(),
                });
            }
            break;
        }
    }
    fs::create_dir_all(parent).map_err(|source| ExportError::Io {
        path: parent.to_path_buf(),
        source,
    })
}

/// Opens `path` for writing after validating the parent chain. Refuses
/// to touch a pre-existing directory at `path` itself.
pub(crate) fn create_export_file(path: &Path) -> Result<io::BufWriter<fs::File>, ExportError> {
    ensure_parent_dir(path)?;
    if let Ok(meta) = fs::metadata(path) {
        if meta.is_dir() {
            return Err(ExportError::NotADirectory {
                path: path.to_path_buf(),
            });
        }
    }
    let file = fs::File::create(path).map_err(|source| ExportError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    Ok(io::BufWriter::new(file))
}

/// One exported line: a series under a scope (`fleet`,
/// `category:<name>` or `machine:<id>`).
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesRow {
    /// Aggregation scope.
    pub scope: String,
    /// The (possibly summed) series.
    pub series: SeriesData,
}

/// Sums series across machines at aligned tick stamps. `machines` pairs
/// each machine id with its §2 usage-category label and telemetry
/// snapshot; rows come back fleet-first, categories next, machines last.
pub fn fleet_rows(machines: &[(u32, &str, &MachineTelemetry)]) -> Vec<SeriesRow> {
    let mut rows = Vec::new();
    rows.extend(sum_scope("fleet", machines.iter().map(|&(_, _, t)| t)));
    let mut categories: Vec<&str> = machines.iter().map(|&(_, c, _)| c).collect();
    categories.sort_unstable();
    categories.dedup();
    for cat in categories {
        rows.extend(sum_scope(
            &format!("category:{cat}"),
            machines
                .iter()
                .filter(|&&(_, c, _)| c == cat)
                .map(|&(_, _, t)| t),
        ));
    }
    for &(id, _, telemetry) in machines {
        for series in &telemetry.series {
            rows.push(SeriesRow {
                scope: format!("machine:{id}"),
                series: series.clone(),
            });
        }
    }
    rows
}

/// [`fleet_rows`] for a sharded deployment: each machine additionally
/// carries the index of the shard collector it shipped through, and the
/// output gains `shard:<k>` scopes between the category and machine
/// rows — fleet first, categories next, shards in ascending index,
/// machines last. Per-shard sums let an operator see which collector
/// tier a fleet-level anomaly rolls up from.
pub fn sharded_rows(machines: &[(u32, &str, usize, &MachineTelemetry)]) -> Vec<SeriesRow> {
    let flat: Vec<(u32, &str, &MachineTelemetry)> = machines
        .iter()
        .map(|&(id, cat, _, t)| (id, cat, t))
        .collect();
    let mut rows = fleet_rows(&flat);
    // Splice the shard scopes in before the per-machine rows.
    let machine_rows = rows
        .iter()
        .position(|r| r.scope.starts_with("machine:"))
        .unwrap_or(rows.len());
    let mut shards: Vec<usize> = machines.iter().map(|&(_, _, s, _)| s).collect();
    shards.sort_unstable();
    shards.dedup();
    let mut shard_rows = Vec::new();
    for shard in shards {
        shard_rows.extend(sum_scope(
            &format!("shard:{shard}"),
            machines
                .iter()
                .filter(|&&(_, _, s, _)| s == shard)
                .map(|&(_, _, _, t)| t),
        ));
    }
    rows.splice(machine_rows..machine_rows, shard_rows);
    rows
}

/// Sums one group of machines into per-series rows under `scope`.
fn sum_scope<'a>(scope: &str, group: impl Iterator<Item = &'a MachineTelemetry>) -> Vec<SeriesRow> {
    // Preserve first-seen series order; the per-name maps keep stamps
    // sorted so summed points come out in time order.
    let mut order: Vec<(String, SeriesKind)> = Vec::new();
    let mut sums: BTreeMap<String, BTreeMap<u64, f64>> = BTreeMap::new();
    let mut dropped: BTreeMap<String, u64> = BTreeMap::new();
    for telemetry in group {
        for series in &telemetry.series {
            if !order.iter().any(|(n, _)| n == &series.name) {
                order.push((series.name.clone(), series.kind));
            }
            let points = sums.entry(series.name.clone()).or_default();
            for &(t, v) in &series.points {
                *points.entry(t).or_insert(0.0) += v;
            }
            *dropped.entry(series.name.clone()).or_default() += series.dropped;
        }
    }
    order
        .into_iter()
        .map(|(name, kind)| SeriesRow {
            scope: scope.to_string(),
            series: SeriesData {
                points: sums.remove(&name).unwrap_or_default().into_iter().collect(),
                dropped: dropped.remove(&name).unwrap_or_default(),
                name,
                kind,
            },
        })
        .collect()
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one row as a JSONL line (no trailing newline).
pub fn row_to_json(row: &SeriesRow) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(64 + row.series.points.len() * 16);
    line.push_str("{\"series\":");
    push_json_string(&mut line, &row.series.name);
    line.push_str(",\"scope\":");
    push_json_string(&mut line, &row.scope);
    let _ = write!(
        line,
        ",\"kind\":\"{}\",\"dropped\":{},\"points\":[",
        row.series.kind.name(),
        row.series.dropped
    );
    for (i, &(t, v)) in row.series.points.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let v = if v.is_finite() { v } else { 0.0 };
        let _ = write!(line, "[{t},{v}]");
    }
    line.push_str("]}");
    line
}

/// Writes the rows to `path` as JSONL, creating parent directories.
/// Refuses (typed, nothing clobbered) when a pre-existing non-directory
/// blocks the parent chain or squats on `path` itself.
pub fn write_timeseries_jsonl(path: &Path, rows: &[SeriesRow]) -> Result<(), ExportError> {
    let mut out = create_export_file(path)?;
    let io_err = |source| ExportError::Io {
        path: path.to_path_buf(),
        source,
    };
    for row in rows {
        writeln!(out, "{}", row_to_json(row)).map_err(io_err)?;
    }
    out.flush().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeProfile;

    fn machine(id: u32, points: &[(u64, f64)]) -> MachineTelemetry {
        MachineTelemetry {
            machine: id,
            profile: RuntimeProfile::default(),
            series: vec![SeriesData {
                name: "cache.resident_bytes".into(),
                kind: SeriesKind::Gauge,
                points: points.to_vec(),
                dropped: 0,
            }],
            spans_logged: 0,
            log_write_failures: 0,
        }
    }

    #[test]
    fn fleet_rows_sum_aligned_stamps() {
        let a = machine(0, &[(10, 1.0), (20, 2.0)]);
        let b = machine(1, &[(10, 5.0), (30, 7.0)]);
        let rows = fleet_rows(&[(0, "Pool", &a), (1, "Personal", &b)]);
        let fleet = rows.iter().find(|r| r.scope == "fleet").unwrap();
        assert_eq!(fleet.series.points, vec![(10, 6.0), (20, 2.0), (30, 7.0)]);
        assert!(rows.iter().any(|r| r.scope == "category:Pool"));
        assert!(rows.iter().any(|r| r.scope == "machine:1"));
        // fleet + 2 categories + 2 machines, one series each.
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn sharded_rows_splice_shard_scopes_before_machines() {
        let a = machine(0, &[(10, 1.0), (20, 2.0)]);
        let b = machine(1, &[(10, 5.0)]);
        let c = machine(2, &[(20, 4.0)]);
        let rows = sharded_rows(&[
            (0, "Pool", 0, &a),
            (1, "Pool", 0, &b),
            (2, "Personal", 1, &c),
        ]);
        let scopes: Vec<&str> = rows.iter().map(|r| r.scope.as_str()).collect();
        assert_eq!(
            scopes,
            vec![
                "fleet",
                "category:Personal",
                "category:Pool",
                "shard:0",
                "shard:1",
                "machine:0",
                "machine:1",
                "machine:2",
            ]
        );
        let shard0 = rows.iter().find(|r| r.scope == "shard:0").unwrap();
        assert_eq!(shard0.series.points, vec![(10, 6.0), (20, 2.0)]);
        let fleet = rows.iter().find(|r| r.scope == "fleet").unwrap();
        assert_eq!(fleet.series.points, vec![(10, 6.0), (20, 6.0)]);
    }

    #[test]
    fn json_lines_are_wellformed() {
        let row = SeriesRow {
            scope: "fleet".into(),
            series: SeriesData {
                name: "io.ops".into(),
                kind: SeriesKind::Counter,
                points: vec![(300000000, 12.0)],
                dropped: 3,
            },
        };
        let line = row_to_json(&row);
        assert_eq!(
            line,
            "{\"series\":\"io.ops\",\"scope\":\"fleet\",\"kind\":\"counter\",\"dropped\":3,\"points\":[[300000000,12]]}"
        );
    }

    #[test]
    fn writer_emits_one_line_per_row() {
        let dir = std::env::temp_dir().join(format!("nt-obs-export-{}", std::process::id()));
        let path = dir.join("timeseries.jsonl");
        let a = machine(0, &[(10, 1.0)]);
        let rows = fleet_rows(&[(0, "Scientific", &a)]);
        write_timeseries_jsonl(&path, &rows).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), rows.len());
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_creates_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!("nt-obs-export-deep-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("a/b/c/timeseries.jsonl");
        write_timeseries_jsonl(&path, &[]).unwrap();
        assert!(path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_refuses_file_squatting_on_parent_path() {
        let dir = std::env::temp_dir().join(format!("nt-obs-export-squat-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // A regular file where the artefact directory should be.
        let squatter = dir.join("artefacts");
        fs::write(&squatter, b"not a directory").unwrap();
        let path = squatter.join("timeseries.jsonl");
        let err = write_timeseries_jsonl(&path, &[]).unwrap_err();
        match err {
            ExportError::NotADirectory { path } => assert_eq!(path, squatter),
            other => panic!("expected NotADirectory, got {other:?}"),
        }
        // The squatter is untouched — nothing silently overwritten.
        assert_eq!(fs::read(&squatter).unwrap(), b"not a directory");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_refuses_directory_squatting_on_target_path() {
        let dir = std::env::temp_dir().join(format!("nt-obs-export-dsq-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("timeseries.jsonl");
        fs::create_dir_all(&path).unwrap();
        let err = write_timeseries_jsonl(&path, &[]).unwrap_err();
        assert!(matches!(err, ExportError::NotADirectory { .. }));
        assert!(path.is_dir(), "the pre-existing directory survives");
        let _ = fs::remove_dir_all(&dir);
    }
}
