//! Pipeline health watchdogs.
//!
//! The collection pipeline (agent → shard collector → aggregator) can
//! degrade long before it fails: a collector outage backs batches up in
//! the agents, a suspended agent burns through its loss budget, a shard
//! stops hearing from its machines entirely. The watchdogs turn those
//! conditions into typed [`HealthFinding`]s, sampled **on the simulated
//! clock** from deterministic quantities only (agent queue depths and
//! `LossLedger` rates — never host time, never live channel lengths), so
//! the findings a run produces are a pure function of its seed.
//!
//! Machine-scope findings are edge-triggered: a [`Watchdog`] emits one
//! finding when a condition crosses its threshold and re-arms only after
//! the condition clears, so a long outage reads as one event, not one
//! per sample.

use std::fmt;

/// A typed health finding from the pipeline watchdogs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HealthFinding {
    /// A shard's machines stopped delivering batches well before the end
    /// of the tracing period — the shard's collector tier went quiet.
    StalledShard {
        /// Shard index.
        shard: u32,
        /// Simulated tick of the last successful batch delivery into the
        /// shard (0 when nothing was ever delivered).
        last_delivery_ticks: u64,
        /// Quiet ticks between that delivery and the end of the period.
        idle_ticks: u64,
    },
    /// An agent's pending-shipment queue backed up past the threshold —
    /// the collector tier is refusing or outaged and batches are piling
    /// up machine-side.
    BackloggedCollector {
        /// Machine id.
        machine: u32,
        /// Simulated tick of the sample that crossed the threshold.
        ticks: u64,
        /// Batches waiting machine-side for a live collector.
        pending_batches: u64,
        /// Records across those batches.
        pending_records: u64,
    },
    /// The machine's record-loss rate crossed the budget: dropped records
    /// (buffer overflow + suspension) per mille of recorded.
    LossBudgetBurn {
        /// Machine id.
        machine: u32,
        /// Simulated tick of the sample that crossed the threshold.
        ticks: u64,
        /// Records lost so far.
        lost: u64,
        /// Records recorded so far.
        recorded: u64,
        /// Loss rate in per-mille (lost * 1000 / recorded).
        burn_per_mille: u64,
    },
}

impl HealthFinding {
    /// Stable lower-snake-case name used in dumps and reports.
    pub const fn kind(&self) -> &'static str {
        match self {
            HealthFinding::StalledShard { .. } => "stalled_shard",
            HealthFinding::BackloggedCollector { .. } => "backlogged_collector",
            HealthFinding::LossBudgetBurn { .. } => "loss_budget_burn",
        }
    }

    /// The finding as the JSON fields of a flight-recorder line (no
    /// enclosing braces; starts with `"kind":...`).
    pub fn json_fields(&self) -> String {
        match self {
            HealthFinding::StalledShard {
                shard,
                last_delivery_ticks,
                idle_ticks,
            } => format!(
                "\"kind\":\"stalled_shard\",\"shard\":{shard},\
                 \"last_delivery_ticks\":{last_delivery_ticks},\"idle_ticks\":{idle_ticks}"
            ),
            HealthFinding::BackloggedCollector {
                machine,
                ticks,
                pending_batches,
                pending_records,
            } => format!(
                "\"kind\":\"backlogged_collector\",\"machine\":{machine},\"ticks\":{ticks},\
                 \"pending_batches\":{pending_batches},\"pending_records\":{pending_records}"
            ),
            HealthFinding::LossBudgetBurn {
                machine,
                ticks,
                lost,
                recorded,
                burn_per_mille,
            } => format!(
                "\"kind\":\"loss_budget_burn\",\"machine\":{machine},\"ticks\":{ticks},\
                 \"lost\":{lost},\"recorded\":{recorded},\"burn_per_mille\":{burn_per_mille}"
            ),
        }
    }
}

impl fmt::Display for HealthFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthFinding::StalledShard {
                shard, idle_ticks, ..
            } => {
                write!(
                    f,
                    "shard {shard} stalled: quiet for the last {:.0}s of the period",
                    *idle_ticks as f64 / 10_000_000.0
                )
            }
            HealthFinding::BackloggedCollector {
                machine,
                pending_batches,
                pending_records,
                ..
            } => write!(
                f,
                "machine {machine}: collector backlog of {pending_batches} batches \
                 ({pending_records} records) waiting machine-side"
            ),
            HealthFinding::LossBudgetBurn {
                machine,
                burn_per_mille,
                lost,
                ..
            } => write!(
                f,
                "machine {machine}: loss budget burning at {burn_per_mille}\u{2030} \
                 ({lost} records lost)"
            ),
        }
    }
}

/// Per-machine watchdog state: thresholds plus the edge-trigger latches.
#[derive(Debug, Default)]
pub struct Watchdog {
    burning: bool,
    backlogged: bool,
}

impl Watchdog {
    /// Loss-rate threshold: 10‰ (1%) of recorded records lost.
    pub const LOSS_BURN_PER_MILLE: u64 = 10;
    /// Minimum recorded records before the burn rate is meaningful.
    pub const LOSS_BURN_FLOOR: u64 = 1_000;
    /// Pending-batch depth that counts as a backlogged collector.
    pub const BACKLOG_BATCHES: u64 = 3;
    /// Quiet time (in 100ns ticks) before a shard counts as stalled:
    /// 120 simulated seconds, four 30-second shipping cadences.
    pub const STALL_TICKS: u64 = 120 * 10_000_000;

    /// Fresh watchdog with both latches armed.
    pub fn new() -> Self {
        Watchdog::default()
    }

    /// One sampler tick for one machine. All inputs are deterministic
    /// simulated quantities; the return lists the findings whose
    /// condition crossed its threshold at this sample.
    pub fn sample(
        &mut self,
        machine: u32,
        ticks: u64,
        recorded: u64,
        lost: u64,
        pending_batches: u64,
        pending_records: u64,
    ) -> Vec<HealthFinding> {
        let mut findings = Vec::new();
        let burn = if recorded >= Self::LOSS_BURN_FLOOR {
            lost.saturating_mul(1_000) / recorded
        } else {
            0
        };
        if burn >= Self::LOSS_BURN_PER_MILLE {
            if !self.burning {
                self.burning = true;
                findings.push(HealthFinding::LossBudgetBurn {
                    machine,
                    ticks,
                    lost,
                    recorded,
                    burn_per_mille: burn,
                });
            }
        } else {
            self.burning = false;
        }
        if pending_batches >= Self::BACKLOG_BATCHES {
            if !self.backlogged {
                self.backlogged = true;
                findings.push(HealthFinding::BackloggedCollector {
                    machine,
                    ticks,
                    pending_batches,
                    pending_records,
                });
            }
        } else {
            self.backlogged = false;
        }
        findings
    }

    /// Post-run shard check: a shard whose last successful delivery sits
    /// more than [`Self::STALL_TICKS`] before the end of the period
    /// stalled. Evaluated once per shard at merge time.
    pub fn stalled_shard(
        shard: u32,
        last_delivery_ticks: u64,
        end_ticks: u64,
    ) -> Option<HealthFinding> {
        let idle = end_ticks.saturating_sub(last_delivery_ticks);
        if idle > Self::STALL_TICKS {
            Some(HealthFinding::StalledShard {
                shard,
                last_delivery_ticks,
                idle_ticks: idle,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_burn_is_edge_triggered() {
        let mut w = Watchdog::new();
        // Below the floor: no finding no matter the rate.
        assert!(w.sample(1, 100, 10, 10, 0, 0).is_empty());
        // Crosses: one finding.
        let f = w.sample(1, 200, 10_000, 200, 0, 0);
        assert_eq!(f.len(), 1);
        assert_eq!(
            f[0],
            HealthFinding::LossBudgetBurn {
                machine: 1,
                ticks: 200,
                lost: 200,
                recorded: 10_000,
                burn_per_mille: 20,
            }
        );
        // Still burning: latched, no repeat.
        assert!(w.sample(1, 300, 11_000, 220, 0, 0).is_empty());
        // Clears, then crosses again: re-armed.
        assert!(w.sample(1, 400, 1_000_000, 100, 0, 0).is_empty());
        assert_eq!(w.sample(1, 500, 1_000_000, 20_000, 0, 0).len(), 1);
    }

    #[test]
    fn backlog_is_edge_triggered() {
        let mut w = Watchdog::new();
        assert!(w.sample(2, 100, 0, 0, 2, 900).is_empty());
        let f = w.sample(2, 200, 0, 0, 3, 1_400);
        assert_eq!(
            f,
            vec![HealthFinding::BackloggedCollector {
                machine: 2,
                ticks: 200,
                pending_batches: 3,
                pending_records: 1_400,
            }]
        );
        assert!(w.sample(2, 300, 0, 0, 5, 2_000).is_empty());
        assert!(w.sample(2, 400, 0, 0, 0, 0).is_empty());
        assert_eq!(w.sample(2, 500, 0, 0, 4, 1_600).len(), 1);
    }

    #[test]
    fn shard_stall_threshold() {
        let end = 6_000_000_000; // 600 s
        assert!(Watchdog::stalled_shard(0, end - Watchdog::STALL_TICKS, end).is_none());
        let f = Watchdog::stalled_shard(3, 1_000_000_000, end).unwrap();
        assert_eq!(f.kind(), "stalled_shard");
        assert_eq!(
            f,
            HealthFinding::StalledShard {
                shard: 3,
                last_delivery_ticks: 1_000_000_000,
                idle_ticks: 5_000_000_000,
            }
        );
        // A shard that never delivered is maximally stalled.
        assert!(Watchdog::stalled_shard(1, 0, end).is_some());
    }

    #[test]
    fn json_fields_are_wellformed() {
        let f = HealthFinding::LossBudgetBurn {
            machine: 7,
            ticks: 42,
            lost: 5,
            recorded: 5_000,
            burn_per_mille: 1,
        };
        let line = format!("{{{}}}", f.json_fields());
        assert!(line.contains("\"kind\":\"loss_budget_burn\""));
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}
