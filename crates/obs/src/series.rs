//! Ring-buffered time-series: gauges and counters sampled on the
//! simulated clock.
//!
//! The paper's collector turned the raw event stream into hourly
//! time-series plots (§5.2, fig. 4); this module is the reproduction's
//! equivalent. Capacity is bounded: each series keeps the newest
//! `capacity` points and counts what fell off, so a four-week
//! paper-scale run cannot grow telemetry without bound.

use std::collections::VecDeque;

/// How a series' samples combine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// A level read at sample time (bytes resident, queue depth).
    Gauge,
    /// A monotone cumulative count (events fired, bytes written); rates
    /// come from deltas between consecutive points.
    Counter,
}

impl SeriesKind {
    /// Stable lower-case name used in the JSONL export.
    pub const fn name(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
        }
    }
}

/// One bounded series.
struct RingSeries {
    name: &'static str,
    kind: SeriesKind,
    points: VecDeque<(u64, f64)>,
    dropped: u64,
}

/// A machine's set of ring-buffered series, keyed by static name.
///
/// The registry is tiny (a handful of series per machine) so lookup is a
/// linear scan — no hashing, no allocation past the rings themselves.
pub struct SeriesRegistry {
    capacity: usize,
    series: Vec<RingSeries>,
}

impl SeriesRegistry {
    /// An empty registry whose rings hold `capacity` points each.
    pub fn new(capacity: usize) -> Self {
        SeriesRegistry {
            capacity,
            series: Vec::new(),
        }
    }

    /// Appends `(ticks, value)` to the named series, registering it on
    /// first use. The oldest point is dropped (and counted) once the
    /// ring is full.
    pub fn record(&mut self, name: &'static str, kind: SeriesKind, ticks: u64, value: f64) {
        if self.capacity == 0 {
            return;
        }
        let slot = match self.series.iter_mut().position(|s| s.name == name) {
            Some(i) => i,
            None => {
                self.series.push(RingSeries {
                    name,
                    kind,
                    points: VecDeque::with_capacity(self.capacity.min(1_024)),
                    dropped: 0,
                });
                self.series.len() - 1
            }
        };
        let s = &mut self.series[slot];
        if s.points.len() == self.capacity {
            s.points.pop_front();
            s.dropped += 1;
        }
        s.points.push_back((ticks, value));
    }

    /// Snapshots every series, in registration order.
    pub fn dump(&self) -> Vec<SeriesData> {
        self.series
            .iter()
            .map(|s| SeriesData {
                name: s.name.to_string(),
                kind: s.kind,
                points: s.points.iter().copied().collect(),
                dropped: s.dropped,
            })
            .collect()
    }
}

/// An owned snapshot of one series.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesData {
    /// Series name, e.g. `cache.resident_bytes`.
    pub name: String,
    /// Gauge or counter.
    pub kind: SeriesKind,
    /// `(sim ticks, value)`, oldest first.
    pub points: Vec<(u64, f64)>,
    /// Points that fell off the ring.
    pub dropped: u64,
}

impl SeriesData {
    /// The most recent value, if any point survives.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Raw values in time order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Per-interval deltas — the natural rendering of a counter. The
    /// first point yields its absolute value (delta from zero); gauges
    /// get their raw values back.
    pub fn rates(&self) -> Vec<f64> {
        match self.kind {
            SeriesKind::Gauge => self.values(),
            SeriesKind::Counter => {
                let mut prev = 0.0;
                self.points
                    .iter()
                    .map(|&(_, v)| {
                        let d = (v - prev).max(0.0);
                        prev = v;
                        d
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = SeriesRegistry::new(3);
        for i in 0..5u64 {
            r.record("x", SeriesKind::Gauge, i * 10, i as f64);
        }
        let d = r.dump();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].points, vec![(20, 2.0), (30, 3.0), (40, 4.0)]);
        assert_eq!(d[0].dropped, 2);
        assert_eq!(d[0].last(), Some(4.0));
    }

    #[test]
    fn zero_capacity_registry_stays_empty() {
        let mut r = SeriesRegistry::new(0);
        r.record("x", SeriesKind::Gauge, 1, 1.0);
        assert!(r.dump().is_empty());
    }

    #[test]
    fn exactly_capacity_points_drop_nothing() {
        // The boundary itself: `ring_capacity` inserts fill the ring
        // without evicting, and the dump reports a true zero drop count.
        let capacity = 4;
        let mut r = SeriesRegistry::new(capacity);
        for i in 0..capacity as u64 {
            r.record("x", SeriesKind::Counter, i * 10, i as f64);
        }
        let d = r.dump();
        assert_eq!(d[0].points.len(), capacity);
        assert_eq!(d[0].dropped, 0);
        assert_eq!(d[0].points[0], (0, 0.0), "oldest point intact");
    }

    #[test]
    fn capacity_plus_one_evicts_exactly_the_oldest() {
        let capacity = 4;
        let mut r = SeriesRegistry::new(capacity);
        for i in 0..=capacity as u64 {
            r.record("x", SeriesKind::Gauge, i * 10, i as f64);
        }
        let d = r.dump();
        assert_eq!(d[0].points.len(), capacity);
        assert_eq!(d[0].dropped, 1, "one insert past capacity, one drop");
        // Oldest-first drop order: point (0, 0.0) went, the rest slid.
        assert_eq!(
            d[0].points,
            vec![(10, 1.0), (20, 2.0), (30, 3.0), (40, 4.0)]
        );
    }

    #[test]
    fn dropped_count_tracks_every_eviction_across_series() {
        // Two series in one registry evict independently; each dump row
        // reports its own true count.
        let mut r = SeriesRegistry::new(2);
        for i in 0..7u64 {
            r.record("a", SeriesKind::Gauge, i, i as f64);
        }
        for i in 0..3u64 {
            r.record("b", SeriesKind::Gauge, i, i as f64);
        }
        let d = r.dump();
        assert_eq!(d[0].name, "a");
        assert_eq!(d[0].dropped, 5);
        assert_eq!(d[0].points, vec![(5, 5.0), (6, 6.0)]);
        assert_eq!(d[1].name, "b");
        assert_eq!(d[1].dropped, 1);
        assert_eq!(d[1].points, vec![(1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn counter_rates_are_deltas() {
        let s = SeriesData {
            name: "ops".into(),
            kind: SeriesKind::Counter,
            points: vec![(0, 5.0), (10, 12.0), (20, 12.0), (30, 20.0)],
            dropped: 0,
        };
        assert_eq!(s.rates(), vec![5.0, 7.0, 0.0, 8.0]);
        let g = SeriesData {
            kind: SeriesKind::Gauge,
            ..s
        };
        assert_eq!(g.rates(), vec![5.0, 12.0, 12.0, 20.0]);
    }
}
