//! Causal shipment tracing: one span tree per shipped record batch.
//!
//! Every record batch an agent ships carries a [`TraceContext`] — a
//! trace id plus parent span id — derived **deterministically** from
//! `(study seed, machine, batch seq)`; there is no randomness and no
//! wall clock anywhere in an id or a timestamp, so two runs of the same
//! seed produce byte-identical traces. Each tier the batch crosses
//! emits one parent-linked [`HopSpan`]:
//!
//! ```text
//! agent.batch  [batch opened .......... delivered]        (root)
//!   agent.ship   [enqueued ............ delivered]        (child: retry/backoff latency)
//!     collector.recv        [delivered]                   (child: server + shard chosen)
//!       analysis.ingest         [delivered]               (child: crossed the channel)
//!       warehouse.export        [delivered]               (child: tee'd to the NTT segment)
//! ```
//!
//! Span intervals nest by construction (each hop's interval is contained
//! in its parent's), timestamps are simulated ticks only, and the export
//! sorts spans by `(machine, seq, hop)` — so thread scheduling is
//! invisible in the artefact. [`write_chrome_trace`] renders the whole
//! fleet as a single `chrome://tracing` / Perfetto-loadable timeline.

use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::export::{create_export_file, ExportError};

/// The causal identity a record batch carries across tiers.
///
/// `span_id` names the hop that most recently handled the batch;
/// `parent_span` links it to the previous hop (0 at the root). All ids
/// are pure functions of `(seed, machine, seq, hop)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// One id per (machine, batch-seq) journey.
    pub trace_id: u64,
    /// The current hop's span id.
    pub span_id: u64,
    /// The previous hop's span id; 0 for the root span.
    pub parent_span: u64,
}

impl TraceContext {
    /// The root context for one batch's journey: the agent's batching
    /// span.
    pub fn root(seed: u64, machine: u32, seq: u64) -> TraceContext {
        let trace_id = trace_id(seed, machine, seq);
        TraceContext {
            trace_id,
            span_id: span_id(trace_id, Hop::Batch),
            parent_span: 0,
        }
    }

    /// The context after crossing into `hop`, parent-linked to `self`.
    pub fn child(&self, hop: Hop) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: span_id(self.trace_id, hop),
            parent_span: self.span_id,
        }
    }
}

/// One tier crossing in a batch's journey.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hop {
    /// The agent's batching window: first record captured → delivered.
    Batch,
    /// The shipping attempt: enqueued for shipment → delivered. The gap
    /// to the batch window is retry/backoff latency under outages.
    Ship,
    /// Receipt at the collector tier (server + shard attribution).
    Collect,
    /// Ingest into the analysis sink on the collector's thread.
    Analyze,
    /// Tee into the NTT warehouse segment writer.
    Export,
}

impl Hop {
    /// Every hop, in tier order.
    pub const ALL: [Hop; 5] = [
        Hop::Batch,
        Hop::Ship,
        Hop::Collect,
        Hop::Analyze,
        Hop::Export,
    ];

    /// Stable span name used in the Chrome trace.
    pub const fn name(self) -> &'static str {
        match self {
            Hop::Batch => "agent.batch",
            Hop::Ship => "agent.ship",
            Hop::Collect => "collector.recv",
            Hop::Analyze => "analysis.ingest",
            Hop::Export => "warehouse.export",
        }
    }

    /// Tier order index (also the sort key within one batch).
    pub const fn index(self) -> u8 {
        match self {
            Hop::Batch => 0,
            Hop::Ship => 1,
            Hop::Collect => 2,
            Hop::Analyze => 3,
            Hop::Export => 4,
        }
    }

    /// The Chrome trace "process" this hop renders under.
    const fn tier_pid(self) -> u32 {
        match self {
            Hop::Batch | Hop::Ship => 1,
            Hop::Collect => 2,
            Hop::Analyze => 3,
            Hop::Export => 4,
        }
    }
}

/// `splitmix64` finalizer: the id mixer. Deterministic, seed-sensitive,
/// and avalanche-complete — adjacent seqs land far apart.
const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Trace id for one (seed, machine, seq) journey; never 0.
fn trace_id(seed: u64, machine: u32, seq: u64) -> u64 {
    let id = mix64(mix64(mix64(seed) ^ (machine as u64 + 1)) ^ (seq + 1));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Span id for one hop of a trace; never 0 (0 means "no parent").
fn span_id(trace_id: u64, hop: Hop) -> u64 {
    let id = mix64(trace_id ^ (hop.index() as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
    if id == 0 {
        1
    } else {
        id
    }
}

/// One emitted hop span. Timestamps are simulated 100ns ticks.
#[derive(Clone, Debug, PartialEq)]
pub struct HopSpan {
    /// Causal identity (span + parent link).
    pub ctx: TraceContext,
    /// Which tier crossing this is.
    pub hop: Hop,
    /// Source machine of the batch.
    pub machine: u32,
    /// Batch sequence number (per machine, monotone).
    pub seq: u64,
    /// Span open, simulated ticks.
    pub begin_ticks: u64,
    /// Span close, simulated ticks (>= `begin_ticks`).
    pub end_ticks: u64,
    /// Records in the batch at this hop.
    pub records: u64,
    /// Collection server index, on the collect hop.
    pub server: Option<u32>,
    /// Shard index, on collector-tier-and-later hops of a sharded run.
    pub shard: Option<u32>,
}

struct TracerShared {
    seed: u64,
    /// Tick clamp for end-of-run flushes that ship at `u64::MAX`.
    horizon_ticks: u64,
    spans: Mutex<Vec<HopSpan>>,
}

/// The fleet-wide shipment tracer handle.
///
/// Cheap to clone; all clones append into one span list. The disabled
/// handle ([`ShipmentTracer::off`], also `Default`) is one `Option`
/// check per call. [`ShipmentTracer::for_shard`] stamps a shard index on
/// the spans a clone emits without forking the span list.
#[derive(Clone, Default)]
pub struct ShipmentTracer {
    inner: Option<Arc<TracerShared>>,
    shard: Option<u32>,
}

impl std::fmt::Debug for ShipmentTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShipmentTracer")
            .field("enabled", &self.inner.is_some())
            .field("shard", &self.shard)
            .finish()
    }
}

impl ShipmentTracer {
    /// The inert tracer: every operation is a no-op.
    pub fn off() -> Self {
        ShipmentTracer::default()
    }

    /// A live tracer. `horizon_ticks` clamps timestamps from end-of-run
    /// flushes (which deliver at `u64::MAX`) back onto the timeline.
    pub fn new(seed: u64, horizon_ticks: u64) -> Self {
        ShipmentTracer {
            inner: Some(Arc::new(TracerShared {
                seed,
                horizon_ticks,
                spans: Mutex::new(Vec::new()),
            })),
            shard: None,
        }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A clone that stamps `shard` on the spans it emits (collector tier
    /// and later of a sharded run).
    pub fn for_shard(&self, shard: u32) -> Self {
        ShipmentTracer {
            inner: self.inner.clone(),
            shard: Some(shard),
        }
    }

    fn clamp(&self, inner: &TracerShared, ticks: u64) -> u64 {
        ticks.min(inner.horizon_ticks)
    }

    fn push(&self, span: HopSpan) {
        if let Some(inner) = &self.inner {
            inner
                .spans
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(span);
        }
    }

    /// The agent delivered batch `seq`: emits the root `agent.batch`
    /// span (batch window open → delivery) and its `agent.ship` child
    /// (enqueue → delivery; the retry/backoff latency under outages).
    /// Empty batches (the end-of-run remainder can be) emit nothing — a
    /// span tree documents records that exist.
    pub fn agent_delivery(
        &self,
        machine: u32,
        seq: u64,
        open_ticks: u64,
        enqueue_ticks: u64,
        deliver_ticks: u64,
        records: u64,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        if records == 0 {
            return;
        }
        let deliver = self.clamp(inner, deliver_ticks);
        let enqueue = self.clamp(inner, enqueue_ticks).min(deliver);
        let open = self.clamp(inner, open_ticks).min(enqueue);
        let root = TraceContext::root(inner.seed, machine, seq);
        self.push(HopSpan {
            ctx: root,
            hop: Hop::Batch,
            machine,
            seq,
            begin_ticks: open,
            end_ticks: deliver,
            records,
            server: None,
            shard: None,
        });
        self.push(HopSpan {
            ctx: root.child(Hop::Ship),
            hop: Hop::Ship,
            machine,
            seq,
            begin_ticks: enqueue,
            end_ticks: deliver,
            records,
            server: None,
            shard: None,
        });
    }

    /// The collector tier accepted batch `seq` on `server`: emits the
    /// `collector.recv` span and returns the context the batch carries
    /// onward across the channel. `None` for empty batches or when
    /// disabled.
    pub fn collect(
        &self,
        machine: u32,
        seq: u64,
        deliver_ticks: u64,
        records: u64,
        server: u32,
    ) -> Option<TraceContext> {
        let inner = self.inner.as_ref()?;
        if records == 0 {
            return None;
        }
        let at = self.clamp(inner, deliver_ticks);
        let ctx = TraceContext::root(inner.seed, machine, seq)
            .child(Hop::Ship)
            .child(Hop::Collect);
        self.push(HopSpan {
            ctx,
            hop: Hop::Collect,
            machine,
            seq,
            begin_ticks: at,
            end_ticks: at,
            records,
            server: Some(server),
            shard: self.shard,
        });
        Some(ctx)
    }

    /// A downstream tier handled the batch whose carried context is
    /// `parent`: emits the hop span parent-linked to it. Used for the
    /// analysis ingest ([`Hop::Analyze`]) and the warehouse tee
    /// ([`Hop::Export`]).
    pub fn downstream(
        &self,
        hop: Hop,
        parent: TraceContext,
        machine: u32,
        seq: u64,
        deliver_ticks: u64,
        records: u64,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let at = self.clamp(inner, deliver_ticks);
        self.push(HopSpan {
            ctx: parent.child(hop),
            hop,
            machine,
            seq,
            begin_ticks: at,
            end_ticks: at,
            records,
            server: None,
            shard: self.shard,
        });
    }

    /// Drains every span recorded so far, sorted by
    /// `(machine, seq, hop, begin)` — a total order independent of
    /// thread scheduling, so the export is byte-stable across runs.
    pub fn take_sorted(&self) -> Vec<HopSpan> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut spans = std::mem::take(&mut *inner.spans.lock().unwrap_or_else(|p| p.into_inner()));
        spans.sort_by_key(|s| {
            (
                s.machine,
                s.seq,
                s.hop.index(),
                s.begin_ticks,
                s.ctx.span_id,
            )
        });
        spans
    }
}

/// Writes `ticks` (100ns units) as exact decimal microseconds — no
/// float formatting, so the artefact is byte-stable.
fn push_micros(out: &mut String, ticks: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}.{}", ticks / 10, ticks % 10);
}

/// Renders the spans as one Chrome trace-event JSON document
/// (`chrome://tracing` / Perfetto "JSON" format). One "process" per
/// pipeline tier (agents, collectors, analysis, warehouse), one
/// "thread" per machine, complete (`"ph":"X"`) events with ids in the
/// args.
pub fn chrome_trace_json(spans: &[HopSpan]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[\n");
    for (pid, name) in [
        (1, "tier: agents"),
        (2, "tier: collectors"),
        (3, "tier: analysis"),
        (4, "tier: warehouse"),
    ] {
        let _ = writeln!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}},"
        );
    }
    for (i, span) in spans.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"shipment\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":",
            span.hop.name(),
            span.hop.tier_pid(),
            span.machine,
        );
        push_micros(&mut out, span.begin_ticks);
        out.push_str(",\"dur\":");
        push_micros(&mut out, span.end_ticks.saturating_sub(span.begin_ticks));
        let _ = write!(
            out,
            ",\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\
             \"machine\":{},\"seq\":{},\"records\":{}",
            span.ctx.trace_id,
            span.ctx.span_id,
            span.ctx.parent_span,
            span.machine,
            span.seq,
            span.records,
        );
        if let Some(server) = span.server {
            let _ = write!(out, ",\"server\":{server}");
        }
        if let Some(shard) = span.shard {
            let _ = write!(out, ",\"shard\":{shard}");
        }
        out.push_str("}}");
        if i + 1 < spans.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Writes the Chrome trace-event document to `path`, creating parent
/// directories, with the typed refusal semantics of
/// [`crate::write_timeseries_jsonl`].
pub fn write_chrome_trace(path: &Path, spans: &[HopSpan]) -> Result<(), ExportError> {
    use std::io::Write as _;
    let mut out = create_export_file(path)?;
    let io_err = |source| ExportError::Io {
        path: path.to_path_buf(),
        source,
    };
    out.write_all(chrome_trace_json(spans).as_bytes())
        .map_err(io_err)?;
    out.flush().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_seed_sensitive() {
        let a = TraceContext::root(42, 3, 7);
        let b = TraceContext::root(42, 3, 7);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, TraceContext::root(43, 3, 7).trace_id);
        assert_ne!(a.trace_id, TraceContext::root(42, 4, 7).trace_id);
        assert_ne!(a.trace_id, TraceContext::root(42, 3, 8).trace_id);
        assert_eq!(a.parent_span, 0);
        assert_ne!(a.span_id, 0);
    }

    #[test]
    fn child_chain_parent_links() {
        let root = TraceContext::root(1, 0, 0);
        let ship = root.child(Hop::Ship);
        let collect = ship.child(Hop::Collect);
        let analyze = collect.child(Hop::Analyze);
        assert_eq!(ship.parent_span, root.span_id);
        assert_eq!(collect.parent_span, ship.span_id);
        assert_eq!(analyze.parent_span, collect.span_id);
        assert_eq!(analyze.trace_id, root.trace_id);
        // All four span ids distinct.
        let ids = [root.span_id, ship.span_id, collect.span_id, analyze.span_id];
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn tracer_emits_nested_clamped_spans() {
        let t = ShipmentTracer::new(9, 1_000);
        t.agent_delivery(5, 0, 100, 200, 400, 32);
        let ctx = t.collect(5, 0, 400, 32, 1).unwrap();
        t.downstream(Hop::Analyze, ctx, 5, 0, 400, 32);
        // End-of-run flush: u64::MAX delivery clamps to the horizon.
        t.agent_delivery(5, 1, 900, u64::MAX, u64::MAX, 4);
        let spans = t.take_sorted();
        // seq 0: batch, ship, collect, analyze; seq 1: batch, ship.
        assert_eq!(spans.len(), 6);
        assert_eq!(spans[0].hop, Hop::Batch);
        assert_eq!(spans[1].hop, Hop::Ship);
        assert_eq!(spans[2].hop, Hop::Collect);
        assert_eq!(spans[3].hop, Hop::Analyze);
        // Nesting: each child's interval inside its parent's.
        assert!(spans[1].begin_ticks >= spans[0].begin_ticks);
        assert!(spans[1].end_ticks <= spans[0].end_ticks);
        assert!(spans[2].begin_ticks >= spans[1].begin_ticks);
        assert!(spans[2].end_ticks <= spans[1].end_ticks);
        assert_eq!(spans[3].ctx.parent_span, spans[2].ctx.span_id);
        // The flush batch clamped onto the timeline.
        assert_eq!(spans[4].seq, 1);
        assert_eq!(spans[4].end_ticks, 1_000);
        assert!(spans[4].begin_ticks <= spans[4].end_ticks);
        // Drained.
        assert!(t.take_sorted().is_empty());
    }

    #[test]
    fn empty_batches_emit_no_spans() {
        let t = ShipmentTracer::new(9, 1_000);
        t.agent_delivery(0, 0, 0, 0, 10, 0);
        assert!(t.collect(0, 0, 10, 0, 0).is_none());
        assert!(t.take_sorted().is_empty());
    }

    #[test]
    fn off_tracer_is_inert() {
        let t = ShipmentTracer::off();
        assert!(!t.is_enabled());
        t.agent_delivery(0, 0, 0, 0, 10, 5);
        assert!(t.collect(0, 0, 10, 5, 0).is_none());
        assert!(t.take_sorted().is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let t = ShipmentTracer::new(7, 10_000).for_shard(2);
        t.agent_delivery(1, 0, 10, 20, 35, 8);
        let ctx = t.collect(1, 0, 35, 8, 0).unwrap();
        t.downstream(Hop::Analyze, ctx, 1, 0, 35, 8);
        let json = chrome_trace_json(&t.take_sorted());
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"name\":\"agent.batch\""));
        assert!(json.contains("\"name\":\"collector.recv\""));
        assert!(json.contains("\"shard\":2"));
        assert!(json.contains("\"server\":0"));
        // 35 ticks = 3.5 µs, exact decimal.
        assert!(json.contains("\"ts\":3.5,"));
        // 15-tick ship dur (20 → 35) = 1.5 µs.
        assert!(json.contains("\"dur\":1.5,"));
        // Metadata names all four tiers.
        assert!(json.contains("tier: agents"));
        assert!(json.contains("tier: warehouse"));
    }

    #[test]
    fn write_chrome_trace_creates_parents_and_refuses_squatters() {
        let dir = std::env::temp_dir().join(format!("nt-obs-chrome-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/trace.json");
        write_chrome_trace(&path, &[]).unwrap();
        assert!(path.exists());
        let squat = dir.join("deep/trace.json/child.json");
        assert!(matches!(
            write_chrome_trace(&squat, &[]),
            Err(ExportError::NotADirectory { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
