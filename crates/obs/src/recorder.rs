//! The fleet flight recorder: bounded rings of recent pipeline events,
//! dumped exactly once when something goes wrong.
//!
//! Every machine and every shard owns a bounded ring of recent
//! structured [`FlightEvent`]s — agent suspensions, buffer squeezes,
//! aggregated record drops, shipment refusals, collector failovers,
//! shard merge boundaries, watchdog findings. In a healthy run the rings
//! rotate silently and are discarded. When a study fault surfaces, the
//! conservation audit reports drift, or the loss budget was burned
//! (`dump_on_loss`), the recorder dumps **once** — an `AtomicBool` makes
//! a second trigger a no-op — to `flight-recorder.jsonl`: one header
//! line naming the reason, one scope line per ring (event and eviction
//! counts), then the events in `(scope, ring order)`.
//!
//! Determinism: every event field is a simulated-clock or counter value,
//! and each ring is appended only by the thread that owns its scope, so
//! the dump of a given seed is byte-identical across runs. The
//! aggregated drop events carry *cumulative* totals alongside deltas —
//! the newest surviving drop event per machine reconciles against the
//! machine's `LossLedger` even if older events fell off the ring.

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::export::{create_export_file, ExportError};
use crate::watchdog::HealthFinding;

/// Who an event belongs to. Scopes order machine rings first, then
/// shard rings, then the fleet ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecorderScope {
    /// One machine's agent-side ring.
    Machine(u32),
    /// One shard's collector-tier ring.
    Shard(u32),
    /// Fleet-level events (study-driver scope).
    Fleet,
}

impl RecorderScope {
    fn sort_key(self) -> (u8, u32) {
        match self {
            RecorderScope::Machine(m) => (0, m),
            RecorderScope::Shard(s) => (1, s),
            RecorderScope::Fleet => (2, 0),
        }
    }

    fn label(self) -> String {
        match self {
            RecorderScope::Machine(m) => format!("machine:{m}"),
            RecorderScope::Shard(s) => format!("shard:{s}"),
            RecorderScope::Fleet => "fleet".to_string(),
        }
    }
}

/// One structured pipeline event. All timestamps are simulated 100ns
/// ticks; all counts are deterministic simulation quantities.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightEvent {
    /// The agent lost its network and stopped capturing (§-style fault
    /// window opened).
    AgentSuspended {
        /// Simulated tick of the transition.
        ticks: u64,
    },
    /// The agent reconnected; `downtime_ticks` is its cumulative
    /// suspension time so far.
    AgentResumed {
        /// Simulated tick of the transition.
        ticks: u64,
        /// Cumulative suspended ticks across all windows so far.
        downtime_ticks: u64,
    },
    /// The fault plan squeezed this machine's triple buffer.
    BufferSqueezed {
        /// The squeezed per-buffer capacity, in records.
        capacity: u64,
    },
    /// Aggregated record drops since the previous drop event. The
    /// `total_*` fields are cumulative, so the newest event alone
    /// reconciles against the `LossLedger`.
    RecordsDropped {
        /// Simulated tick the delta was observed (shipment or flush).
        ticks: u64,
        /// Suspension drops since the last drop event.
        suspended_delta: u64,
        /// Buffer-overflow drops since the last drop event.
        overflow_delta: u64,
        /// Cumulative suspension drops (= ledger `dropped_suspended`).
        total_suspended: u64,
        /// Cumulative overflow drops (= ledger `dropped_overflow`).
        total_overflow: u64,
    },
    /// The collector tier refused a shipment (every server outaged);
    /// the batch stays queued machine-side for the backoff retry.
    ShipmentRefused {
        /// Simulated tick of the attempt.
        ticks: u64,
        /// Sequence of the refused head-of-line batch.
        seq: u64,
        /// Records waiting machine-side across all pending batches.
        pending_records: u64,
    },
    /// A delivery landed on a non-primary server after the primary's
    /// outage window swallowed it.
    Failover {
        /// Simulated tick of the delivery.
        ticks: u64,
        /// Sequence of the failed-over batch.
        seq: u64,
        /// The outaged primary server index.
        from_server: u32,
        /// The live server that took the batch.
        to_server: u32,
    },
    /// A shard finished and merged into the aggregator tier.
    MergeBoundary {
        /// Shard index.
        shard: u32,
        /// Machines the shard collected.
        machines: u64,
        /// Records the shard's analysis sink processed.
        records: u64,
    },
    /// A pipeline watchdog finding (see [`HealthFinding`]).
    Finding(HealthFinding),
}

impl FlightEvent {
    /// Stable lower-snake-case event name used in the dump.
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::AgentSuspended { .. } => "agent_suspended",
            FlightEvent::AgentResumed { .. } => "agent_resumed",
            FlightEvent::BufferSqueezed { .. } => "buffer_squeezed",
            FlightEvent::RecordsDropped { .. } => "records_dropped",
            FlightEvent::ShipmentRefused { .. } => "shipment_refused",
            FlightEvent::Failover { .. } => "failover",
            FlightEvent::MergeBoundary { .. } => "merge_boundary",
            FlightEvent::Finding(f) => f.kind(),
        }
    }

    fn json_fields(&self) -> String {
        match self {
            FlightEvent::AgentSuspended { ticks } => {
                format!("\"kind\":\"agent_suspended\",\"ticks\":{ticks}")
            }
            FlightEvent::AgentResumed {
                ticks,
                downtime_ticks,
            } => format!(
                "\"kind\":\"agent_resumed\",\"ticks\":{ticks},\"downtime_ticks\":{downtime_ticks}"
            ),
            FlightEvent::BufferSqueezed { capacity } => {
                format!("\"kind\":\"buffer_squeezed\",\"capacity\":{capacity}")
            }
            FlightEvent::RecordsDropped {
                ticks,
                suspended_delta,
                overflow_delta,
                total_suspended,
                total_overflow,
            } => format!(
                "\"kind\":\"records_dropped\",\"ticks\":{ticks},\
                 \"suspended_delta\":{suspended_delta},\"overflow_delta\":{overflow_delta},\
                 \"total_suspended\":{total_suspended},\"total_overflow\":{total_overflow}"
            ),
            FlightEvent::ShipmentRefused {
                ticks,
                seq,
                pending_records,
            } => format!(
                "\"kind\":\"shipment_refused\",\"ticks\":{ticks},\"seq\":{seq},\
                 \"pending_records\":{pending_records}"
            ),
            FlightEvent::Failover {
                ticks,
                seq,
                from_server,
                to_server,
            } => format!(
                "\"kind\":\"failover\",\"ticks\":{ticks},\"seq\":{seq},\
                 \"from_server\":{from_server},\"to_server\":{to_server}"
            ),
            FlightEvent::MergeBoundary {
                shard,
                machines,
                records,
            } => format!(
                "\"kind\":\"merge_boundary\",\"shard\":{shard},\"machines\":{machines},\
                 \"records\":{records}"
            ),
            FlightEvent::Finding(f) => f.json_fields(),
        }
    }
}

struct Ring {
    events: VecDeque<FlightEvent>,
    evicted: u64,
}

struct RecorderShared {
    capacity: usize,
    scopes: Mutex<BTreeMap<(u8, u32), Ring>>,
    dumped: AtomicBool,
}

/// The fleet flight-recorder handle. Cheap to clone; all clones share
/// the rings and the dumped-once latch. The disabled handle
/// ([`FlightRecorder::off`], also `Default`) is one `Option` check per
/// call.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<RecorderShared>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl FlightRecorder {
    /// The inert recorder: every operation is a no-op.
    pub fn off() -> Self {
        FlightRecorder::default()
    }

    /// A live recorder holding up to `capacity` events per scope.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(RecorderShared {
                capacity,
                scopes: Mutex::new(BTreeMap::new()),
                dumped: AtomicBool::new(false),
            })),
        }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends `event` to `scope`'s ring, evicting the oldest event when
    /// the ring is full (evictions are counted and surfaced in the
    /// dump).
    pub fn record(&self, scope: RecorderScope, event: FlightEvent) {
        let Some(inner) = &self.inner else {
            return;
        };
        if inner.capacity == 0 {
            return;
        }
        let mut scopes = inner.scopes.lock().unwrap_or_else(|p| p.into_inner());
        let ring = scopes.entry(scope.sort_key()).or_insert_with(|| Ring {
            events: VecDeque::with_capacity(16),
            evicted: 0,
        });
        if ring.events.len() == inner.capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(event);
    }

    /// Snapshot of every scope's ring (scope order, oldest event first)
    /// with its eviction count. For dashboards and tests; the rings are
    /// left intact.
    pub fn snapshot(&self) -> Vec<(RecorderScope, Vec<FlightEvent>, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let scopes = inner.scopes.lock().unwrap_or_else(|p| p.into_inner());
        scopes
            .iter()
            .map(|(&(tier, id), ring)| {
                let scope = match tier {
                    0 => RecorderScope::Machine(id),
                    1 => RecorderScope::Shard(id),
                    _ => RecorderScope::Fleet,
                };
                (scope, ring.events.iter().cloned().collect(), ring.evicted)
            })
            .collect()
    }

    /// True once a dump has been written.
    pub fn dumped(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.dumped.load(Ordering::SeqCst))
    }

    /// Dumps every ring to `path` as JSONL, **exactly once**: the first
    /// trigger (study fault, conservation drift, loss budget) writes the
    /// file and wins the latch; later triggers return `Ok(false)` and
    /// touch nothing. `Ok(true)` means this call wrote the dump.
    pub fn dump(&self, path: &Path, reason: &str) -> Result<bool, ExportError> {
        use std::io::Write as _;
        let Some(inner) = &self.inner else {
            return Ok(false);
        };
        if inner.dumped.swap(true, Ordering::SeqCst) {
            return Ok(false);
        }
        let io_err = |source| ExportError::Io {
            path: path.to_path_buf(),
            source,
        };
        let mut out = create_export_file(path)?;
        let scopes = inner.scopes.lock().unwrap_or_else(|p| p.into_inner());
        let mut header = String::from("{\"flight_recorder\":\"v1\",\"reason\":");
        crate::export::push_json_string(&mut header, reason);
        let total: usize = scopes.values().map(|r| r.events.len()).sum();
        use std::fmt::Write as _;
        let _ = write!(header, ",\"scopes\":{},\"events\":{total}}}", scopes.len());
        writeln!(out, "{header}").map_err(io_err)?;
        for (&(tier, id), ring) in scopes.iter() {
            let scope = match tier {
                0 => RecorderScope::Machine(id),
                1 => RecorderScope::Shard(id),
                _ => RecorderScope::Fleet,
            };
            writeln!(
                out,
                "{{\"scope\":\"{}\",\"kind\":\"scope\",\"events\":{},\"evicted\":{}}}",
                scope.label(),
                ring.events.len(),
                ring.evicted
            )
            .map_err(io_err)?;
            for event in &ring.events {
                writeln!(
                    out,
                    "{{\"scope\":\"{}\",{}}}",
                    scope.label(),
                    event.json_fields()
                )
                .map_err(io_err)?;
            }
        }
        out.flush().map_err(io_err)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_is_inert() {
        let r = FlightRecorder::off();
        assert!(!r.is_enabled());
        r.record(
            RecorderScope::Fleet,
            FlightEvent::AgentSuspended { ticks: 1 },
        );
        assert!(r.snapshot().is_empty());
        assert!(!r.dumped());
        let path = std::env::temp_dir().join("nt-obs-recorder-off.jsonl");
        assert!(!r.dump(&path, "x").unwrap());
        assert!(!path.exists());
    }

    #[test]
    fn rings_bound_and_count_evictions() {
        let r = FlightRecorder::new(2);
        for t in 0..5 {
            r.record(
                RecorderScope::Machine(7),
                FlightEvent::AgentSuspended { ticks: t },
            );
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        let (scope, events, evicted) = &snap[0];
        assert_eq!(*scope, RecorderScope::Machine(7));
        assert_eq!(*evicted, 3);
        assert_eq!(
            *events,
            vec![
                FlightEvent::AgentSuspended { ticks: 3 },
                FlightEvent::AgentSuspended { ticks: 4 },
            ]
        );
    }

    #[test]
    fn dump_is_exactly_once_and_ordered() {
        let dir = std::env::temp_dir().join(format!("nt-obs-recorder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::new(8);
        r.record(
            RecorderScope::Shard(1),
            FlightEvent::MergeBoundary {
                shard: 1,
                machines: 5,
                records: 100,
            },
        );
        r.record(
            RecorderScope::Machine(0),
            FlightEvent::RecordsDropped {
                ticks: 10,
                suspended_delta: 2,
                overflow_delta: 0,
                total_suspended: 2,
                total_overflow: 0,
            },
        );
        r.record(
            RecorderScope::Fleet,
            FlightEvent::AgentSuspended { ticks: 3 },
        );
        let path = dir.join("flight-recorder.jsonl");
        assert!(r.dump(&path, "study-fault: \"collector\" died").unwrap());
        assert!(r.dumped());
        // Second trigger: latched, nothing rewritten.
        assert!(!r.dump(&path, "other reason").unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // header + 3 scope lines + 3 events.
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("\"flight_recorder\":\"v1\""));
        assert!(lines[0].contains("\\\"collector\\\""), "reason escaped");
        assert!(lines[0].contains("\"events\":3"));
        // Machine scopes first, then shards, then fleet.
        assert!(lines[1].contains("\"scope\":\"machine:0\""));
        assert!(lines[2].contains("\"kind\":\"records_dropped\""));
        assert!(lines[3].contains("\"scope\":\"shard:1\""));
        assert!(lines[4].contains("\"kind\":\"merge_boundary\""));
        assert!(lines[5].contains("\"scope\":\"fleet\""));
        assert!(lines[6].contains("\"kind\":\"agent_suspended\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
