//! The Windows NT virtual-memory manager model.
//!
//! §3.3 of the paper explains why the tracer had to capture paging I/O:
//! Windows NT loads executables and dynamic libraries through memory-mapped
//! image sections, and the cache manager fills the file cache through page
//! faults on data sections. Both arrive at the file system as IRPs with the
//! *PagingIO* bit set. Crucially for trace accounting, **image pages stay
//! resident after the owning process exits** so that re-running an
//! application is fast — which is why the older studies' trick of counting
//! `exec` sizes would be wrong on NT.
//!
//! This crate models exactly that: section objects keyed by file, demand
//! paging that emits the paging reads the caller must turn into IRPs, and a
//! standby list that keeps unreferenced image pages resident until memory
//! pressure evicts them.

pub mod section;

pub use section::{PagingRead, SectionKind, VmConfig, VmManager, VmMetrics};
