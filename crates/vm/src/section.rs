//! Section objects and the standby list.

use std::collections::BTreeMap;

use nt_cache::{RangeSet, PAGE_SIZE};
use nt_obs::{Phase, Telemetry};
use nt_sim::SimTime;

fn page_floor(x: u64) -> u64 {
    x / PAGE_SIZE * PAGE_SIZE
}

fn page_ceil(x: u64) -> u64 {
    x.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// What a section maps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SectionKind {
    /// An executable or DLL image. Pages survive process exit on the
    /// standby list (§3.3).
    Image,
    /// A plain mapped data file. Pages are released when the last
    /// reference goes away.
    Data,
}

/// One paging read the caller must issue as a PagingIO IRP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagingRead {
    /// Page-aligned byte offset.
    pub offset: u64,
    /// Length in bytes (page multiple).
    pub len: u64,
}

/// Tunables for the VM manager.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Physical pages available for section residency. 64–128 MB machines
    /// in the study; default models 64 MB with half available to sections.
    pub page_budget: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            page_budget: (32 << 20) / PAGE_SIZE,
        }
    }
}

/// Counters for §3.3-related analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmMetrics {
    /// Hard faults: pages that required a paging read.
    pub hard_faults: u64,
    /// Soft faults: touched pages already resident (incl. standby reuse).
    pub soft_faults: u64,
    /// Bytes brought in by paging reads.
    pub paged_in_bytes: u64,
    /// Paging reads issued for section faults (one per resident gap).
    pub paging_read_ios: u64,
    /// Image-section map requests fully served from the standby list —
    /// the warm application restarts §3.3 describes.
    pub warm_image_maps: u64,
    /// Cold image-section map requests (needed at least one paging read).
    pub cold_image_maps: u64,
    /// Pages evicted under memory pressure.
    pub evicted_pages: u64,
}

impl VmMetrics {
    /// Posts the VM's side of the conservation accounts: section faults
    /// credit their share of the paging reads the I/O layer debited.
    pub fn post_conservation(&self, ledger: &mut nt_audit::Ledger) {
        use nt_audit::accounts::*;
        ledger.credit(PAGING_READ_IOS, self.paging_read_ios);
        ledger.credit(PAGING_READ_BYTES, self.paged_in_bytes);
    }
}

struct Section {
    kind: SectionKind,
    size: u64,
    resident: RangeSet,
    refs: u32,
    last_touch: SimTime,
}

/// The VM manager: section objects keyed by `K` plus a global page budget.
pub struct VmManager<K> {
    config: VmConfig,
    // BTreeMap, not HashMap: eviction breaks `last_touch` ties by visit
    // order, and the simulation must replay identically for one seed.
    sections: BTreeMap<K, Section>,
    resident_pages: u64,
    metrics: VmMetrics,
    telemetry: Telemetry,
}

impl<K: Ord + Clone> VmManager<K> {
    /// Creates a manager with the given tunables.
    pub fn new(config: VmConfig) -> Self {
        VmManager {
            config,
            sections: BTreeMap::new(),
            resident_pages: 0,
            metrics: VmMetrics::default(),
            telemetry: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle; paging spans nest under the owning
    /// machine's dispatch spans.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Creates a manager with defaults for a 64 MB study machine.
    pub fn with_defaults() -> Self {
        Self::new(VmConfig::default())
    }

    /// Current counters.
    pub fn metrics(&self) -> VmMetrics {
        self.metrics
    }

    /// Pages currently resident across all sections.
    pub fn resident_pages(&self) -> u64 {
        self.resident_pages
    }

    /// Creates (or references) a section for a file. Re-mapping an image
    /// whose pages are still on the standby list is the warm-restart path.
    pub fn map(&mut self, key: &K, kind: SectionKind, size: u64, now: SimTime) {
        let s = self.sections.entry(key.clone()).or_insert(Section {
            kind,
            size,
            resident: RangeSet::new(),
            refs: 0,
            last_touch: now,
        });
        s.refs += 1;
        s.size = s.size.max(size);
        s.kind = kind;
        s.last_touch = now;
    }

    /// Touches `[offset, offset + len)` of a mapped section, returning the
    /// paging reads needed for the non-resident pages.
    pub fn fault(&mut self, key: &K, offset: u64, len: u64, now: SimTime) -> Vec<PagingRead> {
        let _span = self.telemetry.span(Phase::Vm, "vm.fault", now);
        let Some(s) = self.sections.get_mut(key) else {
            return Vec::new();
        };
        s.last_touch = now;
        let end = page_ceil((offset + len).min(s.size));
        let start = page_floor(offset).min(end);
        if start >= end {
            return Vec::new();
        }
        let gaps = s.resident.gaps(start, end);
        if gaps.is_empty() {
            self.metrics.soft_faults += 1;
            return Vec::new();
        }
        let mut reads = Vec::with_capacity(gaps.len());
        let mut new_pages = 0;
        for (gs, ge) in gaps {
            let (gs, ge) = (page_floor(gs), page_ceil(ge));
            reads.push(PagingRead {
                offset: gs,
                len: ge - gs,
            });
            new_pages += (ge - gs) / PAGE_SIZE;
            self.metrics.paged_in_bytes += ge - gs;
            s.resident.insert(gs, ge);
        }
        self.metrics.hard_faults += 1;
        self.metrics.paging_read_ios += reads.len() as u64;
        self.resident_pages += new_pages;
        self.evict_to_budget(key);
        reads
    }

    /// Maps an image and faults in its whole load footprint at once (the
    /// loader touches headers plus code pages). Returns the paging reads;
    /// an empty result is a warm start.
    pub fn load_image(&mut self, key: &K, size: u64, now: SimTime) -> Vec<PagingRead> {
        let _span = self.telemetry.span(Phase::Vm, "vm.load_image", now);
        self.map(key, SectionKind::Image, size, now);
        let reads = self.fault(key, 0, size, now);
        if reads.is_empty() {
            self.metrics.warm_image_maps += 1;
        } else {
            self.metrics.cold_image_maps += 1;
        }
        reads
    }

    /// Releases one reference. Data-section pages are freed at zero refs;
    /// image pages move to the standby list (stay resident, refs == 0).
    pub fn unmap(&mut self, key: &K) {
        let Some(s) = self.sections.get_mut(key) else {
            return;
        };
        s.refs = s.refs.saturating_sub(1);
        if s.refs == 0 && s.kind == SectionKind::Data {
            let pages = s.resident.covered_bytes() / PAGE_SIZE;
            self.resident_pages -= pages;
            self.sections.remove(key);
        }
    }

    /// Drops a section entirely (file deleted / volume dismount).
    pub fn purge(&mut self, key: &K) {
        if let Some(s) = self.sections.remove(key) {
            self.resident_pages -= s.resident.covered_bytes() / PAGE_SIZE;
        }
    }

    /// True when the key currently has a section object.
    pub fn has_section(&self, key: &K) -> bool {
        self.sections.contains_key(key)
    }

    /// Resident bytes of one section.
    pub fn resident_bytes(&self, key: &K) -> u64 {
        self.sections
            .get(key)
            .map_or(0, |s| s.resident.covered_bytes())
    }

    fn evict_to_budget(&mut self, protect: &K) {
        while self.resident_pages > self.config.page_budget {
            // Evict the least-recently-touched unreferenced section
            // wholesale; protect the section being faulted right now.
            let victim = self
                .sections
                .iter()
                .filter(|(k, s)| s.refs == 0 && !s.resident.is_empty() && *k != protect)
                .min_by_key(|(_, s)| s.last_touch)
                .map(|(k, _)| k.clone());
            let Some(k) = victim else {
                // Everything is referenced: allow the overshoot (NT would
                // trim working sets; out of scope).
                return;
            };
            let s = self.sections.get_mut(&k).expect("victim exists");
            let pages = s.resident.covered_bytes() / PAGE_SIZE;
            s.resident.clear();
            self.resident_pages -= pages;
            self.metrics.evicted_pages += pages;
            if s.kind == SectionKind::Data {
                self.sections.remove(&k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimTime = SimTime::from_secs(1);

    fn vm() -> VmManager<u32> {
        VmManager::with_defaults()
    }

    #[test]
    fn cold_then_warm_image_load() {
        let mut v = vm();
        let reads = v.load_image(&1, 100_000, T);
        assert!(!reads.is_empty());
        assert_eq!(v.metrics().cold_image_maps, 1);
        let total: u64 = reads.iter().map(|r| r.len).sum();
        assert_eq!(total, page_ceil(100_000));
        v.unmap(&1);
        // §3.3: image pages survive process exit.
        assert!(v.has_section(&1));
        assert_eq!(v.resident_bytes(&1), page_ceil(100_000));
        let reads2 = v.load_image(&1, 100_000, SimTime::from_secs(2));
        assert!(reads2.is_empty(), "warm restart needs no paging I/O");
        assert_eq!(v.metrics().warm_image_maps, 1);
    }

    #[test]
    fn data_sections_release_pages_at_zero_refs() {
        let mut v = vm();
        v.map(&1, SectionKind::Data, 8_192, T);
        let reads = v.fault(&1, 0, 8_192, T);
        assert_eq!(reads.len(), 1);
        assert_eq!(v.resident_pages(), 2);
        v.unmap(&1);
        assert!(!v.has_section(&1));
        assert_eq!(v.resident_pages(), 0);
    }

    #[test]
    fn faults_are_page_granular_and_idempotent() {
        let mut v = vm();
        v.map(&1, SectionKind::Data, 1 << 20, T);
        let r1 = v.fault(&1, 100, 50, T);
        assert_eq!(
            r1,
            vec![PagingRead {
                offset: 0,
                len: PAGE_SIZE
            }]
        );
        let r2 = v.fault(&1, 200, 50, T);
        assert!(r2.is_empty(), "page already resident");
        assert_eq!(v.metrics().soft_faults, 1);
        assert_eq!(v.metrics().hard_faults, 1);
    }

    #[test]
    fn fault_clamps_to_section_size() {
        let mut v = vm();
        v.map(&1, SectionKind::Data, 5_000, T);
        let r = v.fault(&1, 4_096, 100_000, T);
        assert_eq!(
            r,
            vec![PagingRead {
                offset: 4_096,
                len: 4_096
            }]
        );
        assert!(v.fault(&1, 10_000, 100, T).is_empty(), "past EOF");
    }

    #[test]
    fn pressure_evicts_lru_standby_images() {
        let mut v = VmManager::new(VmConfig { page_budget: 4 });
        // Two images of 2 pages each fill the budget.
        v.load_image(&1, 8_192, SimTime::from_secs(1));
        v.unmap(&1);
        v.load_image(&2, 8_192, SimTime::from_secs(2));
        v.unmap(&2);
        assert_eq!(v.resident_pages(), 4);
        // A third image forces eviction of the oldest (key 1).
        v.load_image(&3, 8_192, SimTime::from_secs(3));
        assert!(v.resident_pages() <= 4);
        assert_eq!(v.resident_bytes(&1), 0, "LRU image evicted");
        assert!(v.resident_bytes(&3) > 0);
        assert!(v.metrics().evicted_pages >= 2);
    }

    #[test]
    fn purge_drops_everything() {
        let mut v = vm();
        v.load_image(&1, 8_192, T);
        v.purge(&1);
        assert!(!v.has_section(&1));
        assert_eq!(v.resident_pages(), 0);
    }

    #[test]
    fn unmapped_key_faults_nothing() {
        let mut v = vm();
        assert!(v.fault(&9, 0, 100, T).is_empty());
    }
}
