//! Empirical (optionally weighted) cumulative distributions.
//!
//! Every figure in the paper is a cumulative distribution over a
//! log-scaled axis; [`Cdf`] is the common machinery: exact quantiles,
//! `P[X <= x]` lookups, and log-spaced rendering points for the text
//! plots the benchmark harness prints.

/// An empirical CDF over `f64` samples with per-sample weights.
#[derive(Clone, Debug)]
pub struct Cdf {
    // Sorted by value; weights normalised on demand.
    points: Vec<(f64, f64)>,
    total_weight: f64,
}

impl Cdf {
    /// Builds from unweighted samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        Self::from_weighted(samples.into_iter().map(|x| (x, 1.0)))
    }

    /// Builds from `(value, weight)` pairs — e.g. figure 2 weights each
    /// run length by the bytes it transferred.
    pub fn from_weighted(samples: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut points: Vec<(f64, f64)> = samples
            .into_iter()
            .filter(|(x, w)| x.is_finite() && *w > 0.0)
            .collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let total_weight = points.iter().map(|(_, w)| w).sum();
        Cdf {
            points,
            total_weight,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were accepted.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `P[X <= x]`, in [0, 1].
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        let idx = self.points.partition_point(|(v, _)| *v <= x);
        let w: f64 = self.points[..idx].iter().map(|(_, w)| w).sum();
        w / self.total_weight
    }

    /// The `q`-quantile (q in [0, 1]); `None` on an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total_weight;
        let mut acc = 0.0;
        for (v, w) in &self.points {
            acc += w;
            if acc >= target {
                return Some(*v);
            }
        }
        Some(self.points.last().expect("non-empty").0)
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest and largest sample.
    pub fn range(&self) -> Option<(f64, f64)> {
        Some((self.points.first()?.0, self.points.last()?.0))
    }

    /// Renders `(x, percent_at_or_below)` pairs at `n` log-spaced x values
    /// across the sample range — the series the paper's figures plot.
    pub fn log_points(&self, n: usize) -> Vec<(f64, f64)> {
        let Some((lo, hi)) = self.range() else {
            return Vec::new();
        };
        let lo = lo.max(1e-9);
        let hi = hi.max(lo * (1.0 + 1e-9));
        let n = n.max(2);
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                let x = lo * (hi / lo).powf(t);
                (x, 100.0 * self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// Raw sorted values (for QQ/LLCD computations).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|(v, _)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_quantiles() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(cdf.len(), 100);
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(0.9), Some(90.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert!((cdf.fraction_at_or_below(75.0) - 0.75).abs() < 1e-12);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1e9), 1.0);
    }

    #[test]
    fn weights_shift_the_distribution() {
        // One huge-weight large sample dominates (the §7 outlier effect).
        let cdf = Cdf::from_weighted(vec![(1.0, 1.0), (2.0, 1.0), (1_000.0, 98.0)]);
        assert_eq!(cdf.median(), Some(1_000.0));
        assert!(cdf.fraction_at_or_below(2.0) < 0.05);
    }

    #[test]
    fn empty_and_degenerate() {
        let empty = Cdf::from_samples(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.fraction_at_or_below(1.0), 0.0);
        assert!(empty.log_points(10).is_empty());
        let nan = Cdf::from_samples(vec![f64::NAN, 1.0]);
        assert_eq!(nan.len(), 1, "NaN filtered");
    }

    #[test]
    fn log_points_are_monotonic() {
        let cdf = Cdf::from_samples((1..2_000).map(|i| (i as f64).powf(1.7)));
        let pts = cdf.log_points(30);
        assert_eq!(pts.len(), 30);
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((pts.last().unwrap().1 - 100.0).abs() < 1e-9);
    }
}
