//! Sequential-run analysis — figures 1 and 2.
//!
//! A sequential run is a maximal stretch of a file read or written
//! sequentially. The paper plots the run-length CDF weighted by the
//! number of files (figure 1: the 80 % mark sits at ≈ 11 KB) and by the
//! bytes transferred (figure 2: most bytes move in long runs).

use crate::cdf::Cdf;
use crate::schema::TraceSet;

/// The four CDFs of figures 1–2. Run lengths in bytes.
pub struct SequentialRuns {
    /// Read runs weighted per run (figure 1).
    pub read_by_files: Cdf,
    /// Write runs weighted per run (figure 1).
    pub write_by_files: Cdf,
    /// Read runs weighted by bytes (figure 2).
    pub read_by_bytes: Cdf,
    /// Write runs weighted by bytes (figure 2).
    pub write_by_bytes: Cdf,
}

/// Collects run lengths from the instance table.
pub fn sequential_runs(ts: &TraceSet) -> SequentialRuns {
    let reads: Vec<u64> = ts
        .instances
        .iter()
        .flat_map(|i| i.read_runs.iter().copied())
        .filter(|&r| r > 0)
        .collect();
    let writes: Vec<u64> = ts
        .instances
        .iter()
        .flat_map(|i| i.write_runs.iter().copied())
        .filter(|&r| r > 0)
        .collect();
    SequentialRuns {
        read_by_files: Cdf::from_samples(reads.iter().map(|&r| r as f64)),
        write_by_files: Cdf::from_samples(writes.iter().map(|&r| r as f64)),
        read_by_bytes: Cdf::from_weighted(reads.iter().map(|&r| (r as f64, r as f64))),
        write_by_bytes: Cdf::from_weighted(writes.iter().map(|&r| (r as f64, r as f64))),
    }
}

/// Session-level transfer totals: the paper's companion observation that
/// "the 80 % mark for the number of accesses changes to 24 Kbytes" when
/// looking at whole sessions, and that 10 % of bytes move in sessions
/// that accessed at least 120 KB.
pub struct SessionTransfers {
    /// Bytes per data session, weighted per session.
    pub by_sessions: Cdf,
    /// Bytes per data session, weighted by bytes.
    pub by_bytes: Cdf,
}

/// Computes session transfer CDFs.
pub fn session_transfers(ts: &TraceSet) -> SessionTransfers {
    let totals: Vec<u64> = ts
        .instances
        .iter()
        .filter(|i| i.is_data())
        .map(|i| i.bytes())
        .filter(|&b| b > 0)
        .collect();
    SessionTransfers {
        by_sessions: Cdf::from_samples(totals.iter().map(|&b| b as f64)),
        by_bytes: Cdf::from_weighted(totals.iter().map(|&b| (b as f64, b as f64))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn runs_exist_and_byte_weighting_shifts_right() {
        let ts = synthetic_trace_set(400, 11);
        let r = sequential_runs(&ts);
        assert!(r.read_by_files.len() > 20);
        assert!(r.write_by_files.len() > 20);
        let files_median = r.read_by_files.median().unwrap();
        let bytes_median = r.read_by_bytes.median().unwrap();
        assert!(
            bytes_median >= files_median,
            "byte weighting favours long runs: {files_median} vs {bytes_median}"
        );
    }

    #[test]
    fn session_transfers_weighted() {
        let ts = synthetic_trace_set(400, 12);
        let t = session_transfers(&ts);
        assert!(!t.by_sessions.is_empty());
        assert!(t.by_bytes.median().unwrap() >= t.by_sessions.median().unwrap());
    }
}
