//! Paging-I/O burst analysis — §9.2 and the follow-up traces.
//!
//! "What is important to us is the bursts of write requests triggered by
//! activity of the lazy-writer threads. In general, when the bursts
//! occur, they are in groups of 2–8 requests, with sizes of one or more
//! pages up to 65 Kbytes." The paper also mentions running extra traces
//! for "burst behavior of paging I/O"; this module measures both
//! directions.

use std::collections::HashMap;

use crate::cdf::Cdf;
use crate::schema::TraceSet;

/// One burst of consecutive paging requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Burst {
    /// Requests in the burst.
    pub requests: u32,
    /// Total bytes.
    pub bytes: u64,
    /// Largest single request in the burst.
    pub max_request: u64,
}

/// The paging-burst analysis.
pub struct PagingBursts {
    /// Lazy-writer (paging write) bursts.
    pub write_bursts: Vec<Burst>,
    /// Paging read bursts (demand + read-ahead trains).
    pub read_bursts: Vec<Burst>,
    /// Burst sizes in requests, as a CDF (writes).
    pub write_burst_requests: Cdf,
    /// Request sizes within write bursts, bytes.
    pub write_request_sizes: Cdf,
}

/// Groups paging requests into bursts: requests on the same machine less
/// than `gap_ticks` apart belong to one burst (the lazy writer emits its
/// group within one scan, so 100 ms comfortably separates scans).
pub fn paging_bursts(ts: &TraceSet, gap_ticks: u64) -> PagingBursts {
    let mut writes_by_machine: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    let mut reads_by_machine: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    // Columnar scan: flags select paging rows; only machine, start-tick
    // and length columns are then read.
    let t = &ts.records;
    let (machines, starts, lengths) = (t.machines(), t.start_ticks(), t.lengths());
    for i in 0..t.len() {
        if !t.is_paging(i) {
            continue;
        }
        let out = if t.kind_at(i).is_write() {
            &mut writes_by_machine
        } else {
            &mut reads_by_machine
        };
        out.entry(machines[i])
            .or_default()
            .push((starts[i], lengths[i]));
    }
    let collect = |per: HashMap<u32, Vec<(u64, u64)>>| {
        let mut bursts = Vec::new();
        for (_, mut reqs) in per {
            reqs.sort_unstable();
            let mut current: Option<(u64, Burst)> = None;
            for (t, len) in reqs {
                match current.as_mut() {
                    Some((last, burst)) if t.saturating_sub(*last) <= gap_ticks => {
                        burst.requests += 1;
                        burst.bytes += len;
                        burst.max_request = burst.max_request.max(len);
                        *last = t;
                    }
                    _ => {
                        if let Some((_, b)) = current.take() {
                            bursts.push(b);
                        }
                        current = Some((
                            t,
                            Burst {
                                requests: 1,
                                bytes: len,
                                max_request: len,
                            },
                        ));
                    }
                }
            }
            if let Some((_, b)) = current {
                bursts.push(b);
            }
        }
        bursts
    };
    let write_bursts = collect(writes_by_machine);
    let read_bursts = collect(reads_by_machine);
    PagingBursts {
        write_burst_requests: Cdf::from_samples(write_bursts.iter().map(|b| b.requests as f64)),
        write_request_sizes: Cdf::from_samples(
            (0..t.len())
                .filter(|&i| t.is_paging(i) && t.kind_at(i).is_write())
                .map(|i| lengths[i] as f64),
        ),
        write_bursts,
        read_bursts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn bursts_are_grouped_and_bounded() {
        let ts = synthetic_trace_set(700, 101);
        // 100 ms burst gap.
        let b = paging_bursts(&ts, 1_000_000);
        assert!(!b.write_bursts.is_empty(), "lazy writer produced bursts");
        // §9.2: individual lazy-write requests cap at 64 KB.
        for burst in &b.write_bursts {
            assert!(burst.max_request <= 65_536, "got {}", burst.max_request);
            assert!(burst.requests >= 1);
            assert!(burst.bytes >= burst.max_request);
        }
        // The request-size CDF caps at the burst limit too.
        if let Some((_, max)) = b.write_request_sizes.range() {
            assert!(max <= 65_536.0);
        }
    }

    #[test]
    fn a_wider_gap_merges_bursts() {
        let ts = synthetic_trace_set(700, 102);
        let narrow = paging_bursts(&ts, 1_000_000);
        let wide = paging_bursts(&ts, 100_000_000);
        assert!(wide.write_bursts.len() <= narrow.write_bursts.len());
        let narrow_total: u64 = narrow.write_bursts.iter().map(|b| b.bytes).sum();
        let wide_total: u64 = wide.write_bursts.iter().map(|b| b.bytes).sum();
        assert_eq!(narrow_total, wide_total, "grouping conserves bytes");
    }

    #[test]
    fn read_bursts_exist_from_readahead_trains() {
        let ts = synthetic_trace_set(700, 103);
        let b = paging_bursts(&ts, 1_000_000);
        assert!(!b.read_bursts.is_empty());
    }
}
