//! Dimension tables and drill-down cubes — the §4 warehouse machinery.
//!
//! "Dimension tables are used in the analysis process as the category
//! axes for multi-dimensional cube representations of the trace
//! information. Most dimensions support multiple levels of summarization,
//! to allow a drill-down into the summarized data … a mailbox file with a
//! .mbx type is part of the mail files category, which is part of the
//! application files category."

use std::collections::HashMap;

use crate::schema::{Instance, TraceSet};

/// Level 1 of the file-type dimension (the coarsest roll-up).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TopCategory {
    /// Operating-system distribution files.
    SystemFiles,
    /// Application-owned data.
    ApplicationFiles,
    /// User documents and content.
    UserFiles,
    /// Build artefacts and sources.
    DevelopmentFiles,
    /// Scratch and cache content.
    TransientFiles,
    /// Everything else.
    Other,
}

/// Level 2 of the file-type dimension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum LeafCategory {
    /// Executable images.
    Executables,
    /// Dynamic libraries and drivers.
    Libraries,
    /// Fonts.
    Fonts,
    /// Configuration, registry hives, logs.
    Configuration,
    /// Mail files (the paper's worked example).
    MailFiles,
    /// Databases.
    Databases,
    /// Office documents and text.
    Documents,
    /// WWW cache content.
    WebCache,
    /// Source code.
    SourceCode,
    /// Objects, PCHs, link state.
    BuildOutputs,
    /// Scientific data sets.
    DataSets,
    /// Temporary scratch.
    TempFiles,
    /// Unknown.
    Unknown,
}

impl LeafCategory {
    /// The §4 worked example: the leaf rolls up to a top category.
    pub fn top(self) -> TopCategory {
        match self {
            LeafCategory::Executables | LeafCategory::Libraries | LeafCategory::Fonts => {
                TopCategory::SystemFiles
            }
            LeafCategory::Configuration => TopCategory::SystemFiles,
            LeafCategory::MailFiles | LeafCategory::Databases => TopCategory::ApplicationFiles,
            LeafCategory::Documents => TopCategory::UserFiles,
            LeafCategory::WebCache | LeafCategory::TempFiles => TopCategory::TransientFiles,
            LeafCategory::SourceCode | LeafCategory::BuildOutputs => TopCategory::DevelopmentFiles,
            LeafCategory::DataSets => TopCategory::ApplicationFiles,
            LeafCategory::Unknown => TopCategory::Other,
        }
    }

    /// Classifies a lower-cased extension.
    pub fn of_extension(ext: Option<&str>) -> LeafCategory {
        match ext {
            Some("exe" | "com" | "scr") => LeafCategory::Executables,
            Some("dll" | "ocx" | "drv" | "cpl" | "sys") => LeafCategory::Libraries,
            Some("ttf" | "fon" | "ttc") => LeafCategory::Fonts,
            Some("ini" | "inf" | "pol" | "log" | "dat") => LeafCategory::Configuration,
            Some("mbx" | "pst" | "eml" | "msg") => LeafCategory::MailFiles,
            Some("db" | "mdb" | "dbf") => LeafCategory::Databases,
            Some("doc" | "xls" | "ppt" | "txt" | "rtf") => LeafCategory::Documents,
            Some("htm" | "html" | "gif" | "jpg" | "css" | "js" | "cookie") => {
                LeafCategory::WebCache
            }
            Some("c" | "cpp" | "h" | "hpp" | "java" | "cs" | "rc" | "bas") => {
                LeafCategory::SourceCode
            }
            Some("obj" | "pch" | "pdb" | "ilk" | "lib" | "exp" | "res" | "class") => {
                LeafCategory::BuildOutputs
            }
            Some("mat" | "hdf" | "bin" | "raw" | "sim") => LeafCategory::DataSets,
            Some("tmp" | "bak" | "old") => LeafCategory::TempFiles,
            _ => LeafCategory::Unknown,
        }
    }
}

/// Measures accumulated per cube cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Measures {
    /// Open attempts in the cell.
    pub opens: u64,
    /// Of which failed.
    pub failed_opens: u64,
    /// Sessions that transferred data.
    pub data_sessions: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Control/query/directory operations.
    pub control_ops: u64,
    /// Sum of session durations (ticks), for mean computation.
    pub duration_ticks: u64,
    /// Sessions with a known duration.
    pub duration_samples: u64,
}

impl Measures {
    fn absorb(&mut self, inst: &Instance) {
        self.opens += 1;
        if !inst.opened() {
            self.failed_opens += 1;
            return;
        }
        if inst.is_data() {
            self.data_sessions += 1;
        }
        self.read_bytes += inst.read_bytes;
        self.write_bytes += inst.write_bytes;
        self.control_ops += inst.control_ops as u64;
        if let Some(d) = inst.duration_ticks() {
            self.duration_ticks += d;
            self.duration_samples += 1;
        }
    }

    /// Mean session duration in milliseconds (0 without samples).
    pub fn mean_duration_ms(&self) -> f64 {
        if self.duration_samples == 0 {
            0.0
        } else {
            self.duration_ticks as f64 / self.duration_samples as f64 / 10_000.0
        }
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// A drill-down cube over the instance table: top category → leaf
/// category → extension, with per-machine and per-process slices.
pub struct TypeCube {
    /// Measures per top-level category.
    pub by_top: HashMap<TopCategory, Measures>,
    /// Measures per leaf category.
    pub by_leaf: HashMap<LeafCategory, Measures>,
    /// Measures per extension (the finest level).
    pub by_extension: HashMap<String, Measures>,
    /// Measures per (machine, leaf) — a slice the §5 comparison uses.
    pub by_machine_leaf: HashMap<(u32, LeafCategory), Measures>,
    /// Measures per process id.
    pub by_process: HashMap<u32, Measures>,
    /// Grand total.
    pub total: Measures,
}

/// Builds the cube from the fact tables.
pub fn type_cube(ts: &TraceSet) -> TypeCube {
    let mut cube = TypeCube {
        by_top: HashMap::new(),
        by_leaf: HashMap::new(),
        by_extension: HashMap::new(),
        by_machine_leaf: HashMap::new(),
        by_process: HashMap::new(),
        total: Measures::default(),
    };
    for inst in &ts.instances {
        let ext = inst.extension();
        let leaf = LeafCategory::of_extension(ext.as_deref());
        let top = leaf.top();
        cube.by_top.entry(top).or_default().absorb(inst);
        cube.by_leaf.entry(leaf).or_default().absorb(inst);
        cube.by_extension
            .entry(ext.unwrap_or_default())
            .or_default()
            .absorb(inst);
        cube.by_machine_leaf
            .entry((inst.machine, leaf))
            .or_default()
            .absorb(inst);
        cube.by_process
            .entry(inst.process)
            .or_default()
            .absorb(inst);
        cube.total.absorb(inst);
    }
    cube
}

impl TypeCube {
    /// Leaf categories of one top category sorted by bytes moved — the
    /// drill-down step of the §4 example.
    pub fn drill_down(&self, top: TopCategory) -> Vec<(LeafCategory, Measures)> {
        let mut rows: Vec<(LeafCategory, Measures)> = self
            .by_leaf
            .iter()
            .filter(|(l, _)| l.top() == top)
            .map(|(l, m)| (*l, *m))
            .collect();
        rows.sort_by_key(|(_, m)| std::cmp::Reverse(m.bytes()));
        rows
    }

    /// Extensions within a leaf category, sorted by opens.
    pub fn extensions_of(&self, leaf: LeafCategory) -> Vec<(&str, Measures)> {
        let mut rows: Vec<(&str, Measures)> = self
            .by_extension
            .iter()
            .filter(|(e, _)| LeafCategory::of_extension(Some(e.as_str())) == leaf)
            .map(|(e, m)| (e.as_str(), *m))
            .collect();
        rows.sort_by_key(|(_, m)| std::cmp::Reverse(m.opens));
        rows
    }

    /// Cross-check: the top-level roll-up conserves the grand total.
    pub fn consistent(&self) -> bool {
        let opens: u64 = self.by_top.values().map(|m| m.opens).sum();
        let bytes: u64 = self.by_top.values().map(|m| m.bytes()).sum();
        opens == self.total.opens && bytes == self.total.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn hierarchy_rolls_up_the_worked_example() {
        // §4: .mbx → mail files → application files.
        let leaf = LeafCategory::of_extension(Some("mbx"));
        assert_eq!(leaf, LeafCategory::MailFiles);
        assert_eq!(leaf.top(), TopCategory::ApplicationFiles);
        assert_eq!(
            LeafCategory::of_extension(Some("dll")).top(),
            TopCategory::SystemFiles
        );
        assert_eq!(LeafCategory::of_extension(None), LeafCategory::Unknown);
    }

    #[test]
    fn cube_is_consistent_across_levels() {
        let ts = synthetic_trace_set(500, 91);
        let cube = type_cube(&ts);
        assert!(cube.consistent(), "roll-up conserves totals");
        assert_eq!(cube.total.opens as usize, ts.instances.len());
        // Leaf level also conserves.
        let leaf_opens: u64 = cube.by_leaf.values().map(|m| m.opens).sum();
        assert_eq!(leaf_opens, cube.total.opens);
        // Per-machine slices conserve.
        let slice_opens: u64 = cube.by_machine_leaf.values().map(|m| m.opens).sum();
        assert_eq!(slice_opens, cube.total.opens);
    }

    #[test]
    fn drill_down_orders_by_bytes() {
        let ts = synthetic_trace_set(500, 92);
        let cube = type_cube(&ts);
        for top in [
            TopCategory::SystemFiles,
            TopCategory::UserFiles,
            TopCategory::TransientFiles,
        ] {
            let rows = cube.drill_down(top);
            for w in rows.windows(2) {
                assert!(w[0].1.bytes() >= w[1].1.bytes());
            }
        }
    }

    #[test]
    fn process_dimension_populated() {
        let ts = synthetic_trace_set(400, 93);
        let cube = type_cube(&ts);
        assert!(cube.by_process.len() >= 2, "several processes traced");
        let p_opens: u64 = cube.by_process.values().map(|m| m.opens).sum();
        assert_eq!(p_opens, cube.total.opens);
    }

    #[test]
    fn measures_mean_duration() {
        let m = Measures {
            duration_ticks: 200_000,
            duration_samples: 2,
            ..Measures::default()
        };
        assert!((m.mean_duration_ms() - 10.0).abs() < 1e-12);
        assert_eq!(Measures::default().mean_duration_ms(), 0.0);
    }
}
