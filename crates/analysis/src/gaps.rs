//! Trace-gap detection and lossy-window bookkeeping.
//!
//! A trace collected under faults (§3: suspended agents, collector
//! downtime) has holes: spans of virtual time in which a machine's
//! requests were issued but never recorded. Arrival and burstiness
//! statistics computed naively over such a trace are corrupted — a
//! suspension reads as one giant inter-arrival gap and a run of empty
//! bins. [`LossWindows`] names the holes, either from the fault schedule
//! that produced them or detected after the fact ([`detect_gaps`]), and
//! the degraded analysis entry points
//! ([`crate::arrivals::open_arrivals_excluding`],
//! [`crate::burstiness::burstiness_excluding`]) excise them instead of
//! averaging over them.

use std::collections::HashMap;

use nt_trace::TickWindow;

use crate::schema::TraceSet;

/// Per-machine windows of virtual time known (or suspected) to be lossy.
#[derive(Clone, Debug, Default)]
pub struct LossWindows {
    by_machine: HashMap<u32, Vec<TickWindow>>,
}

impl LossWindows {
    /// No lossy windows: the clean-trace case.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a window of one machine's stream as lossy. Empty windows are
    /// ignored.
    pub fn add(&mut self, machine: u32, window: TickWindow) {
        if window.duration_ticks() > 0 {
            let ws = self.by_machine.entry(machine).or_default();
            ws.push(window);
            ws.sort_by_key(|w| w.start_ticks);
        }
    }

    /// The lossy windows of one machine, sorted by start.
    pub fn for_machine(&self, machine: u32) -> &[TickWindow] {
        self.by_machine.get(&machine).map_or(&[], Vec::as_slice)
    }

    /// True when no window is registered anywhere.
    pub fn is_empty(&self) -> bool {
        self.by_machine.values().all(Vec::is_empty)
    }

    /// Every window across machines, sorted by start (fleet-wide
    /// analyses treat any machine's hole as suspect).
    pub fn flattened(&self) -> Vec<TickWindow> {
        let mut all: Vec<TickWindow> = self.by_machine.values().flatten().copied().collect();
        all.sort_by_key(|w| w.start_ticks);
        all
    }

    /// Total lossy virtual time across machines, in ticks.
    pub fn total_lossy_ticks(&self) -> u64 {
        self.by_machine
            .values()
            .flatten()
            .map(|w| w.duration_ticks())
            .sum()
    }

    /// True when the span `[lo, hi]` of `machine`'s stream touches a
    /// lossy window.
    pub fn span_is_lossy(&self, machine: u32, lo: u64, hi: u64) -> bool {
        self.for_machine(machine).iter().any(|w| w.overlaps(lo, hi))
    }
}

/// Detects suspicious holes in a collected trace: for each machine, any
/// silence of at least `min_gap_ticks` between consecutive records
/// becomes a lossy window. A clean but idle machine can produce false
/// positives — the threshold trades those against missed outages, and
/// callers that know the real fault schedule should prefer it over
/// detection.
pub fn detect_gaps(ts: &TraceSet, min_gap_ticks: u64) -> LossWindows {
    let min_gap_ticks = min_gap_ticks.max(1);
    let mut by_machine: HashMap<u32, Vec<u64>> = HashMap::new();
    // Columnar scan: only the machine and start-tick columns.
    for (&m, &t) in ts.records.machines().iter().zip(ts.records.start_ticks()) {
        by_machine.entry(m).or_default().push(t);
    }
    let mut out = LossWindows::new();
    for (m, mut ticks) in by_machine {
        ticks.sort_unstable();
        for w in ticks.windows(2) {
            if w[1] - w[0] >= min_gap_ticks {
                // The hole starts after the last seen record and ends
                // when recording demonstrably resumed.
                out.add(m, TickWindow::new(w[0] + 1, w[1]));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn empty_windows_report_clean() {
        let lw = LossWindows::new();
        assert!(lw.is_empty());
        assert!(lw.for_machine(0).is_empty());
        assert!(!lw.span_is_lossy(0, 0, u64::MAX));
        assert_eq!(lw.total_lossy_ticks(), 0);
    }

    #[test]
    fn windows_accumulate_per_machine() {
        let mut lw = LossWindows::new();
        lw.add(1, TickWindow::new(500, 900));
        lw.add(1, TickWindow::new(100, 200));
        lw.add(2, TickWindow::new(0, 50));
        lw.add(2, TickWindow::new(10, 10)); // empty: ignored
        assert_eq!(lw.for_machine(1).len(), 2);
        assert_eq!(lw.for_machine(1)[0].start_ticks, 100, "sorted by start");
        assert_eq!(lw.for_machine(2).len(), 1);
        assert_eq!(lw.total_lossy_ticks(), 400 + 100 + 50);
        assert!(lw.span_is_lossy(1, 150, 160));
        assert!(!lw.span_is_lossy(1, 250, 400));
        assert!(!lw.span_is_lossy(3, 0, u64::MAX));
        assert_eq!(lw.flattened().len(), 3);
    }

    #[test]
    fn gap_detection_finds_a_planted_hole() {
        let ts = synthetic_trace_set(400, 9);
        // With an absurd threshold, nothing is a gap.
        assert!(detect_gaps(&ts, u64::MAX).is_empty());
        // Find the largest real silence on some machine, then set the
        // threshold just below it: exactly that hole must be detected.
        let mut by_machine: HashMap<u32, Vec<u64>> = HashMap::new();
        for (m, r) in ts.records.iter() {
            by_machine.entry(m).or_default().push(r.start_ticks);
        }
        let (machine, largest) = by_machine
            .iter_mut()
            .map(|(m, ticks)| {
                ticks.sort_unstable();
                let g = ticks.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
                (*m, g)
            })
            .max_by_key(|(_, g)| *g)
            .expect("records exist");
        assert!(largest > 0);
        let lw = detect_gaps(&ts, largest);
        assert!(!lw.is_empty());
        assert!(lw
            .for_machine(machine)
            .iter()
            .any(|w| w.duration_ticks() + 1 == largest));
    }
}
