//! Access-pattern classification — table 3.
//!
//! Rows: read-only / write-only / read-write usage. Columns: whole-file /
//! other-sequential / random transfer. Cells report the percentage of
//! accesses and of bytes, with per-machine min/max ranges — the ranges
//! being, per §7, the truly important numbers.

use std::collections::HashMap;

use crate::schema::{TraceSet, TransferPattern, UsageClass};

/// One table-3 cell: mean percentage plus the per-machine range.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cell {
    /// Percentage over all machines pooled.
    pub mean: f64,
    /// Minimum per-machine percentage.
    pub min: f64,
    /// Maximum per-machine percentage.
    pub max: f64,
}

/// One row of table 3 (a usage class).
#[derive(Clone, Copy, Debug, Default)]
pub struct Row {
    /// Share of data sessions in this class (accesses %).
    pub share_accesses: Cell,
    /// Share of transferred bytes in this class.
    pub share_bytes: Cell,
    /// Whole-file transfers within the class, by accesses.
    pub whole_accesses: Cell,
    /// Other-sequential, by accesses.
    pub seq_accesses: Cell,
    /// Random, by accesses.
    pub random_accesses: Cell,
    /// Whole-file, by bytes.
    pub whole_bytes: Cell,
    /// Other-sequential, by bytes.
    pub seq_bytes: Cell,
    /// Random, by bytes.
    pub random_bytes: Cell,
}

/// The full table.
#[derive(Clone, Copy, Debug, Default)]
pub struct AccessPatternTable {
    /// Read-only row.
    pub read_only: Row,
    /// Write-only row.
    pub write_only: Row,
    /// Read-write row.
    pub read_write: Row,
}

#[derive(Default, Clone, Copy)]
struct Tally {
    // [class][pattern] → (sessions, bytes)
    counts: [[u64; 3]; 3],
    bytes: [[u64; 3]; 3],
}

fn class_idx(c: UsageClass) -> usize {
    match c {
        UsageClass::ReadOnly => 0,
        UsageClass::WriteOnly => 1,
        UsageClass::ReadWrite => 2,
    }
}

fn pattern_idx(p: TransferPattern) -> usize {
    match p {
        TransferPattern::WholeFile => 0,
        TransferPattern::OtherSequential => 1,
        TransferPattern::Random => 2,
    }
}

impl Tally {
    fn class_sessions(&self, c: usize) -> u64 {
        self.counts[c].iter().sum()
    }

    fn class_bytes(&self, c: usize) -> u64 {
        self.bytes[c].iter().sum()
    }

    fn total_sessions(&self) -> u64 {
        (0..3).map(|c| self.class_sessions(c)).sum()
    }

    fn total_bytes(&self) -> u64 {
        (0..3).map(|c| self.class_bytes(c)).sum()
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Computes table 3 from the instance table.
pub fn access_patterns(ts: &TraceSet) -> AccessPatternTable {
    let mut pooled = Tally::default();
    let mut per_machine: HashMap<u32, Tally> = HashMap::new();
    for inst in &ts.instances {
        let (Some(class), Some(pattern)) = (inst.usage_class(), inst.transfer_pattern()) else {
            continue;
        };
        let (c, p) = (class_idx(class), pattern_idx(pattern));
        for tally in [&mut pooled, per_machine.entry(inst.machine).or_default()] {
            tally.counts[c][p] += 1;
            tally.bytes[c][p] += inst.bytes();
        }
    }
    let machines: Vec<&Tally> = per_machine.values().collect();
    let cell = |f: &dyn Fn(&Tally) -> f64| {
        let mean = f(&pooled);
        let vals: Vec<f64> = machines.iter().map(|t| f(t)).collect();
        Cell {
            mean,
            min: vals.iter().copied().fold(f64::INFINITY, f64::min).min(mean),
            max: vals.iter().copied().fold(0.0, f64::max).max(mean),
        }
    };
    let row = |c: usize| Row {
        share_accesses: cell(&|t| pct(t.class_sessions(c), t.total_sessions())),
        share_bytes: cell(&|t| pct(t.class_bytes(c), t.total_bytes())),
        whole_accesses: cell(&|t| pct(t.counts[c][0], t.class_sessions(c))),
        seq_accesses: cell(&|t| pct(t.counts[c][1], t.class_sessions(c))),
        random_accesses: cell(&|t| pct(t.counts[c][2], t.class_sessions(c))),
        whole_bytes: cell(&|t| pct(t.bytes[c][0], t.class_bytes(c))),
        seq_bytes: cell(&|t| pct(t.bytes[c][1], t.class_bytes(c))),
        random_bytes: cell(&|t| pct(t.bytes[c][2], t.class_bytes(c))),
    };
    AccessPatternTable {
        read_only: row(0),
        write_only: row(1),
        read_write: row(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn shares_sum_to_100() {
        let ts = synthetic_trace_set(600, 41);
        let t = access_patterns(&ts);
        let total = t.read_only.share_accesses.mean
            + t.write_only.share_accesses.mean
            + t.read_write.share_accesses.mean;
        assert!((total - 100.0).abs() < 1e-6, "got {total}");
        let per_class = t.read_only.whole_accesses.mean
            + t.read_only.seq_accesses.mean
            + t.read_only.random_accesses.mean;
        assert!((per_class - 100.0).abs() < 1e-6, "row sums: {per_class}");
    }

    #[test]
    fn read_only_dominates_and_is_mostly_sequential() {
        let ts = synthetic_trace_set(800, 42);
        let t = access_patterns(&ts);
        assert!(
            t.read_only.share_accesses.mean > t.read_write.share_accesses.mean,
            "read-only sessions dominate"
        );
        assert!(
            t.read_only.whole_accesses.mean + t.read_only.seq_accesses.mean > 50.0,
            "sequential access dominates reads"
        );
    }

    #[test]
    fn read_write_skews_random() {
        let ts = synthetic_trace_set(800, 43);
        let t = access_patterns(&ts);
        assert!(
            t.read_write.random_accesses.mean > t.read_only.random_accesses.mean,
            "table 3: R/W sessions are the random ones"
        );
    }

    #[test]
    fn ranges_bracket_means() {
        let ts = synthetic_trace_set(600, 44);
        let t = access_patterns(&ts);
        for row in [t.read_only, t.write_only, t.read_write] {
            assert!(row.share_accesses.min <= row.share_accesses.mean + 1e-9);
            assert!(row.share_accesses.max >= row.share_accesses.mean - 1e-9);
        }
    }
}
