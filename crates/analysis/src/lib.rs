//! The analysis pipeline of the NT 4.0 usage study (§4–§10 of the paper).
//!
//! The study poured 190 million trace records into a star-schema data
//! warehouse with two fact tables — the raw **trace** table and the
//! per-open **instance** table — and drove every figure and table from
//! them. This crate is that pipeline:
//!
//! * [`schema`] — builds the fact tables from collected trace records.
//! * [`stats`] / [`cdf`] — descriptive statistics and empirical CDFs
//!   (every figure in the paper is a CDF or a distribution plot).
//! * [`activity`] — table 2's user-activity intervals, with the BSD and
//!   Sprite baselines for comparison.
//! * [`patterns`] — table 3's access-pattern classification.
//! * [`runs`] — figures 1–2, sequential run lengths.
//! * [`sizes`] — figures 3–4, file-size distributions by opens and bytes.
//! * [`sessions`] — figures 5 and 12, open durations.
//! * [`lifetimes`] — figures 6–7, the die-young new files.
//! * [`arrivals`] — figure 11, open inter-arrival times.
//! * [`burstiness`] — figure 8, arrivals at three time scales vs Poisson.
//! * [`gaps`] — lossy-window bookkeeping for traces collected under
//!   faults; arrivals/burstiness exclude the holes instead of averaging
//!   over them.
//! * [`tails`] — figures 9–10, QQ plots, LLCD slope and Hill estimator.
//! * [`latency`] — figures 13–14, latency/size by request class.
//! * [`ops`] — §8's operational characteristics.
//! * [`sketch`] — bounded-memory histogram sketches and spill-to-disk
//!   sorted runs for the streaming pipeline.
//! * [`stream`] — per-machine streaming sinks that ingest shipments as
//!   they arrive and maintain the aggregates online, so paper-scale
//!   studies never materialize the record stream.
//! * [`paging`] — §9.2's paging-I/O burst analysis.
//! * [`content`] — §5's file-system content analysis over snapshots.
//! * [`dfg`] — directly-follows graphs over per-file event sequences;
//!   doubles as the warehouse's structural conformance check.
//! * [`dimensions`] — §4's dimension tables and drill-down cubes.
//! * [`processes`] — §7's per-process activity characteristics.
//! * [`profile`] — benchmark-configuration fitting (the §1 goal of
//!   feeding realistic file-system benchmarks).
//! * [`whatif`] — differential fact tables and §9-style delta summaries
//!   for the what-if replay studies in `nt-study`.

pub mod activity;
pub mod arrivals;
pub mod burstiness;
pub mod cdf;
pub mod content;
pub mod dfg;
pub mod dimensions;
pub mod facts;
pub mod gaps;
pub mod latency;
pub mod lifetimes;
pub mod ops;
pub mod paging;
pub mod patterns;
pub mod processes;
pub mod profile;
pub mod runs;
pub mod schema;
pub mod sessions;
pub mod sizes;
pub mod sketch;
pub mod stats;
pub mod stream;
pub mod tails;
pub mod whatif;

pub use cdf::Cdf;
pub use facts::FactTable;
pub use schema::{Instance, InstanceBuilder, TraceSet, UsageClass};
pub use sketch::{HistogramSketch, SpillRuns};
pub use stats::{correlation, describe, Descriptives};
pub use stream::{AnalysisSet, MachineSink, ShardSummary, StreamConfig, StudySummary};
pub use whatif::{DeltaSummary, DifferentialTable, FactsDelta, ReplayFacts};
