//! Differential fact tables for what-if replay studies.
//!
//! The paper's closing ambition (§1, §9) was a trace collection "that
//! could be used as input for file system simulation studies". A what-if
//! study replays one trace under a matrix of policy variants; this
//! module holds the *answers*: the per-machine replay fact rows each
//! variant produced, the signed per-machine differences against the
//! baseline variant, and the §9-style summary a person actually reads —
//! cache hit ratio, read-ahead efficiency and disk I/O counts, per
//! variant, as deltas against the baseline.
//!
//! Everything here is plain counters with `PartialEq`: the what-if
//! engine's determinism contract ("same seed + same segments →
//! bit-identical differential tables regardless of worker count") is
//! pinned by comparing these values directly, so none of them may hold
//! anything schedule-dependent.

/// One machine's replay facts under one policy variant: what the
/// replayed stack did with that machine's slice of the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayFacts {
    /// The machine the row describes.
    pub machine: u32,
    /// Source trace records fed to this machine's replay.
    pub source_records: u64,
    /// Application-level requests replayed (opens + reads + writes).
    pub replayed_requests: u64,
    /// Records skipped (paging records, failed opens, unknown handles).
    pub skipped_records: u64,
    /// Control traffic passed through without touching the cache.
    pub control_records: u64,
    /// Copy-read hits in the replayed cache.
    pub read_hits: u64,
    /// Copy-read misses.
    pub read_misses: u64,
    /// Bytes returned to readers from the replayed cache.
    pub read_hit_bytes: u64,
    /// Reads served on the FastIO path.
    pub fastio_reads: u64,
    /// Reads on the IRP path.
    pub irp_reads: u64,
    /// Paging reads the replayed stack issued (demand + read-ahead).
    pub paging_reads: u64,
    /// Paging writes (lazy writer + write-through + flushes).
    pub paging_writes: u64,
    /// Bytes the replayed stack moved from disk on demand.
    pub demand_read_bytes: u64,
    /// Bytes prefetched by the replayed read-ahead.
    pub readahead_bytes: u64,
    /// Read-ahead paging reads issued.
    pub readahead_ios: u64,
    /// Ticks of simulated time the machine's replayed disk queues were
    /// busy past each request's arrival — the latency-model axis shows
    /// up here when the policy counters barely move.
    pub disk_busy_ticks: u64,
}

impl ReplayFacts {
    /// Accumulates another row into `self` (fleet roll-up; the machine
    /// id of `self` is preserved).
    pub fn absorb(&mut self, other: &ReplayFacts) {
        self.source_records += other.source_records;
        self.replayed_requests += other.replayed_requests;
        self.skipped_records += other.skipped_records;
        self.control_records += other.control_records;
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.read_hit_bytes += other.read_hit_bytes;
        self.fastio_reads += other.fastio_reads;
        self.irp_reads += other.irp_reads;
        self.paging_reads += other.paging_reads;
        self.paging_writes += other.paging_writes;
        self.demand_read_bytes += other.demand_read_bytes;
        self.readahead_bytes += other.readahead_bytes;
        self.readahead_ios += other.readahead_ios;
        self.disk_busy_ticks += other.disk_busy_ticks;
    }

    /// Sums rows into one fleet-total row (machine `u32::MAX`).
    pub fn fleet_total(rows: &[ReplayFacts]) -> ReplayFacts {
        let mut total = ReplayFacts {
            machine: u32::MAX,
            ..ReplayFacts::default()
        };
        for row in rows {
            total.absorb(row);
        }
        total
    }

    /// Replayed copy-read hit rate in [0, 1]; 0 with no reads.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.read_hits, self.read_hits + self.read_misses)
    }

    /// Read-ahead efficiency: cache-hit bytes delivered per byte the
    /// prefetcher pulled from disk. Values above 1 mean hits also came
    /// from write-back data or re-reads; 0 when read-ahead is off.
    pub fn readahead_efficiency(&self) -> f64 {
        if self.readahead_bytes == 0 {
            0.0
        } else {
            self.read_hit_bytes as f64 / self.readahead_bytes as f64
        }
    }

    /// Total disk I/Os the replayed stack issued.
    pub fn disk_ios(&self) -> u64 {
        self.paging_reads + self.paging_writes
    }

    /// Signed per-counter difference `self − baseline`. The two rows
    /// must describe the same machine.
    pub fn delta(&self, baseline: &ReplayFacts) -> FactsDelta {
        assert_eq!(
            self.machine, baseline.machine,
            "differencing rows of different machines"
        );
        let d = |a: u64, b: u64| a as i64 - b as i64;
        FactsDelta {
            machine: self.machine,
            replayed_requests: d(self.replayed_requests, baseline.replayed_requests),
            skipped_records: d(self.skipped_records, baseline.skipped_records),
            read_hits: d(self.read_hits, baseline.read_hits),
            read_misses: d(self.read_misses, baseline.read_misses),
            fastio_reads: d(self.fastio_reads, baseline.fastio_reads),
            irp_reads: d(self.irp_reads, baseline.irp_reads),
            paging_reads: d(self.paging_reads, baseline.paging_reads),
            paging_writes: d(self.paging_writes, baseline.paging_writes),
            demand_read_bytes: d(self.demand_read_bytes, baseline.demand_read_bytes),
            readahead_bytes: d(self.readahead_bytes, baseline.readahead_bytes),
            disk_busy_ticks: d(self.disk_busy_ticks, baseline.disk_busy_ticks),
        }
    }
}

/// One machine's signed counter movement, variant − baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FactsDelta {
    /// The machine the row describes (`u32::MAX` for the fleet total).
    pub machine: u32,
    /// Requests replayed (should be 0 between honest variants — a
    /// policy must not change what the trace *asked for*).
    pub replayed_requests: i64,
    /// Records skipped.
    pub skipped_records: i64,
    /// Copy-read hit movement.
    pub read_hits: i64,
    /// Copy-read miss movement.
    pub read_misses: i64,
    /// FastIO-path read movement.
    pub fastio_reads: i64,
    /// IRP-path read movement.
    pub irp_reads: i64,
    /// Paging-read movement.
    pub paging_reads: i64,
    /// Paging-write movement.
    pub paging_writes: i64,
    /// Demand disk-read byte movement.
    pub demand_read_bytes: i64,
    /// Prefetched byte movement.
    pub readahead_bytes: i64,
    /// Disk-queue busy-tick movement.
    pub disk_busy_ticks: i64,
}

/// The per-variant differential fact table: one [`FactsDelta`] row per
/// machine (ascending), variant − baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DifferentialTable {
    /// The variant's name.
    pub variant: String,
    /// Per-machine rows, ascending by machine id.
    pub rows: Vec<FactsDelta>,
}

impl DifferentialTable {
    /// Builds the table from per-machine rows of a variant and the
    /// baseline. Both slices must be machine-aligned (the engine's
    /// invariant: same source, same ascending machine order).
    pub fn build(variant: &str, rows: &[ReplayFacts], baseline: &[ReplayFacts]) -> Self {
        assert_eq!(rows.len(), baseline.len(), "machine sets differ");
        DifferentialTable {
            variant: variant.to_string(),
            rows: rows.iter().zip(baseline).map(|(v, b)| v.delta(b)).collect(),
        }
    }

    /// Sums the per-machine rows into one fleet row.
    pub fn fleet_row(&self) -> FactsDelta {
        let mut total = FactsDelta {
            machine: u32::MAX,
            ..FactsDelta::default()
        };
        for r in &self.rows {
            total.replayed_requests += r.replayed_requests;
            total.skipped_records += r.skipped_records;
            total.read_hits += r.read_hits;
            total.read_misses += r.read_misses;
            total.fastio_reads += r.fastio_reads;
            total.irp_reads += r.irp_reads;
            total.paging_reads += r.paging_reads;
            total.paging_writes += r.paging_writes;
            total.demand_read_bytes += r.demand_read_bytes;
            total.readahead_bytes += r.readahead_bytes;
            total.disk_busy_ticks += r.disk_busy_ticks;
        }
        total
    }
}

/// The §9-style per-variant summary a person reads: the three families
/// the paper's simulation-study motivation names — cache hit ratio,
/// read-ahead efficiency, disk I/O — per variant, against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaSummary {
    /// The variant's name.
    pub variant: String,
    /// Fleet copy-read hit rate under this variant.
    pub hit_rate: f64,
    /// `hit_rate` − baseline hit rate.
    pub hit_rate_delta: f64,
    /// Fleet read-ahead efficiency under this variant.
    pub readahead_efficiency: f64,
    /// `readahead_efficiency` − baseline.
    pub readahead_efficiency_delta: f64,
    /// Disk I/Os issued (paging reads + writes).
    pub disk_ios: u64,
    /// `disk_ios` − baseline, signed.
    pub disk_ios_delta: i64,
    /// Paging reads issued.
    pub disk_reads: u64,
    /// Paging writes issued.
    pub disk_writes: u64,
    /// Demand + prefetch bytes read from disk.
    pub disk_read_bytes: u64,
    /// `disk_read_bytes` − baseline, signed.
    pub disk_read_bytes_delta: i64,
}

impl DeltaSummary {
    /// Summarizes one variant's fleet totals against the baseline's.
    pub fn compute(variant: &str, total: &ReplayFacts, baseline: &ReplayFacts) -> Self {
        let read_bytes = |f: &ReplayFacts| f.demand_read_bytes + f.readahead_bytes;
        DeltaSummary {
            variant: variant.to_string(),
            hit_rate: total.hit_rate(),
            hit_rate_delta: total.hit_rate() - baseline.hit_rate(),
            readahead_efficiency: total.readahead_efficiency(),
            readahead_efficiency_delta: total.readahead_efficiency()
                - baseline.readahead_efficiency(),
            disk_ios: total.disk_ios(),
            disk_ios_delta: total.disk_ios() as i64 - baseline.disk_ios() as i64,
            disk_reads: total.paging_reads,
            disk_writes: total.paging_writes,
            disk_read_bytes: read_bytes(total),
            disk_read_bytes_delta: read_bytes(total) as i64 - read_bytes(baseline) as i64,
        }
    }
}

/// Renders delta summaries as the fixed-width table the examples print:
/// one row per variant, baseline first, deltas signed.
pub fn render_delta_table(baseline_name: &str, summaries: &[DeltaSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9} {:>12}\n",
        "variant (vs ".to_string() + baseline_name + ")",
        "hit%",
        "Δhit%",
        "ra-eff",
        "Δra-eff",
        "disk-ios",
        "Δios",
        "Δread-MB"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<24} {:>8.2} {:>+8.2} {:>8.3} {:>+8.3} {:>10} {:>+9} {:>+12.2}\n",
            s.variant,
            s.hit_rate * 100.0,
            s.hit_rate_delta * 100.0,
            s.readahead_efficiency,
            s.readahead_efficiency_delta,
            s.disk_ios,
            s.disk_ios_delta,
            s.disk_read_bytes_delta as f64 / (1 << 20) as f64,
        ));
    }
    out
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(machine: u32, hits: u64, misses: u64) -> ReplayFacts {
        ReplayFacts {
            machine,
            source_records: hits + misses,
            replayed_requests: hits + misses,
            read_hits: hits,
            read_misses: misses,
            read_hit_bytes: hits * 4096,
            paging_reads: misses,
            paging_writes: misses / 2,
            demand_read_bytes: misses * 4096,
            readahead_bytes: misses * 8192,
            readahead_ios: misses / 4,
            ..ReplayFacts::default()
        }
    }

    #[test]
    fn fleet_total_sums_rows() {
        let rows = [row(0, 10, 2), row(1, 20, 8)];
        let total = ReplayFacts::fleet_total(&rows);
        assert_eq!(total.machine, u32::MAX);
        assert_eq!(total.read_hits, 30);
        assert_eq!(total.read_misses, 10);
        assert!((total.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn differential_table_is_signed_and_machine_aligned() {
        let base = [row(0, 10, 10), row(1, 10, 10)];
        let variant = [row(0, 15, 5), row(1, 5, 15)];
        let table = DifferentialTable::build("boosted", &variant, &base);
        assert_eq!(table.rows[0].read_hits, 5);
        assert_eq!(table.rows[1].read_hits, -5);
        let fleet = table.fleet_row();
        assert_eq!(fleet.read_hits, 0);
        assert_eq!(fleet.machine, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "different machines")]
    fn delta_refuses_mismatched_machines() {
        let _ = row(0, 1, 1).delta(&row(1, 1, 1));
    }

    #[test]
    fn summary_deltas_are_zero_against_self() {
        let total = ReplayFacts::fleet_total(&[row(0, 10, 2)]);
        let s = DeltaSummary::compute("baseline", &total, &total);
        assert_eq!(s.hit_rate_delta, 0.0);
        assert_eq!(s.disk_ios_delta, 0);
        assert_eq!(s.disk_read_bytes_delta, 0);
        assert!(s.hit_rate > 0.0);
    }

    #[test]
    fn render_includes_every_variant_row() {
        let base = ReplayFacts::fleet_total(&[row(0, 10, 2)]);
        let other = ReplayFacts::fleet_total(&[row(0, 6, 6)]);
        let table = render_delta_table(
            "baseline",
            &[
                DeltaSummary::compute("baseline", &base, &base),
                DeltaSummary::compute("no-readahead", &other, &base),
            ],
        );
        assert!(table.contains("no-readahead"));
        assert!(table.lines().count() == 3);
    }
}
