//! Bounded-memory aggregation primitives for the streaming pipeline.
//!
//! The paper's own pipeline poured ~190 million records into a data
//! warehouse; reproducing that scale in-process means the per-machine
//! sinks cannot hold raw samples. Two primitives carry the load:
//!
//! * [`HistogramSketch`] — a deterministic log-bucketed histogram giving
//!   CDF quantiles with a fixed relative error (one bucket per 1/16th of
//!   an octave, ≈ 4.4 %), mergeable across machines in any order.
//! * [`SpillRuns`] — a bounded sample buffer that spills sorted runs to a
//!   directory and streams them back in one k-way merged ascending pass,
//!   for the tail analyses (Hill/LLCD) that need order statistics.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

/// Sub-buckets per octave: bucket width is `2^(1/16)`, so any reported
/// quantile is within ≈ 4.4 % of the exact sample value.
const SUB: f64 = 16.0;
/// Bucket indices are clamped to ±[`CLAMP`], covering 2^-128 .. 2^128.
const CLAMP: i32 = 128 * 16;

/// A deterministic log-bucketed histogram over non-negative `f64` values.
///
/// Values ≤ 0 (and non-finite values) land in a dedicated zero bucket.
/// Merging is element-wise addition, so any merge order produces the same
/// sketch. Weights are integer counts — figure-4-style byte-weighted
/// CDFs record each size with its transferred bytes as the weight.
///
/// Every piece of state is integer (the weighted sum is fixed-point, in
/// units of `1 / SUM_FP_SCALE`) except `min`/`max`, whose lattice is
/// exactly associative — so merging sketches is associative and
/// commutative bit for bit, not just up to floating-point reassociation.
/// The sharded fleet leans on this: any shard partition of the machine
/// set must reduce to the same fleet sketch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSketch {
    buckets: BTreeMap<i32, u64>,
    zero_weight: u64,
    count: u64,
    total_weight: u64,
    /// Weighted sum in fixed point: units of 2^-16. An `i128` holds
    /// ~5e33 in value terms, far past any fleet-scale byte total, and
    /// integer addition keeps hierarchical merges exact.
    sum_fp: i128,
    min: f64,
    max: f64,
}

/// Fixed-point scale for [`HistogramSketch::sum`]: 2^16 sub-unit steps,
/// ≈ 1.5e-5 absolute resolution per recorded sample.
const SUM_FP_SCALE: f64 = 65536.0;

/// Log bucket for a positive finite value; `None` for anything without a
/// logarithm (NaN, infinities, zero, negatives).
///
/// Total over all of `f64` on purpose: the old `i32` version relied on
/// `NaN as i32 == 0`, silently filing NaN into bucket 0 — the bucket for
/// real values in `[1, 2^(1/16))` — whenever a caller forgot its own
/// finiteness guard. Callers must route `None` to the zero bucket (or
/// treat it as "past every bucket" for +∞ CDF cuts).
fn bucket_of(v: f64) -> Option<i32> {
    if !v.is_finite() || v <= 0.0 {
        return None;
    }
    Some(((v.log2() * SUB).floor() as i32).clamp(-CLAMP, CLAMP))
}

/// Representative value of a bucket: the geometric midpoint.
fn bucket_value(idx: i32) -> f64 {
    ((idx as f64 + 0.5) / SUB).exp2()
}

impl HistogramSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        HistogramSketch {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..HistogramSketch::default()
        }
    }

    /// Records one sample with weight 1.
    pub fn record(&mut self, v: f64) {
        self.record_weighted(v, 1);
    }

    /// Records one sample with an integer weight; zero weights are
    /// ignored, non-finite values fall into the zero bucket.
    pub fn record_weighted(&mut self, v: f64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.count += 1;
        self.total_weight += weight;
        if v.is_finite() {
            let contribution = v * weight as f64 * SUM_FP_SCALE;
            // Saturate instead of wrapping on absurd inputs; `as i128`
            // already saturates for out-of-range floats.
            self.sum_fp = self.sum_fp.saturating_add(contribution.round() as i128);
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        match bucket_of(v) {
            Some(idx) => *self.buckets.entry(idx).or_default() += weight,
            None => self.zero_weight += weight,
        }
    }

    /// Number of recorded samples (unweighted).
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value; `None` on an empty sketch.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0 && self.min.is_finite()).then_some(self.min)
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0 && self.max.is_finite()).then_some(self.max)
    }

    /// Weighted arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        (self.total_weight > 0).then(|| self.sum() / self.total_weight as f64)
    }

    /// Weighted sum of recorded values (fixed-point, 2^-16 resolution).
    pub fn sum(&self) -> f64 {
        self.sum_fp as f64 / SUM_FP_SCALE
    }

    /// The `q`-quantile (bucket representative, within the relative error
    /// bound); `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total_weight == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total_weight as f64;
        let mut acc = self.zero_weight as f64;
        if acc >= target && self.zero_weight > 0 {
            return Some(0.0);
        }
        let mut last = 0.0;
        for (&idx, &w) in &self.buckets {
            acc += w as f64;
            last = bucket_value(idx).clamp(self.min, self.max);
            if acc >= target {
                return Some(last);
            }
        }
        Some(if self.buckets.is_empty() { 0.0 } else { last })
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Approximate `P[X <= x]`, in [0, 1].
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        if x.is_nan() {
            return 0.0;
        }
        let mut acc = if x >= 0.0 { self.zero_weight } else { 0 };
        match bucket_of(x) {
            Some(cut) => acc += self.buckets.range(..=cut).map(|(_, &w)| w).sum::<u64>(),
            // `x` positive but unbucketable means +∞: everything is below.
            None if x > 0.0 => acc += self.buckets.values().sum::<u64>(),
            None => {}
        }
        acc as f64 / self.total_weight as f64
    }

    /// Merges another sketch in; element-wise and order-independent.
    pub fn merge(&mut self, other: &HistogramSketch) {
        for (&idx, &w) in &other.buckets {
            *self.buckets.entry(idx).or_default() += w;
        }
        self.zero_weight += other.zero_weight;
        self.count += other.count;
        self.total_weight += other.total_weight;
        self.sum_fp = self.sum_fp.saturating_add(other.sum_fp);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bytes of live state, for the memory accounting the streaming study
    /// reports (`BTreeMap` node ≈ key + value + pointers).
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buckets.len() * 48
    }
}

/// A bounded sample buffer with spill-to-sorted-runs.
///
/// Samples accumulate in an in-memory buffer of `capacity` values; when a
/// spill directory is configured, full buffers are sorted and written as
/// binary little-endian `f64` run files, keeping resident memory at
/// `capacity × 8` bytes regardless of sample count. Without a spill
/// directory the buffer simply grows (the legacy in-memory behaviour).
/// [`SpillRuns::top_k`] streams a k-way merge of all runs to hand the tail
/// analyses their top order statistics in `O(k)` memory.
#[derive(Debug, Default)]
pub struct SpillRuns {
    capacity: usize,
    dir: Option<PathBuf>,
    tag: String,
    buffer: Vec<f64>,
    runs: Vec<PathBuf>,
    total: u64,
    next_run: u32,
    spill_failures: u64,
}

impl SpillRuns {
    /// A spill buffer holding at most `capacity` resident samples when
    /// `dir` is set; `tag` namespaces this buffer's run files within the
    /// directory (it must be unique per buffer).
    pub fn new(capacity: usize, dir: Option<PathBuf>, tag: impl Into<String>) -> Self {
        SpillRuns {
            capacity: capacity.max(16),
            dir,
            tag: tag.into(),
            buffer: Vec::new(),
            runs: Vec::new(),
            total: 0,
            next_run: 0,
            spill_failures: 0,
        }
    }

    /// Adds a sample; non-finite values are dropped.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.buffer.push(v);
        self.total += 1;
        if self.dir.is_some() && self.buffer.len() >= self.capacity {
            self.spill();
        }
    }

    /// Samples accepted so far.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no samples were accepted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sorted run files written so far.
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Spill attempts that failed and fell back to memory.
    pub fn spill_failures(&self) -> u64 {
        self.spill_failures
    }

    /// Samples currently resident in memory.
    pub fn resident(&self) -> usize {
        self.buffer.len()
    }

    /// Bytes of live state.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buffer.capacity() * 8
    }

    fn spill(&mut self) {
        let Some(dir) = self.dir.clone() else {
            return;
        };
        self.buffer
            .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let path = dir.join(format!("{}-run{:05}.f64", self.tag, self.next_run));
        match self.write_run(&path) {
            Ok(()) => {
                self.next_run += 1;
                self.runs.push(path);
                self.buffer.clear();
            }
            Err(_) => {
                // Best effort: keep the samples resident; the analysis
                // still works, only the memory bound degrades.
                self.spill_failures += 1;
            }
        }
    }

    fn write_run(&self, path: &PathBuf) -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        for v in &self.buffer {
            w.write_all(&v.to_le_bytes())?;
        }
        w.flush()
    }

    /// Absorbs another buffer's samples and run files (machine merge).
    pub fn absorb(&mut self, mut other: SpillRuns) {
        self.runs.append(&mut other.runs);
        self.total += other.total;
        self.spill_failures += other.spill_failures;
        self.buffer.append(&mut other.buffer);
        if self.dir.is_some() && self.buffer.len() >= self.capacity {
            self.spill();
        }
    }

    /// Streams every sample in ascending order through `f` (k-way merge
    /// of the sorted runs plus the resident buffer).
    pub fn for_each_sorted(&mut self, mut f: impl FnMut(f64)) {
        self.buffer
            .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let mut readers: Vec<RunReader> = self.runs.iter().filter_map(RunReader::open).collect();
        let mut heads: Vec<Option<f64>> = readers.iter_mut().map(|r| r.next()).collect();
        let mut buf_pos = 0usize;
        loop {
            // Pick the smallest head among run readers and the buffer.
            let mut best: Option<(usize, f64)> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(v) = h {
                    if best.is_none_or(|(_, bv)| *v < bv) {
                        best = Some((i, *v));
                    }
                }
            }
            let buf_head = self.buffer.get(buf_pos).copied();
            match (best, buf_head) {
                (Some((i, v)), Some(b)) if v <= b => {
                    f(v);
                    heads[i] = readers[i].next();
                }
                (_, Some(b)) => {
                    f(b);
                    buf_pos += 1;
                }
                (Some((i, v)), None) => {
                    f(v);
                    heads[i] = readers[i].next();
                }
                (None, None) => return,
            }
        }
    }

    /// The top `k` order statistics, ascending (`result[0]` is the
    /// `(n-k)`-th order statistic). Memory is `O(k)`.
    pub fn top_k(&mut self, k: usize) -> Vec<f64> {
        let mut ring: VecDeque<f64> = VecDeque::with_capacity(k + 1);
        self.for_each_sorted(|v| {
            ring.push_back(v);
            if ring.len() > k {
                ring.pop_front();
            }
        });
        ring.into_iter().collect()
    }
}

impl Drop for SpillRuns {
    fn drop(&mut self) {
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
    }
}

struct RunReader {
    reader: BufReader<File>,
}

impl RunReader {
    fn open(path: &PathBuf) -> Option<Self> {
        File::open(path).ok().map(|f| RunReader {
            reader: BufReader::new(f),
        })
    }

    fn next(&mut self) -> Option<f64> {
        let mut bytes = [0u8; 8];
        self.reader.read_exact(&mut bytes).ok()?;
        Some(f64::from_le_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nt-sketch-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn sketch_quantiles_track_exact_values() {
        let mut s = HistogramSketch::new();
        for i in 1..=10_000u64 {
            s.record(i as f64);
        }
        assert_eq!(s.len(), 10_000);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = q * 10_000.0;
            let est = s.quantile(q).unwrap();
            assert!(
                (est - exact).abs() / exact < 0.05,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(10_000.0));
        assert!((s.mean().unwrap() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn sketch_handles_zero_and_degenerate() {
        let mut s = HistogramSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        s.record(0.0);
        s.record(-3.0);
        s.record(f64::NAN);
        assert_eq!(s.quantile(0.9), Some(0.0));
        s.record(8.0);
        assert!(s.fraction_at_or_below(0.0) > 0.7);
        assert_eq!(s.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn bucket_of_rejects_unbucketable_inputs() {
        // Regression: the old `bucket_of` returned a plain i32 and relied
        // on Rust's saturating float→int cast, so `bucket_of(f64::NAN)`
        // was 0 — indistinguishable from a genuine sample in [1, 2^1/16).
        assert_eq!(bucket_of(f64::NAN), None);
        assert_eq!(bucket_of(f64::INFINITY), None);
        assert_eq!(bucket_of(f64::NEG_INFINITY), None);
        assert_eq!(bucket_of(0.0), None);
        assert_eq!(bucket_of(-0.0), None);
        assert_eq!(bucket_of(-1.5), None);
        // Positive finite values still bucket, with the documented clamp.
        assert_eq!(bucket_of(1.0), Some(0));
        assert_eq!(bucket_of(2.0), Some(16));
        assert_eq!(bucket_of(f64::MIN_POSITIVE), Some(-CLAMP));
        assert_eq!(bucket_of(f64::MAX), Some(CLAMP));
    }

    #[test]
    fn non_finite_inputs_never_reach_a_log_bucket() {
        let mut s = HistogramSketch::new();
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -2.0, 0.0] {
            s.record(v);
        }
        s.record(1.5); // the only real sample, in bucket 0
                       // Pre-fix, a leaked NaN would inflate bucket 0 and shift every
                       // quantile; post-fix the five junk samples all sit in the zero
                       // bucket and the CDF stays exact.
        assert!((s.fraction_at_or_below(0.0) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.fraction_at_or_below(1.5), 1.0);
        assert_eq!(s.fraction_at_or_below(f64::INFINITY), 1.0);
        assert_eq!(s.fraction_at_or_below(f64::NAN), 0.0);
        assert_eq!(s.fraction_at_or_below(f64::NEG_INFINITY), 0.0);
        assert_eq!(s.quantile(1.0), Some(1.5));
    }

    #[test]
    fn quantile_error_bound_holds_on_a_heavy_tail() {
        // Pins the documented worst case — one bucket per 1/16 octave, so
        // any reported quantile is within 2^(1/16) − 1 ≈ 4.4 % of the
        // exact sample quantile — against the exact CDF of a Pareto-like
        // sample spanning seven orders of magnitude.
        const BOUND: f64 = 0.0443; // 2^(1/16) − 1, the full bucket width
        let mut exact = Vec::new();
        let mut s = HistogramSketch::new();
        let mut u = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..50_000 {
            // xorshift64* uniform in (0,1), inverted through a Pareto
            // CDF with tail index 1.2 (file sizes, §5 shape).
            u ^= u >> 12;
            u ^= u << 25;
            u ^= u >> 27;
            let unif =
                ((u.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            let v = unif.powf(-1.0 / 1.2);
            exact.push(v);
            s.record(v);
        }
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len()) - 1;
            let truth = exact[rank];
            let est = s.quantile(q).unwrap();
            let rel = (est - truth).abs() / truth;
            assert!(
                rel <= BOUND,
                "q={q}: sketch {est} vs exact {truth} (rel err {rel:.4} > {BOUND})"
            );
        }
    }

    #[test]
    fn sketch_merge_is_order_independent() {
        let mut a = HistogramSketch::new();
        let mut b = HistogramSketch::new();
        let mut whole = HistogramSketch::new();
        for i in 0..2_000u64 {
            let v = ((i * 2_654_435_761) % 100_000) as f64 + 1.0;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for q in [0.25, 0.5, 0.75, 0.95] {
            assert_eq!(ab.quantile(q), ba.quantile(q));
            assert_eq!(ab.quantile(q), whole.quantile(q));
        }
        assert_eq!(ab.len(), whole.len());
        // Since every sample rounds to fixed point independently, the
        // whole sketch state — sum included — is bit-identical no matter
        // how the samples were partitioned or merged.
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
    }

    #[test]
    fn weighted_sum_is_exact_under_reassociation() {
        // f64 accumulation would make (a+b)+c != a+(b+c) for these
        // deliberately awkward values; fixed point keeps them equal.
        let values = [0.1, 1e9 + 0.3, 7.0001, 3.25, 1e-4, 1234.5678];
        let mut parts: Vec<HistogramSketch> = Vec::new();
        for &v in &values {
            let mut s = HistogramSketch::new();
            s.record_weighted(v, 3);
            parts.push(s);
        }
        let mut left = HistogramSketch::new();
        for p in &parts {
            left.merge(p);
        }
        let mut right = HistogramSketch::new();
        for p in parts.iter().rev() {
            right.merge(p);
        }
        assert_eq!(left, right);
        assert_eq!(left.sum(), right.sum());
        let exact: f64 = values.iter().map(|v| v * 3.0).sum();
        assert!((left.sum() - exact).abs() < 1e-3, "sum {}", left.sum());
    }

    #[test]
    fn spill_runs_keep_residency_bounded_and_sort_globally() {
        let dir = temp_dir("runs");
        let mut s = SpillRuns::new(64, Some(dir), "bounded");
        // Deterministic shuffle of 1..=1000.
        for i in 0..1_000u64 {
            s.push(((i * 7919) % 1_000) as f64 + 1.0);
        }
        assert_eq!(s.len(), 1_000);
        assert!(s.resident() <= 64, "resident {}", s.resident());
        assert!(s.spilled_runs() >= 14);
        assert_eq!(s.spill_failures(), 0);
        let mut out = Vec::new();
        s.for_each_sorted(|v| out.push(v));
        assert_eq!(out.len(), 1_000);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out[0], 1.0);
        assert_eq!(out[999], 1_000.0);
        let top = s.top_k(10);
        assert_eq!(top, (991..=1_000).map(|v| v as f64).collect::<Vec<_>>());
    }

    #[test]
    fn spill_runs_work_without_a_directory() {
        let mut s = SpillRuns::new(16, None, "mem");
        for i in (1..=100u64).rev() {
            s.push(i as f64);
        }
        assert_eq!(s.spilled_runs(), 0);
        assert_eq!(s.resident(), 100, "no dir: buffer grows");
        assert_eq!(s.top_k(3), vec![98.0, 99.0, 100.0]);
    }

    #[test]
    fn absorb_combines_buffers_and_runs() {
        let dir = temp_dir("absorb");
        let mut a = SpillRuns::new(32, Some(dir.clone()), "a");
        let mut b = SpillRuns::new(32, Some(dir), "b");
        for i in 0..100u64 {
            a.push(i as f64);
            b.push((i + 100) as f64);
        }
        a.absorb(b);
        assert_eq!(a.len(), 200);
        let mut n = 0u64;
        let mut last = f64::NEG_INFINITY;
        a.for_each_sorted(|v| {
            assert!(v >= last);
            last = v;
            n += 1;
        });
        assert_eq!(n, 200);
    }

    proptest! {
        #[test]
        fn sketch_quantile_error_is_bounded(xs in prop::collection::vec(1.0f64..1e9, 20..400)) {
            let mut xs = xs;
            let mut s = HistogramSketch::new();
            for &x in &xs {
                s.record(x);
            }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.1, 0.5, 0.9] {
                // The sample the sketch's crossing rule (`acc >= q*total`)
                // lands on.
                let target = q * xs.len() as f64;
                let idx = (0..xs.len())
                    .find(|i| (i + 1) as f64 >= target)
                    .unwrap_or(xs.len() - 1);
                let exact = xs[idx];
                let est = s.quantile(q).unwrap();
                // One bucket of slack either side of the exact sample.
                prop_assert!(est <= exact * 1.1 && est >= exact / 1.1,
                    "q={} est={} exact={}", q, est, exact);
            }
        }

        #[test]
        fn spill_preserves_every_sample(xs in prop::collection::vec(0.0f64..1e6, 0..300)) {
            let mut s = SpillRuns::new(16, None, "prop");
            for &x in &xs {
                s.push(x);
            }
            let mut out = Vec::new();
            s.for_each_sorted(|v| out.push(v));
            let mut expect = xs.clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(out, expect);
        }
    }
}
