//! Open-duration analysis — figures 5 and 12.
//!
//! Figure 5: the CDF of file open times for data sessions, split all /
//! local / network (the study found ~75 % under 10 ms and no meaningful
//! local-vs-remote difference). Figure 12: session lifetimes split all /
//! control-only / data.

use crate::cdf::Cdf;
use crate::schema::{Instance, TraceSet, UsageClass};
use crate::sketch::HistogramSketch;

/// Duration CDFs in milliseconds.
pub struct SessionDurations {
    /// All successful sessions.
    pub all: Cdf,
    /// Sessions that transferred data.
    pub data: Cdf,
    /// Control/directory-only sessions.
    pub control: Cdf,
    /// Data sessions on local volumes.
    pub data_local: Cdf,
    /// Data sessions on redirector volumes.
    pub data_network: Cdf,
    /// Read-only data sessions.
    pub read_only: Cdf,
    /// Write-only data sessions.
    pub write_only: Cdf,
    /// Read-write data sessions.
    pub read_write: Cdf,
}

fn dur_ms(i: &Instance) -> Option<f64> {
    i.duration_ticks().map(|t| t as f64 / 10_000.0)
}

/// Computes the duration CDFs from the instance table.
pub fn session_durations(ts: &TraceSet) -> SessionDurations {
    let ok: Vec<&Instance> = ts
        .instances
        .iter()
        .filter(|i| i.opened() && i.duration_ticks().is_some())
        .collect();
    let collect = |pred: &dyn Fn(&Instance) -> bool| {
        Cdf::from_samples(ok.iter().filter(|i| pred(i)).filter_map(|i| dur_ms(i)))
    };
    SessionDurations {
        all: collect(&|_| true),
        data: collect(&|i| i.is_data()),
        control: collect(&|i| !i.is_data()),
        data_local: collect(&|i| i.is_data() && i.local),
        data_network: collect(&|i| i.is_data() && !i.local),
        read_only: collect(&|i| i.usage_class() == Some(crate::schema::UsageClass::ReadOnly)),
        write_only: collect(&|i| i.usage_class() == Some(crate::schema::UsageClass::WriteOnly)),
        read_write: collect(&|i| i.usage_class() == Some(crate::schema::UsageClass::ReadWrite)),
    }
}

/// Streaming counterpart of [`session_durations`]: the figure-5/12
/// duration splits as sketches, maintained instance by instance.
#[derive(Debug, Default, PartialEq)]
pub struct SessionAccumulator {
    /// All successful sessions (ms).
    pub all: HistogramSketch,
    /// Data sessions.
    pub data: HistogramSketch,
    /// Control-only sessions.
    pub control: HistogramSketch,
    /// Data sessions on local volumes.
    pub data_local: HistogramSketch,
    /// Data sessions on redirector volumes.
    pub data_network: HistogramSketch,
    /// Read-only data sessions.
    pub read_only: HistogramSketch,
    /// Write-only data sessions.
    pub write_only: HistogramSketch,
    /// Read-write data sessions.
    pub read_write: HistogramSketch,
}

impl SessionAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        SessionAccumulator::default()
    }

    /// Feeds one finished instance.
    pub fn push_instance(&mut self, inst: &Instance) {
        if !inst.opened() {
            return;
        }
        let Some(ms) = dur_ms(inst) else {
            return;
        };
        self.all.record(ms);
        if inst.is_data() {
            self.data.record(ms);
            if inst.local {
                self.data_local.record(ms);
            } else {
                self.data_network.record(ms);
            }
        } else {
            self.control.record(ms);
        }
        match inst.usage_class() {
            Some(UsageClass::ReadOnly) => self.read_only.record(ms),
            Some(UsageClass::WriteOnly) => self.write_only.record(ms),
            Some(UsageClass::ReadWrite) => self.read_write.record(ms),
            None => {}
        }
    }

    /// Merges another machine's accumulator in.
    pub fn merge(&mut self, other: &SessionAccumulator) {
        self.all.merge(&other.all);
        self.data.merge(&other.data);
        self.control.merge(&other.control);
        self.data_local.merge(&other.data_local);
        self.data_network.merge(&other.data_network);
        self.read_only.merge(&other.read_only);
        self.write_only.merge(&other.write_only);
        self.read_write.merge(&other.read_write);
    }

    /// Bytes of live sketch state.
    pub fn state_bytes(&self) -> usize {
        [
            &self.all,
            &self.data,
            &self.control,
            &self.data_local,
            &self.data_network,
            &self.read_only,
            &self.write_only,
            &self.read_write,
        ]
        .iter()
        .map(|s| s.state_bytes())
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn streaming_splits_match_batch_counts() {
        let ts = synthetic_trace_set(250, 9);
        let batch = session_durations(&ts);
        let mut acc = SessionAccumulator::new();
        for inst in &ts.instances {
            acc.push_instance(inst);
        }
        assert_eq!(acc.all.len(), batch.all.len() as u64);
        assert_eq!(acc.data.len(), batch.data.len() as u64);
        assert_eq!(acc.control.len(), batch.control.len() as u64);
        assert_eq!(acc.data_local.len(), batch.data_local.len() as u64);
        if let (Some(exact), Some(est)) = (batch.all.median(), acc.all.median()) {
            assert!(
                (est - exact).abs() <= exact.max(0.01) * 0.05,
                "{est} vs {exact}"
            );
        }
    }

    #[test]
    fn duration_splits_partition_the_sessions() {
        let ts = synthetic_trace_set(200, 7);
        let d = session_durations(&ts);
        assert!(!d.all.is_empty());
        assert_eq!(d.all.len(), d.data.len() + d.control.len());
        assert_eq!(d.data.len(), d.data_local.len() + d.data_network.len());
        // Durations are positive milliseconds.
        assert!(d.all.range().unwrap().0 >= 0.0);
    }

    #[test]
    fn control_sessions_are_short() {
        let ts = synthetic_trace_set(300, 8);
        let d = session_durations(&ts);
        if let (Some(c90), Some(a90)) = (d.control.quantile(0.9), d.data.quantile(0.9)) {
            assert!(
                c90 <= a90 * 10.0,
                "control sessions are not the long tail: c90={c90} a90={a90}"
            );
        }
    }
}
