//! Open-duration analysis — figures 5 and 12.
//!
//! Figure 5: the CDF of file open times for data sessions, split all /
//! local / network (the study found ~75 % under 10 ms and no meaningful
//! local-vs-remote difference). Figure 12: session lifetimes split all /
//! control-only / data.

use crate::cdf::Cdf;
use crate::schema::{Instance, TraceSet};

/// Duration CDFs in milliseconds.
pub struct SessionDurations {
    /// All successful sessions.
    pub all: Cdf,
    /// Sessions that transferred data.
    pub data: Cdf,
    /// Control/directory-only sessions.
    pub control: Cdf,
    /// Data sessions on local volumes.
    pub data_local: Cdf,
    /// Data sessions on redirector volumes.
    pub data_network: Cdf,
    /// Read-only data sessions.
    pub read_only: Cdf,
    /// Write-only data sessions.
    pub write_only: Cdf,
    /// Read-write data sessions.
    pub read_write: Cdf,
}

fn dur_ms(i: &Instance) -> Option<f64> {
    i.duration_ticks().map(|t| t as f64 / 10_000.0)
}

/// Computes the duration CDFs from the instance table.
pub fn session_durations(ts: &TraceSet) -> SessionDurations {
    let ok: Vec<&Instance> = ts
        .instances
        .iter()
        .filter(|i| i.opened() && i.duration_ticks().is_some())
        .collect();
    let collect = |pred: &dyn Fn(&Instance) -> bool| {
        Cdf::from_samples(ok.iter().filter(|i| pred(i)).filter_map(|i| dur_ms(i)))
    };
    SessionDurations {
        all: collect(&|_| true),
        data: collect(&|i| i.is_data()),
        control: collect(&|i| !i.is_data()),
        data_local: collect(&|i| i.is_data() && i.local),
        data_network: collect(&|i| i.is_data() && !i.local),
        read_only: collect(&|i| i.usage_class() == Some(crate::schema::UsageClass::ReadOnly)),
        write_only: collect(&|i| i.usage_class() == Some(crate::schema::UsageClass::WriteOnly)),
        read_write: collect(&|i| i.usage_class() == Some(crate::schema::UsageClass::ReadWrite)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn duration_splits_partition_the_sessions() {
        let ts = synthetic_trace_set(200, 7);
        let d = session_durations(&ts);
        assert!(!d.all.is_empty());
        assert_eq!(d.all.len(), d.data.len() + d.control.len());
        assert_eq!(d.data.len(), d.data_local.len() + d.data_network.len());
        // Durations are positive milliseconds.
        assert!(d.all.range().unwrap().0 >= 0.0);
    }

    #[test]
    fn control_sessions_are_short() {
        let ts = synthetic_trace_set(300, 8);
        let d = session_durations(&ts);
        if let (Some(c90), Some(a90)) = (d.control.quantile(0.9), d.data.quantile(0.9)) {
            assert!(
                c90 <= a90 * 10.0,
                "control sessions are not the long tail: c90={c90} a90={a90}"
            );
        }
    }
}
