//! File-system content analysis over snapshots — §5 of the paper.

use std::collections::HashMap;

use nt_trace::{Snapshot, SnapshotDiff};

use crate::cdf::Cdf;

/// Content characteristics of one snapshot.
#[derive(Clone, Debug)]
pub struct ContentStats {
    /// Number of files.
    pub files: usize,
    /// Number of directories.
    pub directories: usize,
    /// Total file bytes.
    pub total_bytes: u64,
    /// File-size CDF (bytes).
    pub size_cdf: Cdf,
    /// Bytes per extension, descending.
    pub bytes_by_extension: Vec<(String, u64)>,
    /// Fraction of total bytes held by executables, DLLs and fonts
    /// (§5: these dominate local volumes).
    pub exe_dll_font_byte_fraction: f64,
    /// Fraction of files under `\winnt\profiles` (§5: 87–99 % of local
    /// *user* files; over all files the share is smaller).
    pub profile_file_fraction: f64,
    /// Files in the WWW cache.
    pub web_cache_files: usize,
    /// Bytes in the WWW cache (§5: 5–45 MB).
    pub web_cache_bytes: u64,
    /// §5's timestamp-inconsistency fraction (2–4 %).
    pub inconsistent_time_fraction: f64,
}

const PROFILE_PREFIX: &str = r"\winnt\profiles";
const WEB_CACHE_MARK: &str = "temporary internet files";

fn is_exe_dll_font(ext: Option<&str>) -> bool {
    matches!(
        ext,
        Some("exe" | "com" | "scr" | "dll" | "ocx" | "drv" | "cpl" | "sys" | "ttf" | "fon" | "ttc")
    )
}

/// Analyses one snapshot.
pub fn content_stats(snap: &Snapshot) -> ContentStats {
    let files: Vec<_> = snap.records.iter().filter(|r| !r.is_dir).collect();
    let total_bytes: u64 = files.iter().map(|r| r.size).sum();
    let mut by_ext: HashMap<String, u64> = HashMap::new();
    let mut special = 0u64;
    let mut profile_files = 0usize;
    let mut web_files = 0usize;
    let mut web_bytes = 0u64;
    for r in &files {
        let ext = r.extension().map(|e| e.to_string());
        *by_ext.entry(ext.clone().unwrap_or_default()).or_default() += r.size;
        if is_exe_dll_font(ext.as_deref()) {
            special += r.size;
        }
        if r.path.starts_with(PROFILE_PREFIX) {
            profile_files += 1;
        }
        if r.path.contains(WEB_CACHE_MARK) {
            web_files += 1;
            web_bytes += r.size;
        }
    }
    let mut bytes_by_extension: Vec<(String, u64)> = by_ext.into_iter().collect();
    bytes_by_extension.sort_by_key(|(_, b)| std::cmp::Reverse(*b));
    ContentStats {
        files: files.len(),
        directories: snap.dir_count(),
        total_bytes,
        size_cdf: Cdf::from_samples(files.iter().map(|r| r.size.max(1) as f64)),
        bytes_by_extension,
        exe_dll_font_byte_fraction: if total_bytes == 0 {
            0.0
        } else {
            special as f64 / total_bytes as f64
        },
        profile_file_fraction: if files.is_empty() {
            0.0
        } else {
            profile_files as f64 / files.len() as f64
        },
        web_cache_files: web_files,
        web_cache_bytes: web_bytes,
        inconsistent_time_fraction: snap.inconsistent_time_fraction(),
    }
}

/// Functional-lifetime distribution (§5, after Satyanarayanan \[18\]):
/// last-write minus last-access per file, in seconds, for files where
/// both are maintained. Negative values are §5's inconsistent-timestamp
/// population; the paper treats the measure as suspect and so does the
/// return value: the caller gets the CDF plus the inconsistent fraction.
pub fn functional_lifetimes(snap: &Snapshot) -> (Cdf, f64) {
    let mut vals = Vec::new();
    let mut inconsistent = 0usize;
    let mut measured = 0usize;
    for r in &snap.records {
        if r.is_dir {
            continue;
        }
        let Some(a) = r.last_access else { continue };
        measured += 1;
        let w = r.last_write;
        if w > a {
            inconsistent += 1;
        }
        let delta = (w.ticks() as i64 - a.ticks() as i64) as f64 / 1e7;
        vals.push(delta);
    }
    (
        Cdf::from_samples(vals.into_iter().map(|v| v.abs().max(1e-9))),
        if measured == 0 {
            0.0
        } else {
            inconsistent as f64 / measured as f64
        },
    )
}

/// Daily churn between consecutive snapshots (§5: a common pattern is
/// 300–500 files changed/added per day, up to 93 % in the WWW cache).
#[derive(Clone, Debug)]
pub struct ChurnStats {
    /// Files added or changed.
    pub churn: usize,
    /// Files removed.
    pub removed: usize,
    /// Fraction of the churn under the profile tree (§5: ≈ 94 % of
    /// content changes).
    pub profile_fraction: f64,
    /// Fraction of the churn inside the WWW cache.
    pub web_cache_fraction: f64,
}

/// Computes churn between two snapshots of the same volume.
pub fn churn_stats(older: &Snapshot, newer: &Snapshot) -> ChurnStats {
    let diff = SnapshotDiff::between(older, newer);
    let churn = diff.churn();
    let frac = |pred: &dyn Fn(&str) -> bool| {
        if churn == 0 {
            return 0.0;
        }
        diff.added
            .iter()
            .chain(diff.changed.iter())
            .filter(|p| pred(p))
            .count() as f64
            / churn as f64
    };
    ChurnStats {
        churn,
        removed: diff.removed.len(),
        profile_fraction: frac(&|p: &str| p.starts_with(PROFILE_PREFIX)),
        web_cache_fraction: frac(&|p: &str| p.contains(WEB_CACHE_MARK)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_fs::{NtPath, Volume, VolumeConfig, VolumeId};
    use nt_sim::SimTime;
    use nt_trace::SnapshotWalker;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn volume() -> Volume {
        let mut v = Volume::new(VolumeConfig::local_ntfs(4 << 30));
        let sys = v
            .mkdir_all(&NtPath::parse(r"\winnt\system32"), t(1))
            .unwrap();
        for (name, size) in [
            ("big.dll", 3_000_000u64),
            ("huge.exe", 5_000_000),
            ("a.ini", 900),
        ] {
            let f = v.create_file(sys, name, t(1)).unwrap();
            v.set_file_size(f, size, t(1)).unwrap();
        }
        let cache = v
            .mkdir_all(
                &NtPath::parse(r"\winnt\profiles\kim\temporary internet files"),
                t(1),
            )
            .unwrap();
        for i in 0..20 {
            let f = v.create_file(cache, &format!("c{i}.htm"), t(1)).unwrap();
            v.set_file_size(f, 4_000, t(1)).unwrap();
        }
        v
    }

    #[test]
    fn stats_identify_dominant_types() {
        let v = volume();
        let snap = SnapshotWalker::walk_volume(VolumeId(0), &v, t(2));
        let s = content_stats(&snap);
        assert_eq!(s.files, 23);
        assert!(s.exe_dll_font_byte_fraction > 0.9);
        assert_eq!(s.web_cache_files, 20);
        assert_eq!(s.web_cache_bytes, 80_000);
        assert!(s.profile_file_fraction > 0.5);
        assert_eq!(s.bytes_by_extension[0].0, "exe");
    }

    #[test]
    fn functional_lifetime_reports_inconsistency() {
        let mut v = volume();
        // Force one inconsistent file: last write after last access.
        let f = v.lookup(&NtPath::parse(r"\winnt\system32\a.ini")).unwrap();
        v.set_times(
            f,
            nt_fs::FileTimes {
                creation: Some(t(1)),
                last_access: Some(t(2)),
                last_write: t(50),
            },
        )
        .unwrap();
        let snap = SnapshotWalker::walk_volume(VolumeId(0), &v, t(60));
        let (cdf, frac) = functional_lifetimes(&snap);
        assert!(!cdf.is_empty());
        assert!(frac > 0.0, "inconsistent fraction detected: {frac}");
        assert!(frac < 0.5);
    }

    #[test]
    fn churn_attributes_to_web_cache() {
        let mut v = volume();
        let before = SnapshotWalker::walk_volume(VolumeId(0), &v, t(2));
        let cache = v
            .lookup(&NtPath::parse(
                r"\winnt\profiles\kim\temporary internet files",
            ))
            .unwrap();
        for i in 100..109 {
            let f = v.create_file(cache, &format!("n{i}.gif"), t(50)).unwrap();
            v.set_file_size(f, 2_000, t(50)).unwrap();
        }
        let sys = v.lookup(&NtPath::parse(r"\winnt\system32\a.ini")).unwrap();
        v.set_file_size(sys, 1_000, t(60)).unwrap();
        let after = SnapshotWalker::walk_volume(VolumeId(0), &v, t(100));
        let c = churn_stats(&before, &after);
        assert_eq!(c.churn, 10);
        assert!((c.web_cache_fraction - 0.9).abs() < 1e-9);
        assert!(c.profile_fraction >= c.web_cache_fraction);
        assert_eq!(c.removed, 0);
    }
}
