//! Heavy-tail diagnostics — figures 9 and 10 and §7.
//!
//! Three instruments, exactly the paper's:
//!
//! * **QQ comparison** (figure 9) of the sample against a fitted Normal
//!   and a fitted Pareto — the Normal bends away, the Pareto tracks.
//! * **LLCD plot** (figure 10): log10 `P[X > x]` against log10 `x`; a
//!   straight tail is power-law behaviour, and the least-squares slope of
//!   the upper tail estimates α (the study found 1.2 on the arrival
//!   sample).
//! * The **Hill estimator** over the top-k order statistics, "a reliable
//!   estimator for α" per the paper's footnote; values between 1.2 and
//!   1.7 across usage variables indicated infinite variance.

use crate::stats::least_squares;

/// A point series for plotting.
pub type Series = Vec<(f64, f64)>;

/// QQ plot data: sample quantiles vs theoretical quantiles.
pub struct QqPlot {
    /// (theoretical, observed) pairs against a fitted Normal.
    pub against_normal: Series,
    /// (theoretical, observed) pairs against a fitted Pareto.
    pub against_pareto: Series,
    /// Mean absolute relative deviation from the Normal line.
    pub normal_deviation: f64,
    /// Mean absolute relative deviation from the Pareto line.
    pub pareto_deviation: f64,
}

fn normal_quantile(p: f64) -> f64 {
    // Acklam's rational approximation of the inverse normal CDF.
    debug_assert!((0.0..1.0).contains(&p));
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Builds figure 9 from a sample: QQ against a moment-fitted Normal and a
/// tail-fitted Pareto.
pub fn qq_plot(sample: &[f64], points: usize) -> QqPlot {
    let mut sorted: Vec<f64> = sample.iter().copied().filter(|x| x.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    if n < 10 {
        return QqPlot {
            against_normal: Vec::new(),
            against_pareto: Vec::new(),
            normal_deviation: 0.0,
            pareto_deviation: 0.0,
        };
    }
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let sd = (sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
    // Pareto fit: xm = a low quantile, alpha from the Hill estimator.
    let xm = sorted[n / 10].max(1e-9);
    let alpha = hill_estimator(&sorted, n / 10).max(0.2);

    let points = points.max(4);
    let mut against_normal = Vec::with_capacity(points);
    let mut against_pareto = Vec::with_capacity(points);
    let mut ndev = 0.0;
    let mut pdev = 0.0;
    let mut used = 0;
    for i in 0..points {
        let p = (i as f64 + 0.5) / points as f64;
        let observed = sorted[((p * n as f64) as usize).min(n - 1)];
        let qn = mean + sd * normal_quantile(p);
        let qp = xm / (1.0 - p).powf(1.0 / alpha);
        against_normal.push((qn, observed));
        against_pareto.push((qp, observed));
        let scale = observed.abs().max(1e-9);
        ndev += (observed - qn).abs() / scale;
        pdev += (observed - qp).abs() / scale;
        used += 1;
    }
    QqPlot {
        against_normal,
        against_pareto,
        normal_deviation: ndev / used as f64,
        pareto_deviation: pdev / used as f64,
    }
}

/// LLCD data: `(log10 x, log10 P[X > x])` over the whole sample, plus the
/// fitted slope of the upper tail. `-slope` estimates α.
pub struct Llcd {
    /// The plotted points.
    pub points: Series,
    /// Least-squares slope of the upper-tail points.
    pub tail_slope: f64,
    /// The α estimate (`-tail_slope`).
    pub alpha: f64,
}

/// Builds figure 10 from a sample. `tail_fraction` selects how much of
/// the upper tail the slope is fitted on (the paper fits the plotted
/// tail; 0.1 reproduces that).
pub fn llcd(sample: &[f64], tail_fraction: f64) -> Llcd {
    let mut sorted: Vec<f64> = sample
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x > 0.0)
        .collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    if n < 10 {
        return Llcd {
            points: Vec::new(),
            tail_slope: 0.0,
            alpha: 0.0,
        };
    }
    // Thin to at most ~2000 plotted points.
    let step = (n / 2_000).max(1);
    let mut points = Vec::new();
    for i in (0..n - 1).step_by(step) {
        let x = sorted[i];
        let p_gt = (n - 1 - i) as f64 / n as f64;
        if p_gt > 0.0 {
            points.push((x.log10(), p_gt.log10()));
        }
    }
    let k = ((n as f64 * tail_fraction) as usize).clamp(5, n - 1);
    let tail: Vec<(f64, f64)> = (n - k..n - 1)
        .map(|i| {
            let p_gt = (n - 1 - i) as f64 / n as f64;
            (sorted[i].log10(), p_gt.log10())
        })
        .collect();
    let xs: Vec<f64> = tail.iter().map(|(x, _)| *x).collect();
    let ys: Vec<f64> = tail.iter().map(|(_, y)| *y).collect();
    let slope = least_squares(&xs, &ys).map(|(_, b)| b).unwrap_or(0.0);
    Llcd {
        points,
        tail_slope: slope,
        alpha: -slope,
    }
}

/// The Hill estimator of the tail index α over the top `k` order
/// statistics.
pub fn hill_estimator(sorted_ascending: &[f64], k: usize) -> f64 {
    let n = sorted_ascending.len();
    if n < 3 {
        return 0.0;
    }
    let k = k.clamp(2, n - 1);
    let xk = sorted_ascending[n - 1 - k].max(1e-12);
    let mut acc = 0.0;
    for i in 0..k {
        acc += (sorted_ascending[n - 1 - i].max(1e-12) / xk).ln();
    }
    if acc <= 0.0 {
        return 0.0;
    }
    k as f64 / acc
}

/// Hill α from just the top of the distribution: `tail` holds the top
/// `k+1` order statistics ascending, so `tail[0]` is the k-th largest
/// value and the α estimate uses the `k` values above it. This is the
/// entry point for the streaming pipeline, which keeps only a spilled
/// top-k (see `SpillRuns::top_k`) instead of the full sample. Degenerate
/// tails (fewer than 3 points, non-positive or all-equal values) return
/// 0.0, matching [`hill_estimator`].
pub fn hill_estimator_from_tail(tail: &[f64]) -> f64 {
    if tail.len() < 3 {
        return 0.0;
    }
    let k = tail.len() - 1;
    let xk = tail[0].max(1e-12);
    let mut acc = 0.0;
    for &x in &tail[1..] {
        acc += (x.max(1e-12) / xk).ln();
    }
    if acc <= 0.0 {
        return 0.0;
    }
    k as f64 / acc
}

/// Convenience: Hill α of an unsorted sample using the top 10 %.
pub fn hill_alpha(sample: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = sample
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x > 0.0)
        .collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let k = (sorted.len() / 10).max(2);
    hill_estimator(&sorted, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn pareto_sample(alpha: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                1.0 / u.powf(1.0 / alpha)
            })
            .collect()
    }

    fn normal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                100.0 + 15.0 * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn normal_quantile_symmetry() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-3);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-3);
    }

    #[test]
    fn hill_recovers_alpha() {
        for &alpha in &[1.2, 1.7, 2.5] {
            let mut s = pareto_sample(alpha, 60_000, 7);
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let est = hill_estimator(&s, 6_000);
            assert!((est - alpha).abs() < 0.15, "alpha {alpha} estimated {est}");
        }
    }

    #[test]
    fn llcd_slope_matches_alpha() {
        let s = pareto_sample(1.3, 50_000, 11);
        let l = llcd(&s, 0.1);
        assert!(
            (l.alpha - 1.3).abs() < 0.25,
            "slope-derived alpha {}",
            l.alpha
        );
        assert!(!l.points.is_empty());
        // LLCD of Pareto data is near-linear: compare first/last tail
        // segment slopes crudely via global fit residual sign; a normal
        // sample instead drops off sharply (larger |alpha| from the fit).
        let nrm = llcd(&normal_sample(50_000, 12), 0.1);
        assert!(
            nrm.alpha > l.alpha * 2.0,
            "normal tail decays much faster: {} vs {}",
            nrm.alpha,
            l.alpha
        );
    }

    #[test]
    fn qq_prefers_pareto_for_heavy_tails() {
        let s = pareto_sample(1.4, 20_000, 13);
        let qq = qq_plot(&s, 100);
        assert!(
            qq.pareto_deviation < qq.normal_deviation,
            "pareto {} vs normal {}",
            qq.pareto_deviation,
            qq.normal_deviation
        );
    }

    #[test]
    fn qq_prefers_normal_for_gaussian_data() {
        let s = normal_sample(20_000, 14);
        let qq = qq_plot(&s, 100);
        assert!(
            qq.normal_deviation < qq.pareto_deviation,
            "normal {} vs pareto {}",
            qq.normal_deviation,
            qq.pareto_deviation
        );
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(hill_estimator(&[], 5), 0.0);
        assert_eq!(llcd(&[1.0, 2.0], 0.1).alpha, 0.0);
        let qq = qq_plot(&[1.0; 5], 10);
        assert!(qq.against_normal.is_empty());
    }

    // Satellite: the estimators must return defined (finite, non-NaN)
    // results on every degenerate input class.

    #[test]
    fn hill_empty_input_is_defined() {
        assert_eq!(hill_estimator(&[], 0), 0.0);
        assert_eq!(hill_estimator(&[], 100), 0.0);
        assert_eq!(hill_alpha(&[]), 0.0);
        assert_eq!(hill_estimator_from_tail(&[]), 0.0);
    }

    #[test]
    fn hill_single_sample_is_defined() {
        assert_eq!(hill_estimator(&[5.0], 1), 0.0);
        assert_eq!(hill_alpha(&[5.0]), 0.0);
        assert_eq!(hill_estimator_from_tail(&[5.0]), 0.0);
    }

    #[test]
    fn hill_all_equal_samples_are_defined() {
        let s = [7.0; 50];
        let est = hill_estimator(&s, 10);
        assert!(est.is_finite());
        assert_eq!(est, 0.0, "zero log-spacings must not divide to NaN/inf");
        assert_eq!(hill_alpha(&s), 0.0);
        assert_eq!(hill_estimator_from_tail(&[7.0; 10]), 0.0);
    }

    #[test]
    fn hill_k_at_least_n_is_clamped() {
        let mut s: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for k in [20, 21, 10_000] {
            let est = hill_estimator(&s, k);
            assert!(est.is_finite() && est >= 0.0, "k={k} gave {est}");
            // k clamps to n-1, so the answer equals the max-k estimate.
            assert_eq!(est, hill_estimator(&s, 19));
        }
    }

    #[test]
    fn hill_zero_and_negative_samples_are_defined() {
        let s = [-3.0, 0.0, 0.0, 1.0, 2.0, 4.0, 8.0];
        let est = hill_estimator(&s, 3);
        assert!(est.is_finite() && est >= 0.0);
        assert!(hill_alpha(&s).is_finite(), "hill_alpha filters x <= 0");
    }

    #[test]
    fn llcd_empty_single_and_all_equal_are_defined() {
        for s in [vec![], vec![3.0], vec![2.0; 40]] {
            let l = llcd(&s, 0.1);
            assert!(l.alpha.is_finite(), "alpha for {s:?}");
            assert!(l.tail_slope.is_finite());
        }
        // All-equal: every plotted x collapses to one point; the
        // least-squares fit degenerates and must fall back to slope 0.
        assert_eq!(llcd(&[2.0; 40], 0.1).tail_slope, 0.0);
    }

    #[test]
    fn llcd_tail_fraction_extremes_are_defined() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        for frac in [0.0, 1.0, 5.0] {
            let l = llcd(&s, frac);
            assert!(l.alpha.is_finite(), "tail_fraction={frac}");
        }
    }

    #[test]
    fn qq_degenerate_inputs_are_defined() {
        for s in [vec![], vec![1.0], vec![4.0; 9]] {
            let qq = qq_plot(&s, 50);
            assert!(qq.against_normal.is_empty(), "below the n=10 floor");
            assert_eq!(qq.normal_deviation, 0.0);
        }
        // All-equal above the floor: sd = 0, deviations stay finite.
        let qq = qq_plot(&[4.0; 64], 50);
        assert!(qq.normal_deviation.is_finite());
        assert!(qq.pareto_deviation.is_finite());
    }

    #[test]
    fn tail_estimator_matches_full_hill() {
        let mut s = pareto_sample(1.5, 40_000, 21);
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let k = 4_000;
        let full = hill_estimator(&s, k);
        let tail = &s[s.len() - 1 - k..];
        let from_tail = hill_estimator_from_tail(tail);
        assert!(
            (full - from_tail).abs() < 1e-9,
            "full {full} vs tail {from_tail}"
        );
    }
}
