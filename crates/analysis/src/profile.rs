//! Workload-profile extraction — "configuration information for
//! realistic file system benchmarks" (§1).
//!
//! §7's modelling conclusion is that benchmarks must draw their input
//! parameters from the *correct (heavy-tailed) distributions*. This
//! module fits a [`WorkloadProfile`] from any trace: empirical
//! inverse-CDF samplers for the key variables plus the categorical
//! shares, which a generator (see `nt_study::synthetic`) can replay to
//! produce traffic with the same statistical shape.

use rand::Rng;

use crate::schema::{TraceSet, UsageClass};
use crate::tails::hill_alpha;

/// An empirical distribution stored as a quantile table; sampling is
/// inverse-CDF with linear interpolation, which preserves the tail as
/// far as the data saw it.
#[derive(Clone, Debug)]
pub struct EmpiricalDist {
    // 0-, 1/(n-1)-, …, 1-quantiles.
    quantiles: Vec<f64>,
}

impl EmpiricalDist {
    /// Fits a table of `resolution` quantiles (at least 2) from samples.
    /// Returns `None` when there are no finite samples.
    pub fn fit(samples: &[f64], resolution: usize) -> Option<EmpiricalDist> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let resolution = resolution.max(2);
        let n = sorted.len();
        let quantiles = (0..resolution)
            .map(|i| {
                let idx = (i as f64 / (resolution - 1) as f64) * (n - 1) as f64;
                let lo = idx.floor() as usize;
                let hi = idx.ceil() as usize;
                let frac = idx - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            })
            .collect();
        Some(EmpiricalDist { quantiles })
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let pos = u * (self.quantiles.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.quantiles[lo] * (1.0 - frac) + self.quantiles[hi] * frac
    }

    /// The fitted `q`-quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.quantiles.len() - 1) as f64;
        self.quantiles[pos.round() as usize]
    }

    /// Median of the table.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// The fitted benchmark configuration.
#[derive(Clone, Debug)]
pub struct WorkloadProfile {
    /// Open-request inter-arrival gaps, in ticks.
    pub interarrival_ticks: EmpiricalDist,
    /// Hill α of the inter-arrival tail (documentation of tail weight).
    pub interarrival_alpha: f64,
    /// Fraction of opens that perform only control work.
    pub control_fraction: f64,
    /// Fraction of opens that fail.
    pub open_failure_fraction: f64,
    /// Among data sessions: (read-only, write-only, read-write) shares.
    pub class_shares: (f64, f64, f64),
    /// Reads per read-carrying session.
    pub reads_per_session: EmpiricalDist,
    /// Writes per write-carrying session.
    pub writes_per_session: EmpiricalDist,
    /// Read request sizes (bytes).
    pub read_sizes: EmpiricalDist,
    /// Write request sizes (bytes).
    pub write_sizes: EmpiricalDist,
    /// Sizes of the files data sessions touch (bytes).
    pub file_sizes: EmpiricalDist,
    /// Fraction of read sessions that are fully sequential.
    pub sequential_read_fraction: f64,
}

/// Fits a profile from the fact tables. Returns `None` when the trace is
/// too small to characterise (no opens or no data sessions).
pub fn fit_profile(ts: &TraceSet) -> Option<WorkloadProfile> {
    // Inter-arrivals per machine, pooled.
    let mut gaps = Vec::new();
    {
        use std::collections::HashMap;
        let mut per: HashMap<u32, Vec<u64>> = HashMap::new();
        for inst in &ts.instances {
            per.entry(inst.machine)
                .or_default()
                .push(inst.open_start_ticks);
        }
        for (_, mut opens) in per {
            opens.sort_unstable();
            for w in opens.windows(2) {
                let g = (w[1] - w[0]) as f64;
                if g > 0.0 {
                    gaps.push(g);
                }
            }
        }
    }
    let interarrival_ticks = EmpiricalDist::fit(&gaps, 512)?;

    let opened: Vec<_> = ts.instances.iter().filter(|i| i.opened()).collect();
    let total = ts.instances.len();
    if total == 0 || opened.is_empty() {
        return None;
    }
    let data: Vec<_> = opened.iter().filter(|i| i.is_data()).collect();
    if data.is_empty() {
        return None;
    }
    let (mut ro, mut wo, mut rw) = (0u64, 0u64, 0u64);
    let mut seq_reads = 0u64;
    let mut read_counts = Vec::new();
    let mut write_counts = Vec::new();
    let mut file_sizes = Vec::new();
    for i in &data {
        match i.usage_class() {
            Some(UsageClass::ReadOnly) => ro += 1,
            Some(UsageClass::WriteOnly) => wo += 1,
            Some(UsageClass::ReadWrite) => rw += 1,
            None => {}
        }
        if i.reads > 0 {
            read_counts.push(i.reads as f64);
            if i.transfer_pattern()
                .map(|p| p != crate::schema::TransferPattern::Random)
                .unwrap_or(false)
            {
                seq_reads += 1;
            }
        }
        if i.writes > 0 {
            write_counts.push(i.writes as f64);
        }
        file_sizes.push(i.file_size.max(1) as f64);
    }
    let read_sessions = data.iter().filter(|i| i.reads > 0).count() as u64;

    let mut read_sizes = Vec::new();
    let mut write_sizes = Vec::new();
    for (_, rec) in ts.data_records() {
        if rec.status.is_error() {
            continue;
        }
        if rec.kind().is_read() {
            read_sizes.push(rec.length as f64);
        } else {
            write_sizes.push(rec.length as f64);
        }
    }

    let dsum = (ro + wo + rw).max(1) as f64;
    Some(WorkloadProfile {
        interarrival_alpha: hill_alpha(&gaps),
        interarrival_ticks,
        control_fraction: opened.iter().filter(|i| !i.is_data()).count() as f64
            / opened.len() as f64,
        open_failure_fraction: (total - opened.len()) as f64 / total as f64,
        class_shares: (ro as f64 / dsum, wo as f64 / dsum, rw as f64 / dsum),
        reads_per_session: EmpiricalDist::fit(&read_counts, 256)
            .unwrap_or(EmpiricalDist::fit(&[1.0], 2).expect("constant fits")),
        writes_per_session: EmpiricalDist::fit(&write_counts, 256)
            .unwrap_or(EmpiricalDist::fit(&[1.0], 2).expect("constant fits")),
        read_sizes: EmpiricalDist::fit(&read_sizes, 256)
            .unwrap_or(EmpiricalDist::fit(&[4096.0], 2).expect("constant fits")),
        write_sizes: EmpiricalDist::fit(&write_sizes, 256)
            .unwrap_or(EmpiricalDist::fit(&[4096.0], 2).expect("constant fits")),
        file_sizes: EmpiricalDist::fit(&file_sizes, 256)?,
        sequential_read_fraction: if read_sessions == 0 {
            0.0
        } else {
            seq_reads as f64 / read_sessions as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_dist_round_trips_quantiles() {
        let samples: Vec<f64> = (1..=1_000).map(|i| i as f64).collect();
        let d = EmpiricalDist::fit(&samples, 128).unwrap();
        assert!((d.median() - 500.0).abs() < 20.0);
        assert!((d.quantile(0.9) - 900.0).abs() < 25.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let drawn: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = drawn.iter().sum::<f64>() / drawn.len() as f64;
        assert!((mean - 500.5).abs() < 20.0, "mean {mean}");
        assert!(drawn.iter().all(|&x| (1.0..=1_000.0).contains(&x)));
    }

    #[test]
    fn empirical_dist_preserves_heavy_tails() {
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| {
                let u: f64 = rand::Rng::gen_range(&mut rng, f64::MIN_POSITIVE..1.0);
                1.0 / u.powf(1.0 / 1.3)
            })
            .collect();
        let d = EmpiricalDist::fit(&samples, 1024).unwrap();
        let drawn: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let alpha = crate::tails::hill_alpha(&drawn);
        assert!(
            (0.9..1.9).contains(&alpha),
            "refit alpha {alpha} should stay near 1.3"
        );
    }

    #[test]
    fn fit_profile_from_synthetic_trace() {
        let ts = synthetic_trace_set(600, 77);
        let p = fit_profile(&ts).expect("trace is large enough");
        assert!(p.control_fraction > 0.1 && p.control_fraction < 0.9);
        assert!(p.open_failure_fraction > 0.0 && p.open_failure_fraction < 0.5);
        let (ro, wo, rw) = p.class_shares;
        assert!((ro + wo + rw - 1.0).abs() < 1e-9);
        assert!(p.read_sizes.median() > 0.0);
        assert!(p.file_sizes.quantile(0.9) >= p.file_sizes.median());
        assert!(p.sequential_read_fraction > 0.3);
        assert!(p.interarrival_alpha > 0.0);
    }

    #[test]
    fn fit_profile_rejects_empty_traces() {
        let ts = crate::schema::TraceSet::build(Vec::<(
            u32,
            Vec<nt_trace::TraceRecord>,
            Vec<nt_trace::NameRecord>,
        )>::new());
        assert!(fit_profile(&ts).is_none());
    }
}
