//! Open-request inter-arrival analysis — figure 11 and §8.1.
//!
//! "Figure 11 displays inter-arrival times of open requests arriving at
//! the file system: 40 % of the requests arrive within 1 millisecond of a
//! previous request, while 90 % arrives within 30 milliseconds." The
//! figure splits opens that lead to I/O from opens for control, which the
//! instance table tells us after the fact.

use std::collections::HashMap;

use crate::cdf::Cdf;
use crate::gaps::LossWindows;
use crate::schema::{Instance, TraceSet};
use crate::sketch::HistogramSketch;

/// Inter-arrival CDFs (milliseconds).
pub struct OpenArrivals {
    /// All open requests.
    pub all: Cdf,
    /// Opens whose session transferred data.
    pub for_io: Cdf,
    /// Opens used for control/directory work only.
    pub for_control: Cdf,
    /// Fraction of 1-second intervals with at least one open (§8.1:
    /// "only up to 24 % of the 1-second intervals of a user's session
    /// have open requests recorded for them").
    pub active_second_fraction: f64,
}

/// Computes figure 11 from the instance table (per machine, then merged:
/// inter-arrivals only make sense within one machine's request stream).
pub fn open_arrivals(ts: &TraceSet) -> OpenArrivals {
    open_arrivals_excluding(ts, &LossWindows::new())
}

/// [`open_arrivals`] over a degraded trace: inter-arrival pairs whose
/// span crosses a lossy window of their machine are dropped (a
/// suspension would otherwise masquerade as one giant gap), and seconds
/// inside lossy windows leave the active-second denominator. With no
/// windows this is exactly [`open_arrivals`].
pub fn open_arrivals_excluding(ts: &TraceSet, lossy: &LossWindows) -> OpenArrivals {
    let mut all = Vec::new();
    let mut for_io = Vec::new();
    let mut for_control = Vec::new();
    let mut by_machine: HashMap<u32, Vec<(u64, bool)>> = HashMap::new();
    for inst in &ts.instances {
        by_machine
            .entry(inst.machine)
            .or_default()
            .push((inst.open_start_ticks, inst.is_data()));
    }
    let mut active_seconds: u64 = 0;
    let mut total_seconds: u64 = 0;
    for (machine, mut opens) in by_machine {
        opens.sort_unstable();
        // Overall gaps.
        for w in opens.windows(2) {
            if lossy.span_is_lossy(machine, w[0].0, w[1].0) {
                continue;
            }
            all.push((w[1].0 - w[0].0) as f64 / 10_000.0);
        }
        // Per-class gaps, measured within each class's own stream.
        for data in [true, false] {
            let stream: Vec<u64> = opens
                .iter()
                .filter(|(_, d)| *d == data)
                .map(|(t, _)| *t)
                .collect();
            let out = if data { &mut for_io } else { &mut for_control };
            for w in stream.windows(2) {
                if lossy.span_is_lossy(machine, w[0], w[1]) {
                    continue;
                }
                out.push((w[1] - w[0]) as f64 / 10_000.0);
            }
        }
        // Active-second accounting.
        if let (Some(first), Some(last)) = (opens.first(), opens.last()) {
            let lo = first.0 / 10_000_000;
            let hi = last.0 / 10_000_000;
            let lossy_seconds = (lo..=hi)
                .filter(|s| {
                    !lossy.for_machine(machine).is_empty()
                        && lossy.span_is_lossy(machine, s * 10_000_000, (s + 1) * 10_000_000 - 1)
                })
                .count() as u64;
            total_seconds += (hi - lo + 1).saturating_sub(lossy_seconds);
            let mut secs: Vec<u64> = opens.iter().map(|(t, _)| t / 10_000_000).collect();
            secs.dedup();
            let mut unique = secs;
            unique.sort_unstable();
            unique.dedup();
            unique.retain(|s| {
                !lossy.span_is_lossy(machine, s * 10_000_000, (s + 1) * 10_000_000 - 1)
            });
            active_seconds += unique.len() as u64;
        }
    }
    OpenArrivals {
        all: Cdf::from_samples(all),
        for_io: Cdf::from_samples(for_io),
        for_control: Cdf::from_samples(for_control),
        active_second_fraction: if total_seconds == 0 {
            0.0
        } else {
            active_seconds as f64 / total_seconds as f64
        },
    }
}

/// Streaming counterpart of [`open_arrivals`] for ONE machine's stream.
///
/// The batch analysis sorts every open tick before differencing; the
/// streaming path sees opens in session-completion order, which is only
/// *near*-sorted by open time, so gaps are taken against the largest tick
/// seen so far and out-of-order arrivals are counted but not differenced.
/// Figure-11 numbers from this accumulator are therefore approximate
/// (the fact tables themselves stay exact); `reordered` reports how many
/// arrivals the approximation skipped.
#[derive(Debug, Default, PartialEq)]
pub struct ArrivalAccumulator {
    /// Inter-open gaps, all opens (ms).
    pub all: HistogramSketch,
    /// Gaps within the data-session open stream (ms).
    pub for_io: HistogramSketch,
    /// Gaps within the control-session open stream (ms).
    pub for_control: HistogramSketch,
    /// Arrivals that came in below the stream's high-water tick.
    pub reordered: u64,
    last: [Option<u64>; 3],
    span: Option<(u64, u64)>,
    active_seconds: u64,
    last_second: Option<u64>,
    /// Seconds spanned by machines already merged in.
    merged_total_seconds: u64,
}

impl ArrivalAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        ArrivalAccumulator::default()
    }

    /// Feeds one finished instance's open arrival.
    pub fn push_instance(&mut self, inst: &Instance) {
        let tick = inst.open_start_ticks;
        let class_idx = if inst.is_data() { 1 } else { 2 };
        for idx in [0, class_idx] {
            match self.last[idx] {
                Some(prev) if tick < prev => {
                    if idx == 0 {
                        self.reordered += 1;
                    }
                }
                Some(prev) => {
                    let gap = (tick - prev) as f64 / 10_000.0;
                    match idx {
                        0 => self.all.record(gap),
                        1 => self.for_io.record(gap),
                        _ => self.for_control.record(gap),
                    }
                    self.last[idx] = Some(tick);
                }
                None => self.last[idx] = Some(tick),
            }
        }
        // Active-second accounting.
        let sec = tick / 10_000_000;
        self.span = Some(match self.span {
            None => (sec, sec),
            Some((lo, hi)) => (lo.min(sec), hi.max(sec)),
        });
        if self.last_second.is_none_or(|l| sec > l) {
            self.active_seconds += 1;
            self.last_second = Some(sec);
        }
    }

    fn span_seconds(&self) -> u64 {
        self.span.map_or(0, |(lo, hi)| hi - lo + 1)
    }

    /// Merges another machine's accumulator in. Inter-arrival streams are
    /// per-machine, so only the distributions and second counts combine;
    /// each machine's own trace span enters the denominator, mirroring
    /// the batch sum.
    pub fn merge(&mut self, other: &ArrivalAccumulator) {
        self.all.merge(&other.all);
        self.for_io.merge(&other.for_io);
        self.for_control.merge(&other.for_control);
        self.reordered += other.reordered;
        self.active_seconds += other.active_seconds;
        self.merged_total_seconds += other.merged_total_seconds + other.span_seconds();
    }

    /// Fraction of 1-second intervals with at least one open.
    pub fn active_second_fraction(&self) -> f64 {
        let total = self.merged_total_seconds + self.span_seconds();
        if total == 0 {
            0.0
        } else {
            self.active_seconds as f64 / total as f64
        }
    }

    /// Bytes of live sketch state.
    pub fn state_bytes(&self) -> usize {
        self.all.state_bytes() + self.for_io.state_bytes() + self.for_control.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn streaming_arrivals_track_batch() {
        let ts = synthetic_trace_set(400, 3);
        let batch = open_arrivals(&ts);
        let mut acc = ArrivalAccumulator::new();
        for inst in &ts.instances {
            acc.push_instance(inst);
        }
        // Every arrival beyond the first is either differenced or counted
        // as reordered; on one machine that sums to the batch gap count.
        assert_eq!(acc.all.len() + acc.reordered, batch.all.len() as u64);
        assert!(
            acc.reordered < batch.all.len() as u64 / 5,
            "completion order is near-sorted: {} reordered of {}",
            acc.reordered,
            batch.all.len()
        );
        let exact = batch.all.median().unwrap();
        let est = acc.all.median().unwrap();
        assert!(
            (est - exact).abs() <= exact * 0.25,
            "median {est} vs {exact}"
        );
        let f = acc.active_second_fraction();
        assert!((f - batch.active_second_fraction).abs() < 0.1);
    }

    #[test]
    fn arrivals_have_both_classes() {
        let ts = synthetic_trace_set(400, 3);
        let a = open_arrivals(&ts);
        assert!(a.all.len() > 100);
        assert!(!a.for_io.is_empty());
        assert!(!a.for_control.is_empty());
        assert!(a.all.len() >= a.for_io.len().max(a.for_control.len()));
    }

    #[test]
    fn burstiness_leaves_most_seconds_idle() {
        let ts = synthetic_trace_set(400, 4);
        let a = open_arrivals(&ts);
        assert!(
            a.active_second_fraction < 0.9,
            "got {}",
            a.active_second_fraction
        );
        assert!(a.active_second_fraction > 0.0);
    }

    #[test]
    fn excluding_nothing_changes_nothing() {
        let ts = synthetic_trace_set(400, 6);
        let clean = open_arrivals(&ts);
        let same = open_arrivals_excluding(&ts, &LossWindows::new());
        assert_eq!(clean.all.len(), same.all.len());
        assert_eq!(clean.active_second_fraction, same.active_second_fraction);
    }

    #[test]
    fn lossy_windows_remove_spanning_gaps() {
        let ts = synthetic_trace_set(400, 7);
        let clean = open_arrivals(&ts);
        // Declare the middle of every machine's stream lossy.
        let mut lossy = LossWindows::new();
        for &m in &ts.machines() {
            let ticks: Vec<u64> = ts
                .instances
                .iter()
                .filter(|i| i.machine == m)
                .map(|i| i.open_start_ticks)
                .collect();
            let (lo, hi) = (*ticks.iter().min().unwrap(), *ticks.iter().max().unwrap());
            let mid = lo + (hi - lo) / 2;
            lossy.add(m, nt_trace::TickWindow::new(mid, mid + (hi - lo) / 4));
        }
        let degraded = open_arrivals_excluding(&ts, &lossy);
        assert!(
            degraded.all.len() < clean.all.len(),
            "gaps spanning lossy windows are excluded: {} vs {}",
            degraded.all.len(),
            clean.all.len()
        );
        assert!(!degraded.all.is_empty(), "the rest of the trace survives");
    }

    #[test]
    fn gaps_are_heavy_tailed() {
        let ts = synthetic_trace_set(500, 5);
        let a = open_arrivals(&ts);
        let median = a.all.median().unwrap();
        let p99 = a.all.quantile(0.99).unwrap();
        assert!(p99 > median * 10.0, "median {median} p99 {p99}");
    }
}
