//! Open-request inter-arrival analysis — figure 11 and §8.1.
//!
//! "Figure 11 displays inter-arrival times of open requests arriving at
//! the file system: 40 % of the requests arrive within 1 millisecond of a
//! previous request, while 90 % arrives within 30 milliseconds." The
//! figure splits opens that lead to I/O from opens for control, which the
//! instance table tells us after the fact.

use std::collections::HashMap;

use crate::cdf::Cdf;
use crate::schema::TraceSet;

/// Inter-arrival CDFs (milliseconds).
pub struct OpenArrivals {
    /// All open requests.
    pub all: Cdf,
    /// Opens whose session transferred data.
    pub for_io: Cdf,
    /// Opens used for control/directory work only.
    pub for_control: Cdf,
    /// Fraction of 1-second intervals with at least one open (§8.1:
    /// "only up to 24 % of the 1-second intervals of a user's session
    /// have open requests recorded for them").
    pub active_second_fraction: f64,
}

/// Computes figure 11 from the instance table (per machine, then merged:
/// inter-arrivals only make sense within one machine's request stream).
pub fn open_arrivals(ts: &TraceSet) -> OpenArrivals {
    let mut all = Vec::new();
    let mut for_io = Vec::new();
    let mut for_control = Vec::new();
    let mut by_machine: HashMap<u32, Vec<(u64, bool)>> = HashMap::new();
    for inst in &ts.instances {
        by_machine
            .entry(inst.machine)
            .or_default()
            .push((inst.open_start_ticks, inst.is_data()));
    }
    let mut active_seconds: u64 = 0;
    let mut total_seconds: u64 = 0;
    for (_, mut opens) in by_machine {
        opens.sort_unstable();
        // Overall gaps.
        for w in opens.windows(2) {
            all.push((w[1].0 - w[0].0) as f64 / 10_000.0);
        }
        // Per-class gaps, measured within each class's own stream.
        for data in [true, false] {
            let stream: Vec<u64> = opens
                .iter()
                .filter(|(_, d)| *d == data)
                .map(|(t, _)| *t)
                .collect();
            let out = if data { &mut for_io } else { &mut for_control };
            for w in stream.windows(2) {
                out.push((w[1] - w[0]) as f64 / 10_000.0);
            }
        }
        // Active-second accounting.
        if let (Some(first), Some(last)) = (opens.first(), opens.last()) {
            let lo = first.0 / 10_000_000;
            let hi = last.0 / 10_000_000;
            total_seconds += hi - lo + 1;
            let mut secs: Vec<u64> = opens.iter().map(|(t, _)| t / 10_000_000).collect();
            secs.dedup();
            let mut unique = secs;
            unique.sort_unstable();
            unique.dedup();
            active_seconds += unique.len() as u64;
        }
    }
    OpenArrivals {
        all: Cdf::from_samples(all),
        for_io: Cdf::from_samples(for_io),
        for_control: Cdf::from_samples(for_control),
        active_second_fraction: if total_seconds == 0 {
            0.0
        } else {
            active_seconds as f64 / total_seconds as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn arrivals_have_both_classes() {
        let ts = synthetic_trace_set(400, 3);
        let a = open_arrivals(&ts);
        assert!(a.all.len() > 100);
        assert!(!a.for_io.is_empty());
        assert!(!a.for_control.is_empty());
        assert!(a.all.len() >= a.for_io.len().max(a.for_control.len()));
    }

    #[test]
    fn burstiness_leaves_most_seconds_idle() {
        let ts = synthetic_trace_set(400, 4);
        let a = open_arrivals(&ts);
        assert!(
            a.active_second_fraction < 0.9,
            "got {}",
            a.active_second_fraction
        );
        assert!(a.active_second_fraction > 0.0);
    }

    #[test]
    fn gaps_are_heavy_tailed() {
        let ts = synthetic_trace_set(500, 5);
        let a = open_arrivals(&ts);
        let median = a.all.median().unwrap();
        let p99 = a.all.quantile(0.99).unwrap();
        assert!(p99 > median * 10.0, "median {median} p99 {p99}");
    }
}
