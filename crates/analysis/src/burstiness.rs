//! Multi-scale burstiness — figure 8 and the §7 Poisson contrast.
//!
//! Figure 8 bins open-request arrivals at three orders of magnitude
//! (1 s / 10 s / 100 s) and compares them with a synthesised Poisson
//! process whose rate is estimated from the same trace. For Poisson
//! traffic the index of dispersion (variance/mean of interval counts)
//! stays ≈ 1 at every scale; the traced arrivals keep their variance —
//! the self-similarity signature.

use nt_trace::TickWindow;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::gaps::LossWindows;
use crate::schema::TraceSet;

/// Arrival counts binned at one time scale.
#[derive(Clone, Debug)]
pub struct BinnedArrivals {
    /// Interval length in seconds.
    pub interval_secs: u64,
    /// Requests per interval, in time order (empty leading/trailing
    /// intervals trimmed).
    pub counts: Vec<u64>,
}

impl BinnedArrivals {
    /// Mean requests per interval.
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().sum::<u64>() as f64 / self.counts.len() as f64
    }

    /// Index of dispersion: variance / mean (≈ 1 for Poisson).
    pub fn dispersion(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            return 0.0;
        }
        let var = self
            .counts
            .iter()
            .map(|&c| (c as f64 - m).powi(2))
            .sum::<f64>()
            / self.counts.len() as f64;
        var / m
    }
}

/// The figure-8 comparison at one scale.
pub struct ScaleComparison {
    /// The traced arrivals.
    pub traced: BinnedArrivals,
    /// A Poisson synthesis with the same mean rate.
    pub poisson: BinnedArrivals,
}

/// The full figure-8 analysis: three scales.
pub struct Burstiness {
    /// 1-second, 10-second and 100-second comparisons.
    pub scales: Vec<ScaleComparison>,
}

/// Extracts open-arrival timestamps (ticks).
pub fn open_arrival_ticks(ts: &TraceSet) -> Vec<u64> {
    // Columnar scan: only the code and start-tick columns.
    let create = nt_io::EventKind::Irp(nt_io::MajorFunction::Create).code();
    ts.records
        .codes()
        .iter()
        .zip(ts.records.start_ticks())
        .filter(|(&c, _)| c == create)
        .map(|(_, &t)| t)
        .collect()
}

/// Bins arrival ticks at the given interval length.
pub fn bin_arrivals(ticks: &[u64], interval_secs: u64) -> BinnedArrivals {
    bin_arrivals_excluding(ticks, interval_secs, &[])
}

/// [`bin_arrivals`] over a degraded trace: bins whose span touches a
/// lossy window are removed entirely (not zeroed — a hole is missing
/// data, and counting it as an idle interval would deflate the mean and
/// corrupt the dispersion). With no windows this is exactly
/// [`bin_arrivals`].
pub fn bin_arrivals_excluding(
    ticks: &[u64],
    interval_secs: u64,
    lossy: &[TickWindow],
) -> BinnedArrivals {
    let per = interval_secs * 10_000_000;
    if ticks.is_empty() {
        return BinnedArrivals {
            interval_secs,
            counts: Vec::new(),
        };
    }
    let lo = ticks.iter().min().expect("non-empty") / per;
    let hi = ticks.iter().max().expect("non-empty") / per;
    let mut counts = vec![0u64; (hi - lo + 1) as usize];
    for t in ticks {
        counts[(t / per - lo) as usize] += 1;
    }
    if !lossy.is_empty() {
        counts = counts
            .into_iter()
            .enumerate()
            .filter(|(i, _)| {
                let start = (lo + *i as u64) * per;
                !lossy.iter().any(|w| w.overlaps(start, start + per - 1))
            })
            .map(|(_, c)| c)
            .collect();
    }
    BinnedArrivals {
        interval_secs,
        counts,
    }
}

/// Synthesises a Poisson sample with the same total span and mean rate
/// (the paper "synthesized a sample from a Poisson distribution for which
/// we estimated its mean and variance from the trace information").
pub fn poisson_synthesis(traced: &BinnedArrivals, seed: u64) -> BinnedArrivals {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lambda = traced.mean();
    let counts = traced
        .counts
        .iter()
        .map(|_| sample_poisson(lambda, &mut rng))
        .collect();
    BinnedArrivals {
        interval_secs: traced.interval_secs,
        counts,
    }
}

/// Knuth/inversion Poisson sampler, switching to a normal approximation
/// for large rates.
fn sample_poisson(lambda: f64, rng: &mut SmallRng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 60.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (lambda + z * lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// A variance–time analysis for self-similarity (the §11 connection to
/// Gribble et al.): for an exactly self-similar process the variance of
/// the aggregated series decays as `m^(2H-2)`; H ≈ 0.5 is short-range
/// (Poisson-like), H → 1 is strongly long-range dependent. The paper's
/// conclusion 4 asks exactly for this check.
#[derive(Clone, Debug)]
pub struct VarianceTime {
    /// `(log10 m, log10 normalised variance)` points.
    pub points: Vec<(f64, f64)>,
    /// The fitted Hurst parameter.
    pub hurst: f64,
}

/// Computes the variance–time plot over 1-second base counts, aggregating
/// at powers of two up to a quarter of the series length.
pub fn variance_time(base: &BinnedArrivals) -> VarianceTime {
    let counts: Vec<f64> = base.counts.iter().map(|&c| c as f64).collect();
    let n = counts.len();
    if n < 16 {
        return VarianceTime {
            points: Vec::new(),
            hurst: 0.5,
        };
    }
    let variance = |xs: &[f64]| {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
    };
    let base_var = variance(&counts).max(1e-12);
    let mut points = Vec::new();
    let mut m = 1usize;
    while n / m >= 8 {
        let agg: Vec<f64> = counts
            .chunks_exact(m)
            .map(|c| c.iter().sum::<f64>() / m as f64)
            .collect();
        let v = variance(&agg).max(1e-12);
        points.push(((m as f64).log10(), (v / base_var).log10()));
        m *= 2;
    }
    // Slope beta of log var vs log m gives H = 1 + beta / 2.
    let xs: Vec<f64> = points.iter().map(|(x, _)| *x).collect();
    let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
    let beta = crate::stats::least_squares(&xs, &ys)
        .map(|(_, b)| b)
        .unwrap_or(-1.0);
    VarianceTime {
        points,
        hurst: (1.0 + beta / 2.0).clamp(0.0, 1.0),
    }
}

/// Runs the figure-8 analysis at the three paper scales.
pub fn burstiness(ts: &TraceSet, seed: u64) -> Burstiness {
    burstiness_excluding(ts, seed, &LossWindows::new())
}

/// [`burstiness`] over a degraded trace: since the binning merges every
/// machine's arrivals, any machine's lossy window makes its bins suspect
/// fleet-wide and they are excised before the Poisson contrast. With no
/// windows this is exactly [`burstiness`].
pub fn burstiness_excluding(ts: &TraceSet, seed: u64, lossy: &LossWindows) -> Burstiness {
    let ticks = open_arrival_ticks(ts);
    let holes = lossy.flattened();
    let scales = [1u64, 10, 100]
        .iter()
        .map(|&s| {
            let traced = bin_arrivals_excluding(&ticks, s, &holes);
            let poisson = poisson_synthesis(&traced, seed ^ s);
            ScaleComparison { traced, poisson }
        })
        .collect();
    Burstiness { scales }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn binning_counts_everything() {
        let ticks = vec![0, 5_000_000, 15_000_000, 95_000_000, 1_000_000_000];
        let b = bin_arrivals(&ticks, 1);
        assert_eq!(b.counts.iter().sum::<u64>(), 5);
        assert_eq!(b.counts[0], 2, "two arrivals in the first second");
        let b10 = bin_arrivals(&ticks, 10);
        assert_eq!(b10.counts.iter().sum::<u64>(), 5);
        assert!(b10.counts.len() < b.counts.len());
    }

    #[test]
    fn excluded_bins_disappear_instead_of_zeroing() {
        let ticks = vec![0, 5_000_000, 15_000_000, 95_000_000, 1_000_000_000];
        let clean = bin_arrivals(&ticks, 1);
        // A window covering the second containing t=15_000_000.
        let hole = [TickWindow::new(10_000_000, 20_000_000)];
        let cut = bin_arrivals_excluding(&ticks, 1, &hole);
        assert_eq!(cut.counts.len(), clean.counts.len() - 1);
        assert_eq!(
            cut.counts.iter().sum::<u64>(),
            clean.counts.iter().sum::<u64>() - 1,
            "the arrival inside the hole leaves the analysis"
        );
        // No windows: identical to the plain binning.
        let same = bin_arrivals_excluding(&ticks, 1, &[]);
        assert_eq!(same.counts, clean.counts);
    }

    #[test]
    fn poisson_sampler_matches_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &lambda in &[0.5, 5.0, 120.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.1 + 0.1,
                "lambda {lambda} got {mean}"
            );
        }
    }

    #[test]
    fn poisson_dispersion_near_one() {
        let traced = BinnedArrivals {
            interval_secs: 1,
            counts: vec![7; 5_000],
        };
        let p = poisson_synthesis(&traced, 9);
        let d = p.dispersion();
        assert!((0.8..1.2).contains(&d), "dispersion {d}");
    }

    #[test]
    fn hurst_separates_poisson_from_heavy_tails() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // A Poisson-like series: independent counts.
        let mut rng = SmallRng::seed_from_u64(5);
        let poissonish = BinnedArrivals {
            interval_secs: 1,
            counts: (0..4_096).map(|_| rng.gen_range(0..20)).collect(),
        };
        let h_poisson = variance_time(&poissonish).hurst;
        assert!(
            (0.3..0.65).contains(&h_poisson),
            "independent counts have H ≈ 0.5, got {h_poisson}"
        );
        // A long-range-dependent series: heavy-tailed ON periods spread
        // correlated mass over long stretches.
        let mut counts = vec![0u64; 4_096];
        let mut i = 0usize;
        while i < counts.len() {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let on = (4.0 / u.powf(1.0 / 1.2)) as usize;
            let rate = rng.gen_range(5..40);
            for c in counts.iter_mut().skip(i).take(on) {
                *c = rate;
            }
            i += on + rng.gen_range(1..8);
        }
        let lrd = BinnedArrivals {
            interval_secs: 1,
            counts,
        };
        let h_lrd = variance_time(&lrd).hurst;
        assert!(
            h_lrd > h_poisson + 0.1,
            "heavy-tailed ON/OFF is long-range dependent: {h_lrd} vs {h_poisson}"
        );
    }

    #[test]
    fn variance_time_degenerate_inputs() {
        let empty = BinnedArrivals {
            interval_secs: 1,
            counts: vec![],
        };
        assert_eq!(variance_time(&empty).hurst, 0.5);
        let constant = BinnedArrivals {
            interval_secs: 1,
            counts: vec![5; 1_000],
        };
        let vt = variance_time(&constant);
        assert!(!vt.points.is_empty());
    }

    #[test]
    fn traced_arrivals_stay_overdispersed_at_coarse_scales() {
        let ts = synthetic_trace_set(1_500, 71);
        let b = burstiness(&ts, 42);
        // At the coarsest populated scale, the traced dispersion should
        // exceed the Poisson synthesis (the figure-8 message).
        let comparison = b.scales.iter().rfind(|s| s.traced.counts.len() >= 10);
        if let Some(c) = comparison {
            assert!(
                c.traced.dispersion() > c.poisson.dispersion(),
                "traced {} vs poisson {}",
                c.traced.dispersion(),
                c.poisson.dispersion()
            );
        }
    }
}
