//! Column-major storage for the trace fact table.
//!
//! The star schema's trace table used to be a `Vec<(u32, TraceRecord)>`
//! — 96 bytes per row, of which a typical analysis scan reads two or
//! three fields. [`FactTable`] stores the same rows as one vector per
//! column (struct-of-arrays), so the hot scans — gap detection over
//! `start_ticks`, activity binning over `transferred`, latency CDFs over
//! the two timestamp columns — walk densely packed arrays and stay
//! cache-resident. Row reconstruction ([`FactTable::get`],
//! [`FactTable::iter`]) is kept for the cold consumers (replay, digests)
//! and is lossless: a reconstructed [`TraceRecord`] is field-for-field
//! identical to the record that was pushed, which is what keeps the
//! determinism digests bit-identical across the AoS→SoA change.

use nt_io::{AccessMode, CreateOptions, Disposition, EventKind, NtStatus, SetInfoKind};
use nt_trace::TraceRecord;

/// The trace fact table in struct-of-arrays layout. All columns always
/// have the same length; row `i` of every column belongs to one record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FactTable {
    machine: Vec<u32>,
    code: Vec<u8>,
    flags: Vec<u8>,
    status: Vec<NtStatus>,
    set_info: Vec<Option<SetInfoKind>>,
    access: Vec<Option<AccessMode>>,
    disposition: Vec<Option<Disposition>>,
    options: Vec<Option<CreateOptions>>,
    file_object: Vec<u64>,
    fcb: Vec<u64>,
    process: Vec<u32>,
    volume: Vec<u32>,
    offset: Vec<u64>,
    length: Vec<u64>,
    transferred: Vec<u64>,
    file_size: Vec<u64>,
    byte_offset: Vec<u64>,
    start_ticks: Vec<u64>,
    end_ticks: Vec<u64>,
}

impl FactTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows in the table.
    pub fn len(&self) -> usize {
        self.machine.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.machine.is_empty()
    }

    /// Appends one record traced on `machine`.
    pub fn push(&mut self, machine: u32, r: &TraceRecord) {
        self.machine.push(machine);
        self.code.push(r.code);
        self.flags.push(r.flags);
        self.status.push(r.status);
        self.set_info.push(r.set_info);
        self.access.push(r.access);
        self.disposition.push(r.disposition);
        self.options.push(r.options);
        self.file_object.push(r.file_object);
        self.fcb.push(r.fcb);
        self.process.push(r.process);
        self.volume.push(r.volume);
        self.offset.push(r.offset);
        self.length.push(r.length);
        self.transferred.push(r.transferred);
        self.file_size.push(r.file_size);
        self.byte_offset.push(r.byte_offset);
        self.start_ticks.push(r.start_ticks);
        self.end_ticks.push(r.end_ticks);
    }

    /// Appends a whole machine stream.
    pub fn extend(&mut self, machine: u32, records: &[TraceRecord]) {
        for r in records {
            self.push(machine, r);
        }
    }

    /// Reconstructs row `i` as the record that was pushed.
    pub fn get(&self, i: usize) -> TraceRecord {
        TraceRecord {
            code: self.code[i],
            flags: self.flags[i],
            status: self.status[i],
            set_info: self.set_info[i],
            access: self.access[i],
            disposition: self.disposition[i],
            options: self.options[i],
            file_object: self.file_object[i],
            fcb: self.fcb[i],
            process: self.process[i],
            volume: self.volume[i],
            offset: self.offset[i],
            length: self.length[i],
            transferred: self.transferred[i],
            file_size: self.file_size[i],
            byte_offset: self.byte_offset[i],
            start_ticks: self.start_ticks[i],
            end_ticks: self.end_ticks[i],
        }
    }

    /// Row `i`'s machine.
    pub fn machine_at(&self, i: usize) -> u32 {
        self.machine[i]
    }

    /// Full rows, reconstructed in table order — the compatibility path
    /// for consumers that need every field (replay, digests, tests).
    pub fn iter(&self) -> impl Iterator<Item = (u32, TraceRecord)> + '_ {
        (0..self.len()).map(move |i| (self.machine[i], self.get(i)))
    }

    /// The machine column.
    pub fn machines(&self) -> &[u32] {
        &self.machine
    }

    /// The event-kind code column (see [`EventKind::code`]).
    pub fn codes(&self) -> &[u8] {
        &self.code
    }

    /// The header-flags column (test bits with the
    /// [`TraceRecord::FLAG_PAGING`]-family constants).
    pub fn flags(&self) -> &[u8] {
        &self.flags
    }

    /// The completion-status column.
    pub fn statuses(&self) -> &[NtStatus] {
        &self.status
    }

    /// The file-object column.
    pub fn file_objects(&self) -> &[u64] {
        &self.file_object
    }

    /// The requesting-process column.
    pub fn processes(&self) -> &[u32] {
        &self.process
    }

    /// The requested-length column.
    pub fn lengths(&self) -> &[u64] {
        &self.length
    }

    /// The bytes-transferred column.
    pub fn transfers(&self) -> &[u64] {
        &self.transferred
    }

    /// The arrival-timestamp column (100 ns ticks).
    pub fn start_ticks(&self) -> &[u64] {
        &self.start_ticks
    }

    /// The completion-timestamp column (100 ns ticks).
    pub fn end_ticks(&self) -> &[u64] {
        &self.end_ticks
    }

    /// Row `i`'s event kind.
    pub fn kind_at(&self, i: usize) -> EventKind {
        EventKind::from_code(self.code[i]).expect("table carries valid codes")
    }

    /// Row `i`'s PagingIO bit.
    pub fn is_paging(&self, i: usize) -> bool {
        self.flags[i] & TraceRecord::FLAG_PAGING != 0
    }

    /// Sorts the table by `(start_ticks, machine, file_object)` — the
    /// collection order every analysis assumes. Columns are permuted
    /// together so rows stay intact.
    pub fn sort_by_time(&mut self) {
        let mut perm: Vec<u32> = (0..self.len() as u32).collect();
        perm.sort_by_key(|&i| {
            let i = i as usize;
            (self.start_ticks[i], self.machine[i], self.file_object[i])
        });
        fn apply<T: Copy>(perm: &[u32], col: &mut Vec<T>) {
            let out: Vec<T> = perm.iter().map(|&i| col[i as usize]).collect();
            *col = out;
        }
        apply(&perm, &mut self.machine);
        apply(&perm, &mut self.code);
        apply(&perm, &mut self.flags);
        apply(&perm, &mut self.status);
        apply(&perm, &mut self.set_info);
        apply(&perm, &mut self.access);
        apply(&perm, &mut self.disposition);
        apply(&perm, &mut self.options);
        apply(&perm, &mut self.file_object);
        apply(&perm, &mut self.fcb);
        apply(&perm, &mut self.process);
        apply(&perm, &mut self.volume);
        apply(&perm, &mut self.offset);
        apply(&perm, &mut self.length);
        apply(&perm, &mut self.transferred);
        apply(&perm, &mut self.file_size);
        apply(&perm, &mut self.byte_offset);
        apply(&perm, &mut self.start_ticks);
        apply(&perm, &mut self.end_ticks);
    }
}

impl FromIterator<(u32, TraceRecord)> for FactTable {
    fn from_iter<I: IntoIterator<Item = (u32, TraceRecord)>>(iter: I) -> Self {
        let mut t = FactTable::new();
        for (m, r) in iter {
            t.push(m, &r);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_io::MajorFunction;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            code: EventKind::Irp(MajorFunction::Read).code(),
            flags: if i.is_multiple_of(2) {
                TraceRecord::FLAG_PAGING
            } else {
                TraceRecord::FLAG_LOCAL
            },
            status: NtStatus::Success,
            set_info: None,
            access: Some(AccessMode::Read),
            disposition: None,
            options: None,
            file_object: i,
            fcb: i * 7,
            process: i as u32,
            volume: 0,
            offset: i * 4096,
            length: 4096,
            transferred: 4096,
            file_size: 1 << 20,
            byte_offset: i * 4096,
            start_ticks: 1_000 - i,
            end_ticks: 1_010 - i,
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let mut t = FactTable::new();
        for i in 0..10 {
            t.push(3, &rec(i));
        }
        assert_eq!(t.len(), 10);
        for i in 0..10 {
            assert_eq!(t.get(i), rec(i as u64));
            assert_eq!(t.machine_at(i), 3);
        }
        let rows: Vec<(u32, TraceRecord)> = t.iter().collect();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[4], (3, rec(4)));
    }

    #[test]
    fn sort_permutes_all_columns_together() {
        let mut t = FactTable::new();
        // start_ticks decrease with i, so sorting reverses the rows.
        for i in 0..6 {
            t.push(1, &rec(i));
        }
        t.sort_by_time();
        assert!(t.start_ticks().windows(2).all(|w| w[0] <= w[1]));
        for i in 0..6 {
            assert_eq!(t.get(i), rec(5 - i as u64), "row stayed intact");
        }
    }

    #[test]
    fn column_scans_agree_with_row_scans() {
        let t: FactTable = (0..20u64).map(|i| (i as u32 % 3, rec(i))).collect();
        let col_paging = (0..t.len()).filter(|&i| t.is_paging(i)).count();
        let row_paging = t.iter().filter(|(_, r)| r.is_paging()).count();
        assert_eq!(col_paging, row_paging);
        let col_bytes: u64 = t.transfers().iter().sum();
        let row_bytes: u64 = t.iter().map(|(_, r)| r.transferred).sum();
        assert_eq!(col_bytes, row_bytes);
        assert_eq!(t.kind_at(0), t.get(0).kind());
    }
}
