//! Descriptive statistics — with the §7 caveat attached.
//!
//! The paper warns that "access rates, bytes transferred and most of the
//! other properties investigated are not normally distributed and thus
//! cannot be accurately described by a simple average"; it reports
//! averages only for historical comparison and leans on ranges and
//! quantiles. [`Descriptives`] carries all of them.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Descriptives {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub stdev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub median: f64,
}

/// Computes descriptives of a sample; zeros for the empty sample.
pub fn describe(samples: &[f64]) -> Descriptives {
    if samples.is_empty() {
        return Descriptives::default();
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    Descriptives {
        n,
        mean,
        stdev: var.sqrt(),
        min: sorted[0],
        max: sorted[n - 1],
        median: sorted[n / 2],
    }
}

/// Pearson correlation coefficient; `None` when either side is constant
/// or the samples are too short. Used for the §6.3 size-vs-lifetime
/// non-correlation claim.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Least-squares line fit `y = a + b x`; returns `(a, b)`, or `None` for
/// degenerate inputs. Used by the LLCD tail-slope estimate (figure 10).
pub fn least_squares(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
    }
    if sxx <= 0.0 {
        return None;
    }
    let b = sxy / sxx;
    Some((my - b * mx, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_basics() {
        let d = describe(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.n, 4);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
        assert_eq!(d.median, 3.0);
        assert!((d.stdev - 1.118033988749895).abs() < 1e-9);
        assert_eq!(describe(&[]).n, 0);
    }

    #[test]
    fn correlation_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let up = [2.0, 4.0, 6.0, 8.0, 10.0];
        let down = [10.0, 8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[1.0; 5]), None, "constant side");
        assert_eq!(correlation(&xs, &xs[..3]), None, "length mismatch");
    }

    #[test]
    fn least_squares_recovers_a_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 - 1.4 * x).collect();
        let (a, b) = least_squares(&xs, &ys).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b + 1.4).abs() < 1e-9);
        assert_eq!(least_squares(&[1.0], &[2.0]), None);
    }
}
