//! File-size distributions of accessed files — figures 3 and 4.
//!
//! Figure 3 weighs each opened file's size by the number of opens
//! (finding: 80 % of accessed files under ≈ 26 KB); figure 4 weighs by
//! bytes transferred (finding: the large files carry the bytes — the top
//! 20 % are over 4 MB).

use crate::cdf::Cdf;
use crate::schema::{TraceSet, UsageClass};

/// Size CDFs per usage class; sizes in bytes.
pub struct AccessedSizes {
    /// Read-only sessions, weighted per open (figure 3).
    pub read_only_by_opens: Cdf,
    /// Write-only sessions, per open.
    pub write_only_by_opens: Cdf,
    /// Read-write sessions, per open.
    pub read_write_by_opens: Cdf,
    /// All data sessions, per open.
    pub all_by_opens: Cdf,
    /// Read-only sessions, weighted by bytes transferred (figure 4).
    pub read_only_by_bytes: Cdf,
    /// Write-only sessions, by bytes.
    pub write_only_by_bytes: Cdf,
    /// Read-write sessions, by bytes.
    pub read_write_by_bytes: Cdf,
    /// All data sessions, by bytes.
    pub all_by_bytes: Cdf,
}

/// Builds the accessed-file-size CDFs from the instance table.
pub fn accessed_sizes(ts: &TraceSet) -> AccessedSizes {
    let data: Vec<(UsageClass, u64, u64)> = ts
        .instances
        .iter()
        .filter_map(|i| Some((i.usage_class()?, i.file_size.max(1), i.bytes())))
        .collect();
    let opens = |class: Option<UsageClass>| {
        Cdf::from_samples(
            data.iter()
                .filter(|(c, _, _)| class.is_none_or(|cl| *c == cl))
                .map(|(_, s, _)| *s as f64),
        )
    };
    let bytes = |class: Option<UsageClass>| {
        Cdf::from_weighted(
            data.iter()
                .filter(|(c, _, b)| class.is_none_or(|cl| *c == cl) && *b > 0)
                .map(|(_, s, b)| (*s as f64, *b as f64)),
        )
    };
    AccessedSizes {
        read_only_by_opens: opens(Some(UsageClass::ReadOnly)),
        write_only_by_opens: opens(Some(UsageClass::WriteOnly)),
        read_write_by_opens: opens(Some(UsageClass::ReadWrite)),
        all_by_opens: opens(None),
        read_only_by_bytes: bytes(Some(UsageClass::ReadOnly)),
        write_only_by_bytes: bytes(Some(UsageClass::WriteOnly)),
        read_write_by_bytes: bytes(Some(UsageClass::ReadWrite)),
        all_by_bytes: bytes(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn classes_cover_all_data_sessions() {
        let ts = synthetic_trace_set(400, 21);
        let s = accessed_sizes(&ts);
        assert_eq!(
            s.all_by_opens.len(),
            s.read_only_by_opens.len() + s.write_only_by_opens.len() + s.read_write_by_opens.len()
        );
        assert!(!s.all_by_bytes.is_empty());
    }

    #[test]
    fn byte_weighting_shifts_towards_large_files() {
        let ts = synthetic_trace_set(500, 22);
        let s = accessed_sizes(&ts);
        let by_opens = s.all_by_opens.median().unwrap();
        let by_bytes = s.all_by_bytes.median().unwrap();
        assert!(
            by_bytes >= by_opens,
            "figure 4 sits right of figure 3: {by_opens} vs {by_bytes}"
        );
    }
}
