//! File-size distributions of accessed files — figures 3 and 4.
//!
//! Figure 3 weighs each opened file's size by the number of opens
//! (finding: 80 % of accessed files under ≈ 26 KB); figure 4 weighs by
//! bytes transferred (finding: the large files carry the bytes — the top
//! 20 % are over 4 MB).

use crate::cdf::Cdf;
use crate::schema::{Instance, TraceSet, UsageClass};
use crate::sketch::HistogramSketch;

/// Size CDFs per usage class; sizes in bytes.
pub struct AccessedSizes {
    /// Read-only sessions, weighted per open (figure 3).
    pub read_only_by_opens: Cdf,
    /// Write-only sessions, per open.
    pub write_only_by_opens: Cdf,
    /// Read-write sessions, per open.
    pub read_write_by_opens: Cdf,
    /// All data sessions, per open.
    pub all_by_opens: Cdf,
    /// Read-only sessions, weighted by bytes transferred (figure 4).
    pub read_only_by_bytes: Cdf,
    /// Write-only sessions, by bytes.
    pub write_only_by_bytes: Cdf,
    /// Read-write sessions, by bytes.
    pub read_write_by_bytes: Cdf,
    /// All data sessions, by bytes.
    pub all_by_bytes: Cdf,
}

/// Builds the accessed-file-size CDFs from the instance table.
pub fn accessed_sizes(ts: &TraceSet) -> AccessedSizes {
    let data: Vec<(UsageClass, u64, u64)> = ts
        .instances
        .iter()
        .filter_map(|i| Some((i.usage_class()?, i.file_size.max(1), i.bytes())))
        .collect();
    let opens = |class: Option<UsageClass>| {
        Cdf::from_samples(
            data.iter()
                .filter(|(c, _, _)| class.is_none_or(|cl| *c == cl))
                .map(|(_, s, _)| *s as f64),
        )
    };
    let bytes = |class: Option<UsageClass>| {
        Cdf::from_weighted(
            data.iter()
                .filter(|(c, _, b)| class.is_none_or(|cl| *c == cl) && *b > 0)
                .map(|(_, s, b)| (*s as f64, *b as f64)),
        )
    };
    AccessedSizes {
        read_only_by_opens: opens(Some(UsageClass::ReadOnly)),
        write_only_by_opens: opens(Some(UsageClass::WriteOnly)),
        read_write_by_opens: opens(Some(UsageClass::ReadWrite)),
        all_by_opens: opens(None),
        read_only_by_bytes: bytes(Some(UsageClass::ReadOnly)),
        write_only_by_bytes: bytes(Some(UsageClass::WriteOnly)),
        read_write_by_bytes: bytes(Some(UsageClass::ReadWrite)),
        all_by_bytes: bytes(None),
    }
}

/// Streaming counterpart of [`accessed_sizes`]: per-class size sketches
/// (per-open and byte-weighted) maintained instance by instance.
#[derive(Debug, Default, PartialEq)]
pub struct SizeAccumulator {
    /// Per-open sketches indexed ReadOnly/WriteOnly/ReadWrite.
    pub by_opens: [HistogramSketch; 3],
    /// Byte-weighted sketches in the same order.
    pub by_bytes: [HistogramSketch; 3],
}

fn class_index(c: UsageClass) -> usize {
    match c {
        UsageClass::ReadOnly => 0,
        UsageClass::WriteOnly => 1,
        UsageClass::ReadWrite => 2,
    }
}

impl SizeAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        SizeAccumulator::default()
    }

    /// Feeds one finished instance (control-only sessions are skipped,
    /// exactly like the batch path).
    pub fn push_instance(&mut self, inst: &Instance) {
        let Some(class) = inst.usage_class() else {
            return;
        };
        let i = class_index(class);
        let size = inst.file_size.max(1) as f64;
        self.by_opens[i].record(size);
        let bytes = inst.bytes();
        if bytes > 0 {
            self.by_bytes[i].record_weighted(size, bytes);
        }
    }

    /// Merges another machine's accumulator in.
    pub fn merge(&mut self, other: &SizeAccumulator) {
        for i in 0..3 {
            self.by_opens[i].merge(&other.by_opens[i]);
            self.by_bytes[i].merge(&other.by_bytes[i]);
        }
    }

    /// Combined per-open sketch across all classes (figure 3).
    pub fn all_by_opens(&self) -> HistogramSketch {
        let mut all = self.by_opens[0].clone();
        all.merge(&self.by_opens[1]);
        all.merge(&self.by_opens[2]);
        all
    }

    /// Combined byte-weighted sketch across all classes (figure 4).
    pub fn all_by_bytes(&self) -> HistogramSketch {
        let mut all = self.by_bytes[0].clone();
        all.merge(&self.by_bytes[1]);
        all.merge(&self.by_bytes[2]);
        all
    }

    /// Bytes of live sketch state.
    pub fn state_bytes(&self) -> usize {
        self.by_opens
            .iter()
            .chain(self.by_bytes.iter())
            .map(|s| s.state_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn streaming_sketches_match_batch_counts() {
        let ts = synthetic_trace_set(400, 23);
        let batch = accessed_sizes(&ts);
        let mut acc = SizeAccumulator::new();
        for inst in &ts.instances {
            acc.push_instance(inst);
        }
        assert_eq!(acc.all_by_opens().len(), batch.all_by_opens.len() as u64);
        assert_eq!(acc.by_opens[0].len(), batch.read_only_by_opens.len() as u64);
        let exact = batch.all_by_opens.median().unwrap();
        let est = acc.all_by_opens().median().unwrap();
        assert!((est - exact).abs() / exact < 0.05, "{est} vs {exact}");
        // Byte weighting shifts the sketch right too.
        assert!(acc.all_by_bytes().median().unwrap() >= est / 1.1);
    }

    #[test]
    fn classes_cover_all_data_sessions() {
        let ts = synthetic_trace_set(400, 21);
        let s = accessed_sizes(&ts);
        assert_eq!(
            s.all_by_opens.len(),
            s.read_only_by_opens.len() + s.write_only_by_opens.len() + s.read_write_by_opens.len()
        );
        assert!(!s.all_by_bytes.is_empty());
    }

    #[test]
    fn byte_weighting_shifts_towards_large_files() {
        let ts = synthetic_trace_set(500, 22);
        let s = accessed_sizes(&ts);
        let by_opens = s.all_by_opens.median().unwrap();
        let by_bytes = s.all_by_bytes.median().unwrap();
        assert!(
            by_bytes >= by_opens,
            "figure 4 sits right of figure 3: {by_opens} vs {by_bytes}"
        );
    }
}
