//! The star-schema fact tables (§4 of the paper).
//!
//! The study used two fact tables: the raw **trace** table and an
//! **instance** table, one row per FileObject open–close sequence with
//! summary data for every operation on the object during its lifetime.
//! [`TraceSet`] reproduces both: it keeps the record stream and derives
//! the [`Instance`] rows in a single pass, computing online the
//! sequentiality summaries the table-3 and figure-1/2 analyses need.

use std::collections::HashMap;

use nt_io::EventKind;
use nt_io::{AccessMode, CreateOptions, Disposition, MajorFunction, NtStatus, SetInfoKind};
use nt_trace::{NameRecord, TraceRecord};

use crate::facts::FactTable;

/// The table-3 row classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UsageClass {
    /// Only reads were performed.
    ReadOnly,
    /// Only writes.
    WriteOnly,
    /// Both.
    ReadWrite,
}

/// The table-3 column classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransferPattern {
    /// Sequential from byte 0 through the whole file.
    WholeFile,
    /// Sequential, but starting inside the file or stopping early.
    OtherSequential,
    /// Anything else.
    Random,
}

#[derive(Clone, Debug, Default)]
struct SeqTracker {
    count: u32,
    bytes: u64,
    first_offset: Option<u64>,
    expected: u64,
    all_sequential: bool,
    current_run: u64,
    runs: Vec<u64>,
    last_start_ticks: u64,
    gaps: Vec<u64>,
}

impl SeqTracker {
    fn on_access(&mut self, offset: u64, len: u64, start_ticks: u64) {
        if self.count > 0 {
            self.gaps
                .push(start_ticks.saturating_sub(self.last_start_ticks));
        }
        self.last_start_ticks = start_ticks;
        match self.first_offset {
            None => {
                self.first_offset = Some(offset);
                self.all_sequential = true;
                self.current_run = len;
            }
            Some(_) => {
                if offset == self.expected {
                    self.current_run += len;
                } else {
                    self.all_sequential = false;
                    if self.current_run > 0 {
                        self.runs.push(self.current_run);
                    }
                    self.current_run = len;
                }
            }
        }
        self.expected = offset + len;
        self.count += 1;
        self.bytes += len;
    }

    fn finish(&mut self) {
        if self.current_run > 0 {
            self.runs.push(self.current_run);
            self.current_run = 0;
        }
    }
}

/// One FileObject open–close sequence with operation summaries.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance {
    /// Machine the instance was traced on.
    pub machine: u32,
    /// File object id (unique per machine).
    pub file_object: u64,
    /// FCB id.
    pub fcb: u64,
    /// Requesting process.
    pub process: u32,
    /// Volume index.
    pub volume: u32,
    /// Local vs redirector volume.
    pub local: bool,
    /// Path, when a name record was captured.
    pub path: Option<String>,
    /// Open request arrival.
    pub open_start_ticks: u64,
    /// Open completion.
    pub open_end_ticks: u64,
    /// Cleanup (user-visible close) arrival, if seen.
    pub cleanup_ticks: Option<u64>,
    /// Final close IRP arrival, if seen.
    pub close_ticks: Option<u64>,
    /// Open status (failed opens produce an instance too).
    pub open_status: NtStatus,
    /// Requested access.
    pub access: Option<AccessMode>,
    /// Create disposition.
    pub disposition: Option<Disposition>,
    /// Create options.
    pub options: Option<CreateOptions>,
    /// True when the open brought the file into existence.
    pub created: bool,
    /// Non-paging reads.
    pub reads: u32,
    /// Non-paging writes.
    pub writes: u32,
    /// Bytes read (non-paging).
    pub read_bytes: u64,
    /// Bytes written (non-paging).
    pub write_bytes: u64,
    /// Reads served on the FastIO path.
    pub fastio_reads: u32,
    /// Writes served on the FastIO path.
    pub fastio_writes: u32,
    /// Paging reads attributed to this file object.
    pub paging_reads: u32,
    /// Of which read-ahead.
    pub readahead_reads: u32,
    /// Control/query/directory operations during the session.
    pub control_ops: u32,
    /// Directory-enumeration operations.
    pub dir_ops: u32,
    /// Failed operations after the open.
    pub op_failures: u32,
    /// Largest file size observed.
    pub file_size: u64,
    /// Delete disposition was set during this session.
    pub delete_requested: bool,
    /// Sequential-run lengths of reads, in bytes (figure 1/2 input).
    pub read_runs: Vec<u64>,
    /// Sequential-run lengths of writes.
    pub write_runs: Vec<u64>,
    /// Inter-arrival gaps between reads (ticks), §8.2.
    pub read_gaps: Vec<u64>,
    /// Inter-arrival gaps between writes (ticks).
    pub write_gaps: Vec<u64>,
    read_seq: bool,
    write_seq: bool,
    read_first: Option<u64>,
    write_first: Option<u64>,
}

impl Instance {
    /// True when the open itself succeeded.
    pub fn opened(&self) -> bool {
        self.open_status.is_success()
    }

    /// True for sessions that transferred data (vs §8.3's control-only
    /// sessions).
    pub fn is_data(&self) -> bool {
        self.reads > 0 || self.writes > 0
    }

    /// The session duration in ticks: open arrival to cleanup (the
    /// user-visible close), falling back to the close IRP.
    pub fn duration_ticks(&self) -> Option<u64> {
        let end = self.cleanup_ticks.or(self.close_ticks)?;
        Some(end.saturating_sub(self.open_start_ticks))
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// The table-3 row this session belongs to; `None` for control-only.
    pub fn usage_class(&self) -> Option<UsageClass> {
        match (self.reads > 0, self.writes > 0) {
            (true, false) => Some(UsageClass::ReadOnly),
            (false, true) => Some(UsageClass::WriteOnly),
            (true, true) => Some(UsageClass::ReadWrite),
            (false, false) => None,
        }
    }

    /// The table-3 column: the paper calls an access whole-file when all
    /// requests are sequential from byte 0 and cover the file's size at
    /// close; sequential-but-partial is "other sequential".
    pub fn transfer_pattern(&self) -> Option<TransferPattern> {
        let class = self.usage_class()?;
        let (seq, first, bytes) = match class {
            UsageClass::ReadOnly => (self.read_seq, self.read_first, self.read_bytes),
            UsageClass::WriteOnly => (self.write_seq, self.write_first, self.write_bytes),
            UsageClass::ReadWrite => (
                self.read_seq && self.write_seq,
                self.read_first.min(self.write_first),
                self.bytes(),
            ),
        };
        if !seq {
            return Some(TransferPattern::Random);
        }
        let whole = first == Some(0) && bytes >= self.file_size;
        Some(if whole {
            TransferPattern::WholeFile
        } else {
            TransferPattern::OtherSequential
        })
    }

    /// The lower-cased extension from the recorded path.
    pub fn extension(&self) -> Option<String> {
        let path = self.path.as_ref()?;
        let name = path.rsplit('\\').next()?;
        let dot = name.rfind('.')?;
        if dot == 0 || dot + 1 == name.len() {
            None
        } else {
            Some(name[dot + 1..].to_string())
        }
    }
}

/// The two fact tables plus the name dimension.
pub struct TraceSet {
    /// All records with their machine, in collection order, stored
    /// column-major ([`FactTable`]) so analysis scans touch only the
    /// columns they read.
    pub records: FactTable,
    /// One row per file-object session.
    pub instances: Vec<Instance>,
    /// (machine, file object) → path.
    pub names: HashMap<(u32, u64), String>,
}

/// Incremental builder of the instance table for one machine's record
/// stream — the exact state machine [`TraceSet::build`] runs, factored
/// out so the streaming sinks can drive it record by record and drain
/// completed sessions without materializing the whole stream.
///
/// Paths are *not* resolved here: name records may arrive in a different
/// shipment than the create they describe, so path assignment is a
/// post-pass over finished instances (see [`InstanceBuilder::assign_paths`]
/// and [`TraceSet::build`]). File-object ids are unique per machine, so
/// late binding is unambiguous.
#[derive(Debug, Default)]
pub struct InstanceBuilder {
    machine: u32,
    open: HashMap<u64, (Instance, SeqTracker, SeqTracker)>,
    done: Vec<Instance>,
}

impl InstanceBuilder {
    /// A builder for one machine's stream.
    pub fn new(machine: u32) -> Self {
        InstanceBuilder {
            machine,
            open: HashMap::new(),
            done: Vec::new(),
        }
    }

    /// Sessions currently open (memory accounting).
    pub fn open_sessions(&self) -> usize {
        self.open.len()
    }

    /// Bytes of live state held for still-open sessions (instances plus
    /// their run/gap vectors) and not-yet-drained finished ones.
    pub fn state_bytes(&self) -> usize {
        let inst_bytes = |i: &Instance| {
            std::mem::size_of::<Instance>()
                + (i.read_runs.len() + i.write_runs.len() + i.read_gaps.len() + i.write_gaps.len())
                    * 8
                + i.path.as_ref().map_or(0, |p| p.len())
        };
        let tracker_bytes =
            |t: &SeqTracker| std::mem::size_of::<SeqTracker>() + (t.runs.len() + t.gaps.len()) * 8;
        self.open
            .values()
            .map(|(i, rt, wt)| inst_bytes(i) + tracker_bytes(rt) + tracker_bytes(wt))
            .sum::<usize>()
            + self.done.iter().map(inst_bytes).sum::<usize>()
    }

    /// Takes the sessions completed since the last drain, in completion
    /// order.
    pub fn drain_done(&mut self) -> Vec<Instance> {
        std::mem::take(&mut self.done)
    }

    /// Flushes sessions still open at trace end and returns every
    /// remaining completed instance. Flush order is file-object order
    /// (deterministic); the caller's final sort makes it irrelevant for
    /// the fact table.
    pub fn finish(mut self) -> Vec<Instance> {
        let mut open: Vec<(u64, (Instance, SeqTracker, SeqTracker))> = self.open.drain().collect();
        open.sort_by_key(|(fo, _)| *fo);
        for (_, (mut inst, mut rt, mut wt)) in open {
            rt.finish();
            wt.finish();
            inst.read_runs = rt.runs;
            inst.write_runs = wt.runs;
            inst.read_gaps = rt.gaps;
            inst.write_gaps = wt.gaps;
            self.done.push(inst);
        }
        self.done
    }

    /// Resolves paths on a batch of finished instances from the name
    /// dimension.
    pub fn assign_paths(instances: &mut [Instance], names: &HashMap<(u32, u64), String>) {
        for inst in instances {
            if inst.path.is_none() {
                inst.path = names.get(&(inst.machine, inst.file_object)).cloned();
            }
        }
    }

    /// Feeds one record through the session state machine.
    pub fn push(&mut self, rec: &TraceRecord) {
        let machine = self.machine;
        let open = &mut self.open;
        let done = &mut self.done;
        let kind = rec.kind();
        match kind {
            EventKind::Irp(MajorFunction::Create) => {
                let inst = Instance {
                    machine,
                    file_object: rec.file_object,
                    fcb: rec.fcb,
                    process: rec.process,
                    volume: rec.volume,
                    local: rec.is_local(),
                    path: None,
                    open_start_ticks: rec.start_ticks,
                    open_end_ticks: rec.end_ticks,
                    cleanup_ticks: None,
                    close_ticks: None,
                    open_status: rec.status,
                    access: rec.access,
                    disposition: rec.disposition,
                    options: rec.options,
                    created: rec.is_created(),
                    reads: 0,
                    writes: 0,
                    read_bytes: 0,
                    write_bytes: 0,
                    fastio_reads: 0,
                    fastio_writes: 0,
                    paging_reads: 0,
                    readahead_reads: 0,
                    control_ops: 0,
                    dir_ops: 0,
                    op_failures: 0,
                    file_size: rec.file_size,
                    delete_requested: false,
                    read_runs: Vec::new(),
                    write_runs: Vec::new(),
                    read_gaps: Vec::new(),
                    write_gaps: Vec::new(),
                    read_seq: true,
                    write_seq: true,
                    read_first: None,
                    write_first: None,
                };
                if rec.status.is_success() {
                    open.insert(
                        rec.file_object,
                        (inst, SeqTracker::default(), SeqTracker::default()),
                    );
                } else {
                    done.push(inst);
                }
            }
            EventKind::Irp(MajorFunction::Cleanup) => {
                if let Some((inst, _, _)) = open.get_mut(&rec.file_object) {
                    inst.cleanup_ticks = Some(rec.start_ticks);
                    inst.file_size = inst.file_size.max(rec.file_size);
                }
            }
            EventKind::Irp(MajorFunction::Close) => {
                if let Some((mut inst, mut rt, mut wt)) = open.remove(&rec.file_object) {
                    inst.close_ticks = Some(rec.start_ticks);
                    rt.finish();
                    wt.finish();
                    inst.read_runs = rt.runs;
                    inst.write_runs = wt.runs;
                    inst.read_gaps = rt.gaps;
                    inst.write_gaps = wt.gaps;
                    done.push(inst);
                }
            }
            _ if kind.is_read() => {
                if let Some((inst, rt, _)) = open.get_mut(&rec.file_object) {
                    inst.file_size = inst.file_size.max(rec.file_size);
                    if rec.is_paging() {
                        inst.paging_reads += 1;
                        if rec.is_readahead() {
                            inst.readahead_reads += 1;
                        }
                        return;
                    }
                    if rec.status.is_error() {
                        inst.op_failures += 1;
                        return;
                    }
                    inst.reads += 1;
                    inst.read_bytes += rec.transferred;
                    if kind.is_fastio() {
                        inst.fastio_reads += 1;
                    }
                    if inst.read_first.is_none() {
                        inst.read_first = Some(rec.offset);
                    }
                    rt.on_access(rec.offset, rec.transferred, rec.start_ticks);
                    inst.read_seq = rt.all_sequential;
                }
            }
            _ if kind.is_write() => {
                if rec.is_paging() {
                    // Lazy-writer output is attributed to the cache, not
                    // the session.
                    return;
                }
                if let Some((inst, _, wt)) = open.get_mut(&rec.file_object) {
                    inst.file_size = inst.file_size.max(rec.file_size);
                    if rec.status.is_error() {
                        inst.op_failures += 1;
                        return;
                    }
                    inst.writes += 1;
                    inst.write_bytes += rec.transferred;
                    if kind.is_fastio() {
                        inst.fastio_writes += 1;
                    }
                    if inst.write_first.is_none() {
                        inst.write_first = Some(rec.offset);
                    }
                    wt.on_access(rec.offset, rec.transferred, rec.start_ticks);
                    inst.write_seq = wt.all_sequential;
                }
            }
            _ => {
                // Control / query / directory / set-information traffic.
                if let Some((inst, _, _)) = open.get_mut(&rec.file_object) {
                    inst.control_ops += 1;
                    if kind == EventKind::Irp(MajorFunction::DirectoryControl) {
                        inst.dir_ops += 1;
                    }
                    if rec.status.is_error() {
                        inst.op_failures += 1;
                    }
                    if rec.set_info == Some(SetInfoKind::Disposition) && rec.status.is_success() {
                        inst.delete_requested = true;
                    }
                }
            }
        }
    }
}

impl TraceSet {
    /// Builds the fact tables from per-machine record streams.
    pub fn build(
        streams: impl IntoIterator<Item = (u32, Vec<TraceRecord>, Vec<NameRecord>)>,
    ) -> TraceSet {
        let mut records = FactTable::new();
        let mut instances = Vec::new();
        let mut names = HashMap::new();
        for (machine, recs, name_recs) in streams {
            for n in name_recs {
                names.insert((machine, n.file_object), n.path);
            }
            let mut builder = InstanceBuilder::new(machine);
            for rec in &recs {
                builder.push(rec);
            }
            instances.extend(builder.finish());
            records.extend(machine, &recs);
        }
        InstanceBuilder::assign_paths(&mut instances, &names);
        records.sort_by_time();
        instances.sort_by_key(|i| (i.open_start_ticks, i.machine, i.file_object));
        TraceSet {
            records,
            instances,
            names,
        }
    }

    /// The create records (open requests), in time order.
    pub fn creates(&self) -> impl Iterator<Item = (u32, TraceRecord)> + '_ {
        self.records
            .iter()
            .filter(|(_, r)| r.kind() == EventKind::Irp(MajorFunction::Create))
    }

    /// Non-paging data records (application reads/writes).
    pub fn data_records(&self) -> impl Iterator<Item = (u32, TraceRecord)> + '_ {
        self.records
            .iter()
            .filter(|(_, r)| (r.kind().is_read() || r.kind().is_write()) && !r.is_paging())
    }

    /// Machines present in the set.
    pub fn machines(&self) -> Vec<u32> {
        let mut ms: Vec<u32> = self.records.machines().to_vec();
        ms.sort_unstable();
        ms.dedup();
        ms
    }
}

/// Shared generator for the analysis modules' tests: drives a real
/// machine through a randomized mix of sessions and returns the fact
/// tables. Compiled unconditionally so the workspace-level property
/// suites (which build this crate as a dependency, not under
/// `cfg(test)`) can use the same generator.
pub mod test_support {
    use super::TraceSet;
    use nt_fs::{NtPath, VolumeConfig};
    use nt_io::{
        AccessMode, CreateOptions, DiskParams, Disposition, Machine, MachineConfig, ProcessId,
    };
    use nt_sim::{SimDuration, SimTime};
    use nt_trace::{CollectionServer, MachineId, TraceFilter};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Runs `sessions` randomized sessions on one machine (seeded) and
    /// builds the fact tables. The mix covers control-only opens, failed
    /// probes, sequential/random reads and writes, deletes and
    /// overwrites, on a local volume and a share.
    pub fn synthetic_trace_set(sessions: usize, seed: u64) -> TraceSet {
        let mut m = Machine::new(MachineConfig::default(), TraceFilter::new(MachineId(0)));
        let local = m.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(2 << 30),
            DiskParams::local_ide(),
        );
        let share = m.add_share(
            "srv",
            "home",
            VolumeConfig::local_ntfs(1 << 30),
            DiskParams::network_share(),
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        // Seed content.
        {
            let v = m.namespace_mut().volume_mut(local).unwrap();
            let root = v.root();
            for i in 0..40 {
                let f = v
                    .create_file(root, &format!("file{i:02}.dat"), SimTime::ZERO)
                    .unwrap();
                let size = if i % 7 == 0 {
                    3 << 20
                } else {
                    (i as u64 + 1) * 2_000
                };
                v.set_file_size(f, size, SimTime::ZERO).unwrap();
            }
            let v = m.namespace_mut().volume_mut(share).unwrap();
            let root = v.root();
            for i in 0..10 {
                let f = v
                    .create_file(root, &format!("doc{i}.doc"), SimTime::ZERO)
                    .unwrap();
                v.set_file_size(f, (i as u64 + 1) * 5_000, SimTime::ZERO)
                    .unwrap();
            }
        }
        let mut t = SimTime::from_secs(5);
        let mut last_lazy = 0u64;
        for s in 0..sessions {
            // Heavy-ish tailed gap between sessions.
            let gap_us = if rng.gen_bool(0.8) {
                rng.gen_range(200..30_000)
            } else {
                rng.gen_range(100_000..20_000_000)
            };
            t += SimDuration::from_micros(gap_us);
            while t.as_secs() > last_lazy {
                last_lazy += 1;
                m.lazy_tick(SimTime::from_secs(last_lazy));
            }
            let p = ProcessId(1 + (s % 5) as u32);
            let vol = if rng.gen_bool(0.85) { local } else { share };
            let pick = rng.gen_range(0..100);
            if pick < 35 {
                // Control-only stat.
                let path = NtPath::parse(&format!(r"\file{:02}.dat", rng.gen_range(0..40)));
                let (_, h) = m.create(
                    p,
                    vol,
                    &path,
                    AccessMode::Control,
                    Disposition::Open,
                    CreateOptions::default(),
                    t,
                );
                if let Some(h) = h {
                    let r = m.query_information(h, t);
                    t = m.close(h, r.end).end;
                }
            } else if pick < 45 {
                // Failed probe.
                let path = NtPath::parse(&format!(r"\nope{:05}", rng.gen_range(0..99_999)));
                let (r, _) = m.create(
                    p,
                    vol,
                    &path,
                    AccessMode::Read,
                    Disposition::Open,
                    CreateOptions::default(),
                    t,
                );
                t = r.end;
            } else if pick < 70 {
                // Read session (sequential or random).
                let path = NtPath::parse(&format!(r"\file{:02}.dat", rng.gen_range(0..40)));
                let (r, h) = m.create(
                    p,
                    vol,
                    &path,
                    AccessMode::Read,
                    Disposition::Open,
                    CreateOptions::default(),
                    t,
                );
                t = r.end;
                if let Some(h) = h {
                    let n = rng.gen_range(1..12);
                    let random = rng.gen_bool(0.2);
                    for _ in 0..n {
                        let off = if random {
                            Some(rng.gen_range(0..30_000u64))
                        } else {
                            None
                        };
                        let r = m.read(h, off, 4_096, t + SimDuration::from_micros(40));
                        t = r.end;
                    }
                    t = m.close(h, t + SimDuration::from_micros(30)).end;
                }
            } else if pick < 90 {
                // Write session (new or overwrite).
                let path = NtPath::parse(&format!(r"\out{:03}.tmp", rng.gen_range(0..200)));
                let disp = if rng.gen_bool(0.4) {
                    Disposition::OverwriteIf
                } else {
                    Disposition::OpenIf
                };
                let (r, h) = m.create(
                    p,
                    vol,
                    &path,
                    AccessMode::Write,
                    disp,
                    CreateOptions::default(),
                    t,
                );
                t = r.end;
                if let Some(h) = h {
                    let n = rng.gen_range(1..8);
                    for _ in 0..n {
                        let r = m.write(
                            h,
                            None,
                            rng.gen_range(100..8_000),
                            t + SimDuration::from_micros(15),
                        );
                        t = r.end;
                    }
                    if rng.gen_bool(0.3) {
                        t = m.set_delete_disposition(h, t).end;
                    }
                    t = m.close(h, t + SimDuration::from_micros(20)).end;
                }
            } else {
                // Read-write random (db-style).
                let path = NtPath::parse(r"\file00.dat");
                let (r, h) = m.create(
                    p,
                    vol,
                    &path,
                    AccessMode::ReadWrite,
                    Disposition::OpenIf,
                    CreateOptions::default(),
                    t,
                );
                t = r.end;
                if let Some(h) = h {
                    for _ in 0..rng.gen_range(2..10) {
                        let off = Some((rng.gen_range(0..500u64)) * 4_096);
                        let r = if rng.gen_bool(0.5) {
                            m.read(h, off, 4_096, t + SimDuration::from_micros(30))
                        } else {
                            m.write(h, off, 4_096, t + SimDuration::from_micros(30))
                        };
                        t = r.end;
                    }
                    t = m.close(h, t + SimDuration::from_micros(20)).end;
                }
            }
        }
        // Drain lazy writer and deferred closes.
        for s in 0..30 {
            m.lazy_tick(t + SimDuration::from_secs(s + 1));
        }
        m.pump(t + SimDuration::from_secs(40));
        let mut server = CollectionServer::new();
        m.observer_mut().final_flush(&mut server);
        let recs = server.records_for(MachineId(0));
        let names: Vec<_> = server
            .names_for(MachineId(0))
            .into_iter()
            .cloned()
            .collect();
        TraceSet::build(vec![(0, recs, names)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_fs::{NtPath, VolumeConfig};
    use nt_io::{DiskParams, Machine, MachineConfig, ProcessId};
    use nt_sim::{SimDuration, SimTime};
    use nt_trace::{CollectionServer, MachineId, TraceFilter};

    /// Runs a tiny scenario and returns the fact tables.
    fn scenario() -> TraceSet {
        let mut m = Machine::new(MachineConfig::default(), TraceFilter::new(MachineId(0)));
        let vol = m.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(1 << 30),
            DiskParams::local_ide(),
        );
        let p = ProcessId(9);
        let t0 = SimTime::from_secs(1);

        // Session 1: create, write sequentially, close.
        let (_, h) = m.create(
            p,
            vol,
            &NtPath::parse(r"\a.dat"),
            nt_io::AccessMode::Write,
            nt_io::Disposition::Create,
            nt_io::CreateOptions::default(),
            t0,
        );
        let h = h.unwrap();
        let mut t = m.write(h, Some(0), 4_096, t0).end;
        t = m
            .write(h, None, 4_096, t + SimDuration::from_micros(20))
            .end;
        m.close(h, t + SimDuration::from_micros(50));
        for s in 2..10 {
            m.lazy_tick(SimTime::from_secs(s));
        }

        // Session 2: read it back, whole file.
        let t1 = SimTime::from_secs(20);
        let (_, h) = m.create(
            p,
            vol,
            &NtPath::parse(r"\a.dat"),
            nt_io::AccessMode::Read,
            nt_io::Disposition::Open,
            nt_io::CreateOptions::default(),
            t1,
        );
        let h = h.unwrap();
        let mut t = t1;
        for _ in 0..2 {
            t = m.read(h, None, 4_096, t + SimDuration::from_micros(30)).end;
        }
        m.close(h, t + SimDuration::from_micros(10));

        // Session 3: failed open.
        m.create(
            p,
            vol,
            &NtPath::parse(r"\missing.txt"),
            nt_io::AccessMode::Read,
            nt_io::Disposition::Open,
            nt_io::CreateOptions::default(),
            SimTime::from_secs(30),
        );
        m.pump(SimTime::from_secs(40));

        let mut server = CollectionServer::new();
        m.observer_mut().final_flush(&mut server);
        let recs = server.records_for(MachineId(0));
        let names: Vec<_> = server
            .names_for(MachineId(0))
            .into_iter()
            .cloned()
            .collect();
        TraceSet::build(vec![(0, recs, names)])
    }

    #[test]
    fn instances_built_per_session() {
        let ts = scenario();
        assert_eq!(ts.instances.len(), 3);
        let writer = &ts.instances[0];
        assert_eq!(writer.writes, 2);
        assert_eq!(writer.write_bytes, 8_192);
        assert!(writer.created, "disposition Create made the file");
        assert_eq!(writer.usage_class(), Some(UsageClass::WriteOnly));
        assert_eq!(writer.transfer_pattern(), Some(TransferPattern::WholeFile));
        assert_eq!(writer.path.as_deref(), Some(r"\a.dat"));
        assert!(writer.duration_ticks().is_some());

        let reader = &ts.instances[1];
        assert_eq!(reader.reads, 2);
        assert_eq!(reader.usage_class(), Some(UsageClass::ReadOnly));
        assert_eq!(reader.transfer_pattern(), Some(TransferPattern::WholeFile));
        assert!(!reader.created);

        let failed = &ts.instances[2];
        assert!(!failed.opened());
        assert_eq!(failed.usage_class(), None);
    }

    #[test]
    fn runs_and_gaps_recorded() {
        let ts = scenario();
        let writer = &ts.instances[0];
        assert_eq!(writer.write_runs, vec![8_192], "one sequential run");
        assert_eq!(writer.write_gaps.len(), 1);
        let reader = &ts.instances[1];
        assert_eq!(reader.read_runs, vec![8_192]);
    }

    #[test]
    fn record_stream_sorted_by_time() {
        let ts = scenario();
        assert!(ts.records.start_ticks().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts.machines(), vec![0]);
        assert!(ts.creates().count() >= 3);
        assert!(ts.data_records().count() >= 4);
    }
}
