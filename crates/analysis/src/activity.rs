//! User-activity intervals — table 2 and §6.1.
//!
//! The trace period is divided into 10-minute and 10-second intervals; a
//! user (≡ machine: all traced systems were single-user) is active in an
//! interval when file-system activity above the background threshold is
//! attributed to them. Throughput is reported per active user in
//! KB/second, with peaks, alongside the published BSD (1985) and Sprite
//! (1991) numbers for the historical comparison.

use std::collections::HashMap;

use crate::schema::TraceSet;
use crate::stats::{describe, Descriptives};

/// Interval statistics for one aggregation granularity.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntervalStats {
    /// Maximum concurrently-active users in any interval.
    pub max_active_users: u32,
    /// Mean (and spread) of active users per interval.
    pub active_users: Descriptives,
    /// Mean (and spread) of per-active-user throughput, KB/s.
    pub throughput_kbs: Descriptives,
    /// Peak per-user throughput over all intervals, KB/s.
    pub peak_user_kbs: f64,
    /// Peak system-wide (sum over users) throughput, KB/s.
    pub peak_system_kbs: f64,
}

/// The table-2 reproduction: both granularities.
#[derive(Clone, Copy, Debug, Default)]
pub struct UserActivity {
    /// 10-minute intervals.
    pub ten_minutes: IntervalStats,
    /// 10-second intervals.
    pub ten_seconds: IntervalStats,
}

/// Published comparison values (table 2 of the paper).
pub mod baselines {
    /// Sprite (1991): 10-minute interval values.
    pub const SPRITE_10MIN_AVG_USER_KBS: f64 = 8.0;
    /// Sprite: 10-minute peak per-user throughput.
    pub const SPRITE_10MIN_PEAK_USER_KBS: f64 = 458.0;
    /// Sprite: 10-second average per-user throughput.
    pub const SPRITE_10SEC_AVG_USER_KBS: f64 = 47.0;
    /// Sprite: 10-second peak per-user throughput.
    pub const SPRITE_10SEC_PEAK_USER_KBS: f64 = 9_871.0;
    /// BSD (1985): 10-minute average per-user throughput.
    pub const BSD_10MIN_AVG_USER_KBS: f64 = 0.40;
    /// BSD: 10-second average per-user throughput.
    pub const BSD_10SEC_AVG_USER_KBS: f64 = 1.5;
    /// The paper's own Windows NT measurements, for shape checks.
    pub const NT_10MIN_AVG_USER_KBS: f64 = 24.4;
    /// NT 10-minute peak.
    pub const NT_10MIN_PEAK_USER_KBS: f64 = 814.0;
    /// NT 10-second average.
    pub const NT_10SEC_AVG_USER_KBS: f64 = 42.5;
    /// NT 10-second peak.
    pub const NT_10SEC_PEAK_USER_KBS: f64 = 8_910.0;
}

/// Background-activity threshold: bytes per interval below which a
/// machine does not count as active (§6.1 used the service-induced
/// background level).
const BACKGROUND_BYTES_PER_SEC: u64 = 64;

fn interval_stats(ts: &TraceSet, interval_secs: u64) -> IntervalStats {
    let ticks_per_interval = interval_secs * 10_000_000;
    // (interval, machine) → bytes.
    let mut bytes: HashMap<(u64, u32), u64> = HashMap::new();
    // Columnar scan: codes + flags select data records, then only the
    // status, machine, start-tick and transferred columns are touched.
    let t = &ts.records;
    let (machines, statuses, starts, transfers) =
        (t.machines(), t.statuses(), t.start_ticks(), t.transfers());
    for i in 0..t.len() {
        let kind = t.kind_at(i);
        if !(kind.is_read() || kind.is_write()) || t.is_paging(i) || statuses[i].is_error() {
            continue;
        }
        let iv = starts[i] / ticks_per_interval;
        *bytes.entry((iv, machines[i])).or_default() += transfers[i];
    }
    let threshold = BACKGROUND_BYTES_PER_SEC * interval_secs;
    // interval → (active users, total bytes).
    let mut per_interval: HashMap<u64, (u32, u64)> = HashMap::new();
    let mut user_rates = Vec::new();
    let mut peak_user = 0.0f64;
    for ((iv, _), b) in &bytes {
        if *b < threshold {
            continue;
        }
        let e = per_interval.entry(*iv).or_default();
        e.0 += 1;
        e.1 += b;
        let rate = *b as f64 / 1_024.0 / interval_secs as f64;
        user_rates.push(rate);
        peak_user = peak_user.max(rate);
    }
    let active: Vec<f64> = per_interval.values().map(|(u, _)| *u as f64).collect();
    let peak_system = per_interval
        .values()
        .map(|(_, b)| *b as f64 / 1_024.0 / interval_secs as f64)
        .fold(0.0, f64::max);
    IntervalStats {
        max_active_users: per_interval.values().map(|(u, _)| *u).max().unwrap_or(0),
        active_users: describe(&active),
        throughput_kbs: describe(&user_rates),
        peak_user_kbs: peak_user,
        peak_system_kbs: peak_system,
    }
}

/// Computes table 2 from the trace set.
pub fn user_activity(ts: &TraceSet) -> UserActivity {
    UserActivity {
        ten_minutes: interval_stats(ts, 600),
        ten_seconds: interval_stats(ts, 10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn both_granularities_have_activity() {
        let ts = synthetic_trace_set(800, 61);
        let a = user_activity(&ts);
        assert!(a.ten_seconds.max_active_users >= 1);
        assert!(a.ten_minutes.max_active_users >= 1);
        assert!(a.ten_minutes.throughput_kbs.n >= 1);
    }

    #[test]
    fn short_intervals_show_higher_burst_rates() {
        let ts = synthetic_trace_set(1_000, 62);
        let a = user_activity(&ts);
        // The peak 10-second rate is at least the peak 10-minute rate:
        // a burst concentrated in seconds dilutes over minutes.
        assert!(
            a.ten_seconds.peak_user_kbs >= a.ten_minutes.peak_user_kbs,
            "10s peak {} vs 10min peak {}",
            a.ten_seconds.peak_user_kbs,
            a.ten_minutes.peak_user_kbs
        );
    }

    #[test]
    fn throughput_positive_when_active() {
        let ts = synthetic_trace_set(500, 63);
        let a = user_activity(&ts);
        if a.ten_seconds.throughput_kbs.n > 0 {
            assert!(a.ten_seconds.throughput_kbs.mean > 0.0);
        }
    }
}
