//! New-file lifetimes — figures 6 and 7 and §6.3.
//!
//! The study tracks files from creation to death and splits deaths by
//! mechanism: overwrite/truncate at reopen (37 %), explicit delete
//! disposition (62 %), and the temporary attribute (1 %). Figure 6 plots
//! lifetime CDFs per mechanism; figure 7 scatter-plots lifetime against
//! size at death and finds no correlation.

use std::collections::HashMap;

use crate::cdf::Cdf;
use crate::schema::TraceSet;
use crate::stats::correlation;

/// How a new file died.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeathKind {
    /// Truncated by a later open with a destructive disposition.
    Overwrite,
    /// Explicit delete disposition.
    ExplicitDelete,
    /// Temporary attribute / delete-on-close.
    Temporary,
}

/// One completed birth→death interval.
#[derive(Clone, Copy, Debug)]
pub struct FileDeath {
    /// Death mechanism.
    pub kind: DeathKind,
    /// Lifetime in ticks (creation to death).
    pub lifetime_ticks: u64,
    /// Ticks from the close of the creating session to the death; the
    /// §6.3 "overwritten within 0.7 ms of the close" measure.
    pub after_close_ticks: Option<u64>,
    /// File size at death.
    pub size: u64,
}

/// The figure-6/7 analysis output.
pub struct Lifetimes {
    /// All deaths observed.
    pub deaths: Vec<FileDeath>,
    /// Lifetime CDF (milliseconds) of overwrite/truncate deaths.
    pub overwrite_ms: Cdf,
    /// Lifetime CDF of explicit deletes.
    pub delete_ms: Cdf,
    /// Pearson correlation between size and lifetime (figure 7 found no
    /// statistically meaningful value).
    pub size_lifetime_correlation: Option<f64>,
    /// Fraction of new files dead within 4 seconds (§6.3: ≈ 80 %). The
    /// denominator is files whose death was observed.
    pub dead_within_4s: f64,
    /// Mechanism shares (overwrite, delete, temporary), in [0, 1].
    pub mechanism_shares: (f64, f64, f64),
}

/// Tracks file births and deaths through the instance table.
pub fn lifetimes(ts: &TraceSet) -> Lifetimes {
    // Birth registry per (machine, volume, path).
    #[derive(Clone, Copy)]
    struct Birth {
        at: u64,
        close: Option<u64>,
        size: u64,
    }
    let mut births: HashMap<(u32, u32, &str), Birth> = HashMap::new();
    let mut deaths: Vec<FileDeath> = Vec::new();

    fn observe_death<'a>(
        births: &mut HashMap<(u32, u32, &'a str), Birth>,
        deaths: &mut Vec<FileDeath>,
        key: (u32, u32, &'a str),
        kind: DeathKind,
        at: u64,
        size: u64,
    ) {
        if let Some(birth) = births.remove(&key) {
            deaths.push(FileDeath {
                kind,
                lifetime_ticks: at.saturating_sub(birth.at),
                after_close_ticks: birth.close.map(|c| at.saturating_sub(c)),
                size: size.max(birth.size),
            });
        }
    }

    for inst in &ts.instances {
        if !inst.opened() {
            continue;
        }
        let Some(path) = inst.path.as_deref() else {
            continue;
        };
        let key = (inst.machine, inst.volume, path);
        let truncating = inst.disposition.map(|d| d.truncates()).unwrap_or(false);
        if truncating {
            // Death of the previous incarnation, if we saw its birth.
            observe_death(
                &mut births,
                &mut deaths,
                key,
                DeathKind::Overwrite,
                inst.open_start_ticks,
                inst.file_size,
            );
        }
        let is_temp = inst
            .options
            .map(|o| o.temporary || o.delete_on_close)
            .unwrap_or(false);
        let deleted = inst.delete_requested || is_temp;
        let born = inst.created || truncating;
        if born && !deleted {
            births.insert(
                key,
                Birth {
                    at: inst.open_end_ticks,
                    close: inst.cleanup_ticks,
                    size: inst.file_size,
                },
            );
        } else if deleted {
            let death_at = inst
                .cleanup_ticks
                .or(inst.close_ticks)
                .unwrap_or(inst.open_end_ticks);
            if born {
                // Created and deleted in the same session.
                deaths.push(FileDeath {
                    kind: if is_temp {
                        DeathKind::Temporary
                    } else {
                        DeathKind::ExplicitDelete
                    },
                    lifetime_ticks: death_at.saturating_sub(inst.open_end_ticks),
                    after_close_ticks: None,
                    size: inst.file_size,
                });
            } else {
                observe_death(
                    &mut births,
                    &mut deaths,
                    key,
                    if is_temp {
                        DeathKind::Temporary
                    } else {
                        DeathKind::ExplicitDelete
                    },
                    death_at,
                    inst.file_size,
                );
            }
        } else if inst.writes > 0 {
            // A later write session updates the close time / size of an
            // existing birth (still the same incarnation).
            if let Some(b) = births.get_mut(&key) {
                b.close = inst.cleanup_ticks.or(b.close);
                b.size = b.size.max(inst.file_size);
            }
        }
    }

    let over: Vec<f64> = deaths
        .iter()
        .filter(|d| d.kind == DeathKind::Overwrite)
        .map(|d| d.lifetime_ticks as f64 / 10_000.0)
        .collect();
    let del: Vec<f64> = deaths
        .iter()
        .filter(|d| d.kind == DeathKind::ExplicitDelete)
        .map(|d| d.lifetime_ticks as f64 / 10_000.0)
        .collect();
    let n = deaths.len().max(1) as f64;
    let dead_4s = deaths
        .iter()
        .filter(|d| d.lifetime_ticks <= 4 * 10_000_000)
        .count() as f64
        / n;
    let shares = (
        over.len() as f64 / n,
        del.len() as f64 / n,
        deaths
            .iter()
            .filter(|d| d.kind == DeathKind::Temporary)
            .count() as f64
            / n,
    );
    let sizes: Vec<f64> = deaths.iter().map(|d| d.size as f64).collect();
    let lifes: Vec<f64> = deaths.iter().map(|d| d.lifetime_ticks as f64).collect();
    Lifetimes {
        size_lifetime_correlation: correlation(&sizes, &lifes),
        overwrite_ms: Cdf::from_samples(over),
        delete_ms: Cdf::from_samples(del),
        dead_within_4s: dead_4s,
        mechanism_shares: shares,
        deaths,
    }
}

/// Convenience: deaths filtered to one mechanism.
pub fn deaths_of(l: &Lifetimes, kind: DeathKind) -> impl Iterator<Item = &FileDeath> {
    l.deaths.iter().filter(move |d| d.kind == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn deaths_observed_with_multiple_mechanisms() {
        let ts = synthetic_trace_set(800, 51);
        let l = lifetimes(&ts);
        assert!(!l.deaths.is_empty());
        let (o, d, _) = l.mechanism_shares;
        assert!(o > 0.0, "overwrite deaths seen");
        assert!(d > 0.0, "explicit deletes seen");
        assert!(!l.delete_ms.is_empty());
    }

    #[test]
    fn new_files_die_young() {
        let ts = synthetic_trace_set(800, 52);
        let l = lifetimes(&ts);
        assert!(
            l.dead_within_4s > 0.3,
            "a solid share of new files dies fast: {}",
            l.dead_within_4s
        );
    }

    #[test]
    fn no_strong_size_lifetime_correlation() {
        let ts = synthetic_trace_set(800, 53);
        let l = lifetimes(&ts);
        if let Some(r) = l.size_lifetime_correlation {
            assert!(r.abs() < 0.6, "figure 7: no strong correlation, got {r}");
        }
    }
}
