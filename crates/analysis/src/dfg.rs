//! Directly-follows graphs over per-file event sequences.
//!
//! Process-mining treats a log as a set of cases, each a sequence of
//! activities, and summarizes it as a *directly-follows graph* (DFG):
//! nodes are activities, an edge `a → b` counts how often `b` directly
//! follows `a` within a case. Here a case is one file object's event
//! sequence on one machine and an activity is the event kind's wire code,
//! so the DFG captures the control-flow shape of file usage — how often
//! a create is followed by a read, a read by another read, a write by a
//! cleanup — independent of volumes, paths, sizes, and timestamps.
//!
//! That independence is what makes the DFG a good *structural
//! conformance* check for the NTT warehouse: exporting a study and
//! re-ingesting it must not change any file's event sequence, so the
//! live-run DFG and the reimported DFG must be identical — a
//! [`Dfg::similarity`] of exactly `1.0`. The similarity is a weighted
//! Jaccard over node, start, and edge frequencies, so any dropped,
//! duplicated, or reordered record moves it below one.

use std::collections::BTreeMap;

use crate::schema::TraceSet;

/// Accumulates event sequences into a [`Dfg`].
///
/// Events must be pushed in each file object's observed order; different
/// file objects (and machines) may interleave freely — the builder keeps
/// one predecessor slot per `(machine, file_object)` case.
#[derive(Default)]
pub struct DfgBuilder {
    nodes: BTreeMap<u8, u64>,
    starts: BTreeMap<u8, u64>,
    edges: BTreeMap<(u8, u8), u64>,
    last: BTreeMap<(u32, u64), u8>,
    events: u64,
}

impl DfgBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one event of `file_object`'s sequence on `machine`.
    pub fn push(&mut self, machine: u32, file_object: u64, code: u8) {
        self.events += 1;
        *self.nodes.entry(code).or_insert(0) += 1;
        match self.last.insert((machine, file_object), code) {
            Some(prev) => *self.edges.entry((prev, code)).or_insert(0) += 1,
            None => *self.starts.entry(code).or_insert(0) += 1,
        }
    }

    /// The finished graph.
    pub fn finish(self) -> Dfg {
        Dfg {
            nodes: self.nodes,
            starts: self.starts,
            edges: self.edges,
            cases: self.last.len() as u64,
            events: self.events,
        }
    }
}

/// A frequency-annotated directly-follows graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dfg {
    /// Event-kind code → occurrence count.
    pub nodes: BTreeMap<u8, u64>,
    /// Event-kind code → number of cases starting with it.
    pub starts: BTreeMap<u8, u64>,
    /// `(a, b)` → how often `b` directly followed `a` in a case.
    pub edges: BTreeMap<(u8, u8), u64>,
    /// Distinct `(machine, file_object)` cases.
    pub cases: u64,
    /// Total events.
    pub events: u64,
}

impl Dfg {
    /// The DFG of a materialized trace set, in collection order.
    pub fn of_trace_set(set: &TraceSet) -> Dfg {
        let mut b = DfgBuilder::new();
        // Columnar scan: only the three columns the DFG needs.
        let (machines, fos, codes) = (
            set.records.machines(),
            set.records.file_objects(),
            set.records.codes(),
        );
        for i in 0..set.records.len() {
            b.push(machines[i], fos[i], codes[i]);
        }
        b.finish()
    }

    /// Weighted Jaccard similarity with `other` in `[0, 1]`: the node,
    /// start, and edge frequency maps are compared as one multiset,
    /// `Σ min / Σ max` over the key union. Identical graphs score
    /// exactly `1.0` (including two empty graphs); any frequency drift
    /// scores strictly below it.
    pub fn similarity(&self, other: &Dfg) -> f64 {
        let mut min_sum: u64 = 0;
        let mut max_sum: u64 = 0;
        let mut fold = |a: &BTreeMap<u64, u64>, b: &BTreeMap<u64, u64>| {
            // Union of keys, each visited once.
            let union = a.keys().chain(b.keys().filter(|k| !a.contains_key(k)));
            for key in union {
                let x = a.get(key).copied().unwrap_or(0);
                let y = b.get(key).copied().unwrap_or(0);
                min_sum += x.min(y);
                max_sum += x.max(y);
            }
        };
        // Re-key each map into a common u64 space so one pass handles
        // nodes (tag 0), starts (tag 1) and edges (tag 2).
        let widen = |m: &BTreeMap<u8, u64>, tag: u64| -> BTreeMap<u64, u64> {
            m.iter()
                .map(|(&k, &v)| ((tag << 32) | u64::from(k), v))
                .collect()
        };
        let widen_edges = |m: &BTreeMap<(u8, u8), u64>| -> BTreeMap<u64, u64> {
            m.iter()
                .map(|(&(a, b), &v)| ((2u64 << 32) | (u64::from(a) << 8) | u64::from(b), v))
                .collect()
        };
        fold(&widen(&self.nodes, 0), &widen(&other.nodes, 0));
        fold(&widen(&self.starts, 1), &widen(&other.starts, 1));
        fold(&widen_edges(&self.edges), &widen_edges(&other.edges));
        if max_sum == 0 {
            return 1.0;
        }
        min_sum as f64 / max_sum as f64
    }

    /// The `n` most frequent edges, descending.
    pub fn top_edges(&self, n: usize) -> Vec<((u8, u8), u64)> {
        let mut edges: Vec<((u8, u8), u64)> = self.edges.iter().map(|(&k, &v)| (k, v)).collect();
        edges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        edges.truncate(n);
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dfg {
        let mut b = DfgBuilder::new();
        // Two cases on one machine: create-read-read-close and
        // create-write-close, interleaved.
        for (fo, code) in [(1, 0u8), (2, 0), (1, 3), (2, 4), (1, 3), (1, 18), (2, 18)] {
            b.push(0, fo, code);
        }
        b.finish()
    }

    #[test]
    fn frequencies_count_follows_relations() {
        let dfg = sample();
        assert_eq!(dfg.cases, 2);
        assert_eq!(dfg.events, 7);
        assert_eq!(dfg.starts.get(&0), Some(&2));
        assert_eq!(dfg.edges.get(&(0, 3)), Some(&1));
        assert_eq!(dfg.edges.get(&(3, 3)), Some(&1));
        assert_eq!(dfg.edges.get(&(3, 18)), Some(&1));
        assert_eq!(dfg.edges.get(&(0, 4)), Some(&1));
        assert_eq!(dfg.edges.get(&(4, 18)), Some(&1));
        assert_eq!(dfg.nodes.get(&0), Some(&2));
        assert_eq!(dfg.nodes.get(&3), Some(&2));
    }

    #[test]
    fn identical_graphs_score_exactly_one() {
        let a = sample();
        let b = sample();
        assert_eq!(a.similarity(&b), 1.0);
        assert_eq!(Dfg::default().similarity(&Dfg::default()), 1.0);
    }

    #[test]
    fn any_drift_scores_below_one() {
        let a = sample();
        let mut b = DfgBuilder::new();
        for (fo, code) in [(1, 0u8), (2, 0), (1, 3), (2, 4), (1, 3), (2, 18)] {
            // One close event missing from case 1.
            b.push(0, fo, code);
        }
        let b = b.finish();
        let sim = a.similarity(&b);
        assert!(sim < 1.0, "dropped event must lower similarity, got {sim}");
        assert!(sim > 0.0);
        // Symmetric.
        assert_eq!(a.similarity(&b), b.similarity(&a));
    }

    #[test]
    fn interleaving_cases_does_not_change_the_graph() {
        // Same per-case sequences pushed in a different global order.
        let mut b = DfgBuilder::new();
        for (fo, code) in [(1, 0u8), (1, 3), (1, 3), (1, 18), (2, 0), (2, 4), (2, 18)] {
            b.push(0, fo, code);
        }
        assert_eq!(sample().similarity(&b.finish()), 1.0);
    }

    #[test]
    fn top_edges_sorts_by_frequency() {
        let mut b = DfgBuilder::new();
        for _ in 0..3 {
            b.push(0, 1, 3);
        }
        b.push(0, 1, 18);
        let dfg = b.finish();
        let top = dfg.top_edges(1);
        assert_eq!(top, vec![((3, 3), 2)]);
    }
}
