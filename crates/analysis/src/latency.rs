//! Request latency and size by access path — figures 13 and 14, §10.
//!
//! The four major request classes: FastIO read, FastIO write, IRP read,
//! IRP write (non-paging application requests). Figure 13 plots their
//! completion-latency CDFs — FastIO resolves in the cache in microseconds
//! while IRPs pay packet overhead and possibly a disk access. Figure 14
//! plots the request-size CDFs — FastIO requests skew smaller, because
//! multi-operation readers use targeted buffers (§10).

use nt_trace::TraceRecord;

use crate::cdf::Cdf;
use crate::schema::TraceSet;
use crate::sketch::HistogramSketch;

/// The per-class latency and size CDFs.
pub struct PathLatencies {
    /// FastIO read latency (microseconds).
    pub fastio_read_latency: Cdf,
    /// FastIO write latency.
    pub fastio_write_latency: Cdf,
    /// IRP read latency (non-paging).
    pub irp_read_latency: Cdf,
    /// IRP write latency (non-paging).
    pub irp_write_latency: Cdf,
    /// FastIO read request sizes (bytes).
    pub fastio_read_size: Cdf,
    /// FastIO write sizes.
    pub fastio_write_size: Cdf,
    /// IRP read sizes.
    pub irp_read_size: Cdf,
    /// IRP write sizes.
    pub irp_write_size: Cdf,
    /// Fraction of reads on the FastIO path (§10: 59 %).
    pub fastio_read_fraction: f64,
    /// Fraction of writes on the FastIO path (§10: 96 %).
    pub fastio_write_fraction: f64,
}

/// Computes the figure-13/14 CDFs from non-paging data records.
pub fn path_latencies(ts: &TraceSet) -> PathLatencies {
    let mut frl = Vec::new();
    let mut fwl = Vec::new();
    let mut irl = Vec::new();
    let mut iwl = Vec::new();
    let mut frs = Vec::new();
    let mut fws = Vec::new();
    let mut irs = Vec::new();
    let mut iws = Vec::new();
    // Columnar scan: codes + flags select data records, then only the
    // status, timestamp and length columns are touched.
    let t = &ts.records;
    let (statuses, starts, ends, lengths) =
        (t.statuses(), t.start_ticks(), t.end_ticks(), t.lengths());
    for i in 0..t.len() {
        let kind = t.kind_at(i);
        if !(kind.is_read() || kind.is_write()) || t.is_paging(i) {
            continue;
        }
        if statuses[i].is_error() {
            continue;
        }
        let lat_us = ends[i].saturating_sub(starts[i]) as f64 / 10.0;
        let size = lengths[i] as f64;
        match (kind.is_fastio(), kind.is_read()) {
            (true, true) => {
                frl.push(lat_us);
                frs.push(size);
            }
            (true, false) => {
                fwl.push(lat_us);
                fws.push(size);
            }
            (false, true) => {
                irl.push(lat_us);
                irs.push(size);
            }
            (false, false) => {
                iwl.push(lat_us);
                iws.push(size);
            }
        }
    }
    let reads = frl.len() + irl.len();
    let writes = fwl.len() + iwl.len();
    PathLatencies {
        fastio_read_fraction: if reads == 0 {
            0.0
        } else {
            frl.len() as f64 / reads as f64
        },
        fastio_write_fraction: if writes == 0 {
            0.0
        } else {
            fwl.len() as f64 / writes as f64
        },
        fastio_read_latency: Cdf::from_samples(frl),
        fastio_write_latency: Cdf::from_samples(fwl),
        irp_read_latency: Cdf::from_samples(irl),
        irp_write_latency: Cdf::from_samples(iwl),
        fastio_read_size: Cdf::from_samples(frs),
        fastio_write_size: Cdf::from_samples(fws),
        irp_read_size: Cdf::from_samples(irs),
        irp_write_size: Cdf::from_samples(iws),
    }
}

/// Streaming counterpart of [`path_latencies`]: per-class latency and
/// size sketches plus the FastIO fractions, maintained record by record.
#[derive(Debug, Default, PartialEq)]
pub struct LatencyAccumulator {
    /// FastIO read latency sketch (µs).
    pub fastio_read_latency: HistogramSketch,
    /// FastIO write latency sketch (µs).
    pub fastio_write_latency: HistogramSketch,
    /// IRP read latency sketch (µs).
    pub irp_read_latency: HistogramSketch,
    /// IRP write latency sketch (µs).
    pub irp_write_latency: HistogramSketch,
    /// FastIO read size sketch (bytes).
    pub fastio_read_size: HistogramSketch,
    /// FastIO write size sketch (bytes).
    pub fastio_write_size: HistogramSketch,
    /// IRP read size sketch (bytes).
    pub irp_read_size: HistogramSketch,
    /// IRP write size sketch (bytes).
    pub irp_write_size: HistogramSketch,
}

impl LatencyAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        LatencyAccumulator::default()
    }

    /// Feeds one record; paging and error records are ignored, exactly
    /// like the batch path.
    pub fn push_record(&mut self, rec: &TraceRecord) {
        let kind = rec.kind();
        if !(kind.is_read() || kind.is_write()) || rec.is_paging() || rec.status.is_error() {
            return;
        }
        let lat_us = rec.latency_ticks() as f64 / 10.0;
        let size = rec.length as f64;
        let (lat, sz) = match (kind.is_fastio(), kind.is_read()) {
            (true, true) => (&mut self.fastio_read_latency, &mut self.fastio_read_size),
            (true, false) => (&mut self.fastio_write_latency, &mut self.fastio_write_size),
            (false, true) => (&mut self.irp_read_latency, &mut self.irp_read_size),
            (false, false) => (&mut self.irp_write_latency, &mut self.irp_write_size),
        };
        lat.record(lat_us);
        sz.record(size);
    }

    /// Merges another machine's accumulator in.
    pub fn merge(&mut self, other: &LatencyAccumulator) {
        self.fastio_read_latency.merge(&other.fastio_read_latency);
        self.fastio_write_latency.merge(&other.fastio_write_latency);
        self.irp_read_latency.merge(&other.irp_read_latency);
        self.irp_write_latency.merge(&other.irp_write_latency);
        self.fastio_read_size.merge(&other.fastio_read_size);
        self.fastio_write_size.merge(&other.fastio_write_size);
        self.irp_read_size.merge(&other.irp_read_size);
        self.irp_write_size.merge(&other.irp_write_size);
    }

    /// Fraction of reads on the FastIO path.
    pub fn fastio_read_fraction(&self) -> f64 {
        let total = self.fastio_read_latency.len() + self.irp_read_latency.len();
        if total == 0 {
            0.0
        } else {
            self.fastio_read_latency.len() as f64 / total as f64
        }
    }

    /// Fraction of writes on the FastIO path.
    pub fn fastio_write_fraction(&self) -> f64 {
        let total = self.fastio_write_latency.len() + self.irp_write_latency.len();
        if total == 0 {
            0.0
        } else {
            self.fastio_write_latency.len() as f64 / total as f64
        }
    }

    /// Bytes of live sketch state.
    pub fn state_bytes(&self) -> usize {
        self.fastio_read_latency.state_bytes()
            + self.fastio_write_latency.state_bytes()
            + self.irp_read_latency.state_bytes()
            + self.irp_write_latency.state_bytes()
            + self.fastio_read_size.state_bytes()
            + self.fastio_write_size.state_bytes()
            + self.irp_read_size.state_bytes()
            + self.irp_write_size.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn streaming_fractions_match_batch() {
        let ts = synthetic_trace_set(500, 33);
        let batch = path_latencies(&ts);
        let mut acc = LatencyAccumulator::new();
        for (_, rec) in ts.records.iter() {
            acc.push_record(&rec);
        }
        assert_eq!(acc.fastio_read_fraction(), batch.fastio_read_fraction);
        assert_eq!(acc.fastio_write_fraction(), batch.fastio_write_fraction);
        assert_eq!(
            acc.fastio_read_latency.len(),
            batch.fastio_read_latency.len() as u64
        );
        let exact = batch.irp_read_latency.median().unwrap();
        let est = acc.irp_read_latency.median().unwrap();
        assert!((est - exact).abs() / exact < 0.05, "{est} vs {exact}");
    }

    #[test]
    fn fastio_is_faster_than_irp() {
        let ts = synthetic_trace_set(500, 31);
        let p = path_latencies(&ts);
        let f = p.fastio_read_latency.median().unwrap();
        let i = p.irp_read_latency.median().unwrap();
        assert!(f < i, "FastIO median {f}us vs IRP {i}us");
    }

    #[test]
    fn write_path_is_mostly_fastio() {
        let ts = synthetic_trace_set(500, 32);
        let p = path_latencies(&ts);
        assert!(
            p.fastio_write_fraction > 0.7,
            "§10: ≈96 % of writes ride FastIO, got {}",
            p.fastio_write_fraction
        );
        assert!(p.fastio_read_fraction > 0.3);
        assert!(p.fastio_read_fraction < 1.0);
    }
}
