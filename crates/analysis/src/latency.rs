//! Request latency and size by access path — figures 13 and 14, §10.
//!
//! The four major request classes: FastIO read, FastIO write, IRP read,
//! IRP write (non-paging application requests). Figure 13 plots their
//! completion-latency CDFs — FastIO resolves in the cache in microseconds
//! while IRPs pay packet overhead and possibly a disk access. Figure 14
//! plots the request-size CDFs — FastIO requests skew smaller, because
//! multi-operation readers use targeted buffers (§10).

use crate::cdf::Cdf;
use crate::schema::TraceSet;

/// The per-class latency and size CDFs.
pub struct PathLatencies {
    /// FastIO read latency (microseconds).
    pub fastio_read_latency: Cdf,
    /// FastIO write latency.
    pub fastio_write_latency: Cdf,
    /// IRP read latency (non-paging).
    pub irp_read_latency: Cdf,
    /// IRP write latency (non-paging).
    pub irp_write_latency: Cdf,
    /// FastIO read request sizes (bytes).
    pub fastio_read_size: Cdf,
    /// FastIO write sizes.
    pub fastio_write_size: Cdf,
    /// IRP read sizes.
    pub irp_read_size: Cdf,
    /// IRP write sizes.
    pub irp_write_size: Cdf,
    /// Fraction of reads on the FastIO path (§10: 59 %).
    pub fastio_read_fraction: f64,
    /// Fraction of writes on the FastIO path (§10: 96 %).
    pub fastio_write_fraction: f64,
}

/// Computes the figure-13/14 CDFs from non-paging data records.
pub fn path_latencies(ts: &TraceSet) -> PathLatencies {
    let mut frl = Vec::new();
    let mut fwl = Vec::new();
    let mut irl = Vec::new();
    let mut iwl = Vec::new();
    let mut frs = Vec::new();
    let mut fws = Vec::new();
    let mut irs = Vec::new();
    let mut iws = Vec::new();
    for (_, rec) in ts.data_records() {
        if rec.status.is_error() {
            continue;
        }
        let lat_us = rec.latency_ticks() as f64 / 10.0;
        let size = rec.length as f64;
        match (rec.kind().is_fastio(), rec.kind().is_read()) {
            (true, true) => {
                frl.push(lat_us);
                frs.push(size);
            }
            (true, false) => {
                fwl.push(lat_us);
                fws.push(size);
            }
            (false, true) => {
                irl.push(lat_us);
                irs.push(size);
            }
            (false, false) => {
                iwl.push(lat_us);
                iws.push(size);
            }
        }
    }
    let reads = frl.len() + irl.len();
    let writes = fwl.len() + iwl.len();
    PathLatencies {
        fastio_read_fraction: if reads == 0 {
            0.0
        } else {
            frl.len() as f64 / reads as f64
        },
        fastio_write_fraction: if writes == 0 {
            0.0
        } else {
            fwl.len() as f64 / writes as f64
        },
        fastio_read_latency: Cdf::from_samples(frl),
        fastio_write_latency: Cdf::from_samples(fwl),
        irp_read_latency: Cdf::from_samples(irl),
        irp_write_latency: Cdf::from_samples(iwl),
        fastio_read_size: Cdf::from_samples(frs),
        fastio_write_size: Cdf::from_samples(fws),
        irp_read_size: Cdf::from_samples(irs),
        irp_write_size: Cdf::from_samples(iws),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn fastio_is_faster_than_irp() {
        let ts = synthetic_trace_set(500, 31);
        let p = path_latencies(&ts);
        let f = p.fastio_read_latency.median().unwrap();
        let i = p.irp_read_latency.median().unwrap();
        assert!(f < i, "FastIO median {f}us vs IRP {i}us");
    }

    #[test]
    fn write_path_is_mostly_fastio() {
        let ts = synthetic_trace_set(500, 32);
        let p = path_latencies(&ts);
        assert!(
            p.fastio_write_fraction > 0.7,
            "§10: ≈96 % of writes ride FastIO, got {}",
            p.fastio_write_fraction
        );
        assert!(p.fastio_read_fraction > 0.3);
        assert!(p.fastio_read_fraction < 1.0);
    }
}
