//! Per-process activity — the §7 observation that file-system traffic is
//! process-controlled.
//!
//! "More than 92 % of the file accesses in our traces were from processes
//! that take no direct user input … process lifetime, the number of
//! dynamic loadable libraries accessed, the number of files open per
//! process, and spacing of file accesses, all obey the characteristics of
//! heavy-tail distributions."

use std::collections::HashMap;

use crate::schema::TraceSet;
use crate::tails::hill_alpha;

/// Aggregates for one (machine, process) pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProcessStats {
    /// Open attempts issued.
    pub opens: u64,
    /// Data sessions.
    pub data_sessions: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Distinct files touched (by FCB).
    pub distinct_files: u64,
    /// First activity (ticks).
    pub first_ticks: u64,
    /// Last activity (ticks).
    pub last_ticks: u64,
    /// Maximum concurrently-open sessions observed.
    pub max_concurrent_opens: u32,
}

impl ProcessStats {
    /// Observable activity span — the trace-visible process lifetime.
    pub fn span_ticks(&self) -> u64 {
        self.last_ticks.saturating_sub(self.first_ticks)
    }
}

/// The §7 process analysis.
pub struct ProcessAnalysis {
    /// Stats per (machine, process id).
    pub per_process: HashMap<(u32, u32), ProcessStats>,
    /// Hill α of process activity spans.
    pub span_alpha: f64,
    /// Hill α of files-open-per-process counts.
    pub files_alpha: f64,
    /// Fraction of open attempts made by the busiest decile of processes.
    pub top_decile_share: f64,
}

/// Computes per-process statistics from the instance table.
pub fn process_analysis(ts: &TraceSet) -> ProcessAnalysis {
    let mut per_process: HashMap<(u32, u32), ProcessStats> = HashMap::new();
    let mut files: HashMap<(u32, u32), std::collections::HashSet<u64>> = HashMap::new();
    // Sweep for concurrency: per process, order open/close boundaries.
    let mut boundaries: HashMap<(u32, u32), Vec<(u64, i32)>> = HashMap::new();

    for inst in &ts.instances {
        let key = (inst.machine, inst.process);
        let s = per_process.entry(key).or_insert(ProcessStats {
            first_ticks: u64::MAX,
            ..ProcessStats::default()
        });
        s.opens += 1;
        if inst.is_data() {
            s.data_sessions += 1;
        }
        s.bytes += inst.bytes();
        s.first_ticks = s.first_ticks.min(inst.open_start_ticks);
        s.last_ticks = s
            .last_ticks
            .max(inst.cleanup_ticks.unwrap_or(inst.open_end_ticks));
        if inst.opened() {
            files.entry(key).or_default().insert(inst.fcb);
            let b = boundaries.entry(key).or_default();
            b.push((inst.open_start_ticks, 1));
            if let Some(c) = inst.cleanup_ticks {
                b.push((c, -1));
            }
        }
    }
    for (key, set) in files {
        if let Some(s) = per_process.get_mut(&key) {
            s.distinct_files = set.len() as u64;
        }
    }
    for (key, mut b) in boundaries {
        b.sort_unstable();
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, d) in b {
            cur += d;
            max = max.max(cur);
        }
        if let Some(s) = per_process.get_mut(&key) {
            s.max_concurrent_opens = max.max(0) as u32;
        }
    }

    let spans: Vec<f64> = per_process
        .values()
        .map(|s| s.span_ticks() as f64)
        .filter(|&x| x > 0.0)
        .collect();
    let file_counts: Vec<f64> = per_process
        .values()
        .map(|s| s.distinct_files as f64)
        .filter(|&x| x > 0.0)
        .collect();

    let mut opens: Vec<u64> = per_process.values().map(|s| s.opens).collect();
    opens.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = opens.iter().sum();
    let top = (opens.len().div_ceil(10)).max(1);
    let top_share = if total == 0 {
        0.0
    } else {
        opens.iter().take(top).sum::<u64>() as f64 / total as f64
    };

    ProcessAnalysis {
        span_alpha: hill_alpha(&spans),
        files_alpha: hill_alpha(&file_counts),
        top_decile_share: top_share,
        per_process,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn per_process_totals_conserve() {
        let ts = synthetic_trace_set(500, 95);
        let a = process_analysis(&ts);
        let opens: u64 = a.per_process.values().map(|s| s.opens).sum();
        assert_eq!(opens as usize, ts.instances.len());
        assert!(a.per_process.len() >= 2, "multiple processes");
        for s in a.per_process.values() {
            assert!(s.last_ticks >= s.first_ticks);
            assert!(s.distinct_files <= s.opens);
        }
    }

    #[test]
    fn concurrency_detected() {
        let ts = synthetic_trace_set(500, 96);
        let a = process_analysis(&ts);
        let max = a
            .per_process
            .values()
            .map(|s| s.max_concurrent_opens)
            .max()
            .unwrap_or(0);
        assert!(max >= 1);
    }

    #[test]
    fn concentration_is_reported() {
        let ts = synthetic_trace_set(500, 97);
        let a = process_analysis(&ts);
        assert!(a.top_decile_share > 0.0 && a.top_decile_share <= 1.0);
        assert!(a.span_alpha >= 0.0);
        assert!(a.files_alpha >= 0.0);
    }
}
