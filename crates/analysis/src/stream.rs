//! Streaming ingestion sinks — the bounded-memory analysis path.
//!
//! The study's own pipeline post-processed ~190 million records into a
//! data warehouse; materializing that stream in memory is exactly what
//! `Scale::Paper` could not do. This module replaces the
//! store-everything trace path: each machine gets a [`MachineSink`] that
//! consumes shipments *as they arrive from the collection servers*,
//! reassembles the agent's sequence order, drives the instance-table
//! state machine ([`crate::schema::InstanceBuilder`]) and folds every
//! record and finished session into online aggregates — exact counters,
//! [`crate::sketch::HistogramSketch`] CDF sketches, and
//! [`crate::sketch::SpillRuns`] spill buffers for the tail analyses that
//! need order statistics. [`AnalysisSet`] bundles the sinks into a
//! [`nt_trace::ShipmentConsumer`] and merges them deterministically into
//! a [`StudySummary`] at shutdown.
//!
//! With `retain` enabled the sinks additionally keep the raw stream and
//! rebuild the exact [`TraceSet`] fact tables at the end — that mode
//! exists so smoke-scale tests can prove the streaming path is
//! byte-identical to the legacy in-memory path; paper-scale runs leave
//! it off and stay bounded.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use nt_obs::{Hop, Phase, ShipmentTracer, Telemetry};
use nt_trace::{BatchMeta, MachineId, NameRecord, ShipmentConsumer, TraceRecord, RECORD_SIZE};

use crate::arrivals::ArrivalAccumulator;
use crate::latency::LatencyAccumulator;
use crate::ops::OpsAccumulator;
use crate::schema::{InstanceBuilder, TraceSet};
use crate::sessions::SessionAccumulator;
use crate::sizes::SizeAccumulator;
use crate::sketch::SpillRuns;
use crate::tails::hill_estimator_from_tail;

/// One machine's reassembled stream, in [`TraceSet::build`] input shape.
type MachineStream = (u32, Vec<TraceRecord>, Vec<NameRecord>);

/// Configuration of the streaming sinks.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Keep the raw records and names and rebuild the exact [`TraceSet`]
    /// at finish. Defeats the memory bound — smoke-scale testing only.
    pub retain: bool,
    /// Directory for spill runs; `None` keeps tail samples in memory
    /// (fine below paper scale).
    pub spill_dir: Option<PathBuf>,
    /// Resident samples per spill buffer before a sorted run is written.
    pub spill_buffer: usize,
    /// Telemetry handle for analysis-ingest spans; off by default. The
    /// whole streaming fleet shares one handle (the ingest phase has no
    /// machine identity), so the study-side profiler sees every batch.
    pub telemetry: Telemetry,
    /// Shipment tracer for causal `analysis.ingest` spans; off by
    /// default. Sinks parent-link each stamped batch to the collector
    /// hop carried in its [`BatchMeta`].
    pub tracer: ShipmentTracer,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            retain: false,
            spill_dir: None,
            spill_buffer: 65_536,
            telemetry: Telemetry::off(),
            tracer: ShipmentTracer::off(),
        }
    }
}

/// One machine's streaming sink.
///
/// Shipments may arrive through any collection server, but they carry
/// the agent's own sequence stamp; the sink parks out-of-order batches
/// and processes them in sequence, so the instance state machine sees
/// the agent's stream exactly as the legacy
/// `CollectionServer::records_for` reassembly would replay it. Refused
/// shipments are retried by the agent with the *same* stamp, so a gap
/// can only ever close (or the stream ends and `finish` drains the park
/// in stamp order).
pub struct MachineSink {
    machine: u32,
    retain: bool,
    next_seq: u64,
    parked: BTreeMap<u64, Vec<TraceRecord>>,
    parked_records: usize,
    builder: InstanceBuilder,
    /// §8 operational counters and sketches.
    pub ops: OpsAccumulator,
    /// Figure-13/14 latency/size sketches.
    pub latency: LatencyAccumulator,
    /// Figure-3/4 accessed-size sketches.
    pub sizes: SizeAccumulator,
    /// Figure-5/12 duration sketches.
    pub sessions: SessionAccumulator,
    /// Figure-11 inter-arrival sketches.
    pub arrivals: ArrivalAccumulator,
    size_spill: SpillRuns,
    duration_spill: SpillRuns,
    records: u64,
    names: u64,
    name_arrival: u64,
    retained_records: Vec<TraceRecord>,
    retained_names: Vec<(u64, NameRecord)>,
    peak_open_sessions: usize,
    peak_parked_records: usize,
    peak_state_bytes: usize,
    telemetry: Telemetry,
    tracer: ShipmentTracer,
}

impl MachineSink {
    /// A sink for `machine` under `config`.
    pub fn new(machine: u32, config: &StreamConfig) -> Self {
        let spill = |tag: &str| {
            SpillRuns::new(
                config.spill_buffer,
                config.spill_dir.clone(),
                format!("m{machine}-{tag}"),
            )
        };
        MachineSink {
            machine,
            retain: config.retain,
            next_seq: 0,
            parked: BTreeMap::new(),
            parked_records: 0,
            builder: InstanceBuilder::new(machine),
            ops: OpsAccumulator::new(),
            latency: LatencyAccumulator::new(),
            sizes: SizeAccumulator::new(),
            sessions: SessionAccumulator::new(),
            arrivals: ArrivalAccumulator::new(),
            size_spill: spill("sizes"),
            duration_spill: spill("durations"),
            records: 0,
            names: 0,
            name_arrival: u64::MAX / 2,
            retained_records: Vec::new(),
            retained_names: Vec::new(),
            peak_open_sessions: 0,
            peak_parked_records: 0,
            peak_state_bytes: 0,
            telemetry: config.telemetry.clone(),
            tracer: config.tracer.clone(),
        }
    }

    /// Consumes one shipped buffer. Batches at the expected stamp (or
    /// unstamped ones) are processed immediately; future stamps park
    /// until the gap closes.
    pub fn on_batch(
        &mut self,
        seq: Option<u64>,
        records: Vec<TraceRecord>,
        meta: Option<BatchMeta>,
    ) {
        let _span = self.telemetry.span_child(Phase::Analysis, "analysis.batch");
        // The ingest hop marks *arrival* at the analysis tier; parked
        // batches still arrived now, so the span precedes the parking
        // discipline.
        if let (Some(meta), Some(seq)) = (meta, seq) {
            self.tracer.downstream(
                Hop::Analyze,
                meta.ctx,
                self.machine,
                seq,
                meta.deliver_ticks,
                records.len() as u64,
            );
        }
        match seq {
            Some(s) if s > self.next_seq => {
                self.parked_records += records.len();
                self.parked.insert(s, records);
                self.peak_parked_records = self.peak_parked_records.max(self.parked_records);
            }
            Some(s) if s == self.next_seq => {
                self.process(records);
                self.next_seq += 1;
                while let Some(parked) = self.parked.remove(&self.next_seq) {
                    self.parked_records -= parked.len();
                    self.process(parked);
                    self.next_seq += 1;
                }
            }
            // Stale stamp (the legacy store would keep it too) or
            // arrival-order shipping: process in place.
            _ => self.process(records),
        }
        self.note_peaks();
    }

    /// Consumes one file-object name record. Names only feed the path
    /// post-pass of the retained fact tables; without `retain` they are
    /// counted and dropped — that is what keeps the name dimension out
    /// of the paper-scale memory bound.
    pub fn on_name(&mut self, seq: Option<u64>, name: NameRecord) {
        self.names += 1;
        if self.retain {
            let key = seq.unwrap_or_else(|| {
                let k = self.name_arrival;
                self.name_arrival += 1;
                k
            });
            self.retained_names.push((key, name));
        }
    }

    fn process(&mut self, records: Vec<TraceRecord>) {
        self.records += records.len() as u64;
        for rec in &records {
            self.ops.push_record(rec);
            self.latency.push_record(rec);
            self.builder.push(rec);
        }
        if self.retain {
            self.retained_records.extend(records);
        }
        for inst in self.builder.drain_done() {
            self.ops.push_instance(&inst);
            self.sessions.push_instance(&inst);
            self.sizes.push_instance(&inst);
            self.arrivals.push_instance(&inst);
            if inst.usage_class().is_some() {
                self.size_spill.push(inst.file_size.max(1) as f64);
            }
            if let Some(t) = inst.duration_ticks() {
                let ms = t as f64 / 10_000.0;
                if ms > 0.0 {
                    self.duration_spill.push(ms);
                }
            }
        }
        // Sampled here — once per batch *processed*, in stamp order —
        // rather than per batch *delivered*, so the watermark cannot see
        // how far out of order failover delivery ran.
        self.peak_open_sessions = self.peak_open_sessions.max(self.builder.open_sessions());
    }

    fn note_peaks(&mut self) {
        self.peak_state_bytes = self.peak_state_bytes.max(self.state_bytes());
    }

    /// Bytes of live streaming state (excluding any `retain` buffers,
    /// which exist precisely to be unbounded).
    pub fn state_bytes(&self) -> usize {
        self.builder.state_bytes()
            + self.parked_records * RECORD_SIZE
            + self.ops.state_bytes()
            + self.latency.state_bytes()
            + self.sizes.state_bytes()
            + self.sessions.state_bytes()
            + self.arrivals.state_bytes()
            + self.size_spill.state_bytes()
            + self.duration_spill.state_bytes()
    }

    /// Records consumed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn into_summary(mut self) -> MachineSummary {
        // A gap that never closed (stream end): drain in stamp order.
        let parked: Vec<Vec<TraceRecord>> =
            std::mem::take(&mut self.parked).into_values().collect();
        for records in parked {
            self.process(records);
        }
        self.parked_records = 0;
        self.note_peaks();
        let builder = std::mem::replace(&mut self.builder, InstanceBuilder::new(self.machine));
        for inst in builder.finish() {
            self.ops.push_instance(&inst);
            self.sessions.push_instance(&inst);
            self.sizes.push_instance(&inst);
            self.arrivals.push_instance(&inst);
            if inst.usage_class().is_some() {
                self.size_spill.push(inst.file_size.max(1) as f64);
            }
            // Still-open sessions have no duration; nothing to spill.
        }
        let retained = self.retain.then(|| {
            self.retained_names.sort_by_key(|(k, _)| *k);
            (
                std::mem::take(&mut self.retained_records),
                self.retained_names
                    .drain(..)
                    .map(|(_, n)| n)
                    .collect::<Vec<NameRecord>>(),
            )
        });
        MachineSummary {
            machine: self.machine,
            records: self.records,
            names: self.names,
            ops: self.ops,
            latency: self.latency,
            sizes: self.sizes,
            sessions: self.sessions,
            arrivals: self.arrivals,
            size_spill: self.size_spill,
            duration_spill: self.duration_spill,
            retained,
            peak_open_sessions: self.peak_open_sessions,
            peak_parked_records: self.peak_parked_records,
            peak_state_bytes: self.peak_state_bytes,
        }
    }
}

struct MachineSummary {
    machine: u32,
    records: u64,
    names: u64,
    ops: OpsAccumulator,
    latency: LatencyAccumulator,
    sizes: SizeAccumulator,
    sessions: SessionAccumulator,
    arrivals: ArrivalAccumulator,
    size_spill: SpillRuns,
    duration_spill: SpillRuns,
    retained: Option<(Vec<TraceRecord>, Vec<NameRecord>)>,
    peak_open_sessions: usize,
    peak_parked_records: usize,
    peak_state_bytes: usize,
}

/// The merged study-level aggregates the streaming path produces.
///
/// `PartialEq` is exact: every field is an integer, an exactly-mergeable
/// sketch, or a float computed once at the fleet root — so two runs that
/// partitioned the fleet differently can be compared with `==`. The one
/// caveat: [`StudySummary::peak_parked_records`] and
/// [`StudySummary::peak_state_bytes`] are scheduling watermarks (how far
/// out of order failover delivery ran), not analytical facts — identity
/// tests zero them before comparing.
#[derive(Debug, Default, PartialEq)]
pub struct StudySummary {
    /// Machines that contributed.
    pub machines: usize,
    /// Records consumed.
    pub records: u64,
    /// Records consumed per machine, in machine-id order — the credit
    /// side of the `analysis.records` conservation account.
    pub machine_records: Vec<(u32, u64)>,
    /// Sinks whose mutex was poisoned by a panicking server thread. The
    /// counters up to the panic are preserved and merged; a non-zero
    /// value means the run had a collection fault, not clean data loss.
    pub poisoned_sinks: usize,
    /// Name records seen.
    pub names: u64,
    /// §8 operational counters and sketches, merged across machines.
    pub ops: OpsAccumulator,
    /// Figure-13/14 latency/size sketches.
    pub latency: LatencyAccumulator,
    /// Figure-3/4 accessed-size sketches.
    pub sizes: SizeAccumulator,
    /// Figure-5/12 duration sketches.
    pub sessions: SessionAccumulator,
    /// Figure-11 inter-arrival sketches.
    pub arrivals: ArrivalAccumulator,
    /// Hill α of accessed file sizes (top decile, from spilled order
    /// statistics).
    pub size_tail_alpha: f64,
    /// Hill α of session durations.
    pub duration_tail_alpha: f64,
    /// Largest concurrent open-session count across machines (summed
    /// peak, conservative).
    pub peak_open_sessions: usize,
    /// Largest parked (out-of-order) record backlog.
    pub peak_parked_records: usize,
    /// Largest live streaming state, bytes, summed across machines.
    pub peak_state_bytes: usize,
}

impl StudySummary {
    /// Ratio of read bytes to write bytes over successful requests.
    pub fn read_write_byte_ratio(&self) -> f64 {
        let w = self.ops.write_sizes.sum();
        if w <= 0.0 {
            0.0
        } else {
            self.ops.read_sizes.sum() / w
        }
    }
}

fn spill_alpha(spill: &mut SpillRuns) -> f64 {
    let n = spill.len() as usize;
    if n < 3 {
        return 0.0;
    }
    let k = (n / 10).max(2).min(n - 1);
    hill_estimator_from_tail(&spill.top_k(k + 1))
}

/// What [`AnalysisSet::finish`] returns.
pub struct StreamedAnalysis {
    /// The merged aggregates.
    pub summary: StudySummary,
    /// The exact fact tables, only under [`StreamConfig::retain`].
    pub trace_set: Option<TraceSet>,
}

/// A mergeable partial aggregate over any subset of machines — what one
/// shard collector (or an aggregator tier above it) hands its parent.
///
/// [`AnalysisSet::finish_shard`] produces one; [`ShardSummary::merge`]
/// folds a sibling in (exact: all state is integer or min/max, so any
/// merge tree over the same machines yields the same bytes); and
/// [`ShardSummary::into_analysis`] closes the hierarchy at the fleet
/// root, where the spill-backed tail alphas and the optional fact tables
/// are computed exactly once. The flat path is the one-shard special
/// case: [`AnalysisSet::finish`] is `finish_shard().into_analysis()`.
#[derive(Debug, Default)]
pub struct ShardSummary {
    /// The partial aggregates. Tail alphas stay 0 until the fleet root
    /// computes them in [`ShardSummary::into_analysis`].
    pub summary: StudySummary,
    size_spill: Option<SpillRuns>,
    duration_spill: Option<SpillRuns>,
    streams: Option<Vec<MachineStream>>,
}

impl ShardSummary {
    /// Absorbs a sibling shard (or aggregator) into this one.
    ///
    /// Callers that care about byte-identical fact tables and ledgers
    /// must merge siblings in machine-id order — the sketches don't care,
    /// but `machine_records` and the retained streams are appended in
    /// arrival order.
    pub fn merge(&mut self, other: ShardSummary) {
        let s = &mut self.summary;
        let o = other.summary;
        s.machines += o.machines;
        s.records += o.records;
        s.machine_records.extend(o.machine_records);
        s.poisoned_sinks += o.poisoned_sinks;
        s.names += o.names;
        s.ops.merge(&o.ops);
        s.latency.merge(&o.latency);
        s.sizes.merge(&o.sizes);
        s.sessions.merge(&o.sessions);
        s.arrivals.merge(&o.arrivals);
        s.peak_open_sessions += o.peak_open_sessions;
        s.peak_parked_records += o.peak_parked_records;
        s.peak_state_bytes += o.peak_state_bytes;
        match (&mut self.size_spill, other.size_spill) {
            (Some(all), Some(one)) => all.absorb(one),
            (slot @ None, one) => *slot = one,
            _ => {}
        }
        match (&mut self.duration_spill, other.duration_spill) {
            (Some(all), Some(one)) => all.absorb(one),
            (slot @ None, one) => *slot = one,
            _ => {}
        }
        match (&mut self.streams, other.streams) {
            (Some(all), Some(mut one)) => all.append(&mut one),
            (slot @ None, one) => *slot = one,
            _ => {}
        }
    }

    /// Closes the hierarchy: computes the spill-backed tail alphas and
    /// (under retain) rebuilds the exact fact tables. Fleet root only.
    pub fn into_analysis(mut self) -> StreamedAnalysis {
        if let Some(spill) = &mut self.size_spill {
            self.summary.size_tail_alpha = spill_alpha(spill);
        }
        if let Some(spill) = &mut self.duration_spill {
            self.summary.duration_tail_alpha = spill_alpha(spill);
        }
        let trace_set = self.streams.map(TraceSet::build);
        StreamedAnalysis {
            summary: self.summary,
            trace_set,
        }
    }
}

/// The full set of per-machine sinks, shared by the collection-server
/// threads: a [`ShipmentConsumer`] whose machines are fixed up front so
/// that concurrent servers contend only on the one sink a shipment
/// belongs to.
pub struct AnalysisSet {
    index: HashMap<u32, usize>,
    sinks: Vec<Mutex<MachineSink>>,
    retain: bool,
    telemetry: Telemetry,
}

impl AnalysisSet {
    /// Sinks for `machines` (order fixes the deterministic merge order)
    /// under `config`.
    pub fn new(machines: &[u32], config: &StreamConfig) -> Self {
        let mut ids: Vec<u32> = machines.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let index = ids.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        let sinks = ids
            .iter()
            .map(|&m| Mutex::new(MachineSink::new(m, config)))
            .collect();
        AnalysisSet {
            index,
            sinks,
            retain: config.retain,
            telemetry: config.telemetry.clone(),
        }
    }

    /// Locks one sink, recovering from poison: a server thread that
    /// panicked mid-batch must surface as a collection fault in the
    /// summary (`poisoned_sinks`), not abort every other machine's
    /// analysis.
    fn lock_sink(&self, i: usize) -> MutexGuard<'_, MachineSink> {
        self.sinks[i].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current live streaming state across machines, bytes. Racy by
    /// nature when servers are still running; exact after they stop.
    pub fn memory_estimate_bytes(&self) -> usize {
        (0..self.sinks.len())
            .map(|i| self.lock_sink(i).state_bytes())
            .sum()
    }

    /// Merges every sink — in machine-id order, so the result does not
    /// depend on server-thread interleaving — and produces the summary
    /// (plus the exact fact tables under `retain`).
    pub fn finish(self) -> StreamedAnalysis {
        self.finish_shard().into_analysis()
    }

    /// Merges every sink into a [`ShardSummary`] — the shard tier of the
    /// hierarchical reduce. Tail alphas and fact tables are deferred to
    /// [`ShardSummary::into_analysis`] at the fleet root.
    pub fn finish_shard(self) -> ShardSummary {
        let _span = self
            .telemetry
            .span_child(Phase::Analysis, "analysis.finish");
        let mut shard = ShardSummary {
            streams: self.retain.then(Vec::new),
            ..ShardSummary::default()
        };
        let summary = &mut shard.summary;
        for sink in self.sinks {
            if sink.is_poisoned() {
                summary.poisoned_sinks += 1;
            }
            let ms = sink
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .into_summary();
            summary.machines += 1;
            summary.records += ms.records;
            summary.machine_records.push((ms.machine, ms.records));
            summary.names += ms.names;
            summary.ops.merge(&ms.ops);
            summary.latency.merge(&ms.latency);
            summary.sizes.merge(&ms.sizes);
            summary.sessions.merge(&ms.sessions);
            summary.arrivals.merge(&ms.arrivals);
            summary.peak_open_sessions += ms.peak_open_sessions;
            summary.peak_parked_records += ms.peak_parked_records;
            summary.peak_state_bytes += ms.peak_state_bytes;
            match &mut shard.size_spill {
                None => shard.size_spill = Some(ms.size_spill),
                Some(all) => all.absorb(ms.size_spill),
            }
            match &mut shard.duration_spill {
                None => shard.duration_spill = Some(ms.duration_spill),
                Some(all) => all.absorb(ms.duration_spill),
            }
            if let (Some(streams), Some((records, names))) = (&mut shard.streams, ms.retained) {
                streams.push((ms.machine, records, names));
            }
        }
        shard
    }
}

impl ShipmentConsumer for AnalysisSet {
    fn batch(
        &self,
        machine: MachineId,
        seq: Option<u64>,
        records: Vec<TraceRecord>,
        meta: Option<BatchMeta>,
    ) {
        debug_assert!(
            self.index.contains_key(&machine.0),
            "shipment from unregistered machine {machine:?}"
        );
        if let Some(&i) = self.index.get(&machine.0) {
            self.lock_sink(i).on_batch(seq, records, meta);
        }
    }

    fn name(&self, machine: MachineId, seq: Option<u64>, name: NameRecord) {
        if let Some(&i) = self.index.get(&machine.0) {
            self.lock_sink(i).on_name(seq, name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::operational_stats;
    use crate::schema::test_support::synthetic_trace_set;

    /// Rebuilds shippable raw streams from a synthetic trace set.
    fn raw_streams(ts: &TraceSet) -> (Vec<TraceRecord>, Vec<NameRecord>) {
        let records: Vec<TraceRecord> = ts.records.iter().map(|(_, r)| r).collect();
        let mut names: Vec<NameRecord> = ts
            .names
            .iter()
            .map(|(&(_, fo), path)| NameRecord {
                file_object: fo,
                volume: 0,
                process: 0,
                path: path.clone(),
                at_ticks: 0,
            })
            .collect();
        names.sort_by_key(|n| n.file_object);
        (records, names)
    }

    #[test]
    fn retained_fact_tables_match_batch_build() {
        let ts = synthetic_trace_set(300, 41);
        let (records, names) = raw_streams(&ts);
        let config = StreamConfig {
            retain: true,
            ..StreamConfig::default()
        };
        let set = AnalysisSet::new(&[0], &config);
        // Ship in agent order but deliver the even-seq batches late to
        // exercise the reorderer.
        let chunks: Vec<Vec<TraceRecord>> = records.chunks(97).map(|c| c.to_vec()).collect();
        let late: Vec<(u64, Vec<TraceRecord>)> = chunks
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(i, c)| (i as u64, c.clone()))
            .collect();
        for (i, c) in chunks.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            set.batch(MachineId(0), Some(i as u64), c.clone(), None);
        }
        for (i, c) in late {
            set.batch(MachineId(0), Some(i), c, None);
        }
        for (i, n) in names.iter().enumerate() {
            set.name(MachineId(0), Some(i as u64), n.clone());
        }
        let out = set.finish();
        let rebuilt = out.trace_set.expect("retain mode");
        let direct = TraceSet::build(vec![(0, records, names)]);
        assert_eq!(rebuilt.records, direct.records);
        assert_eq!(rebuilt.instances, direct.instances);
        assert_eq!(rebuilt.names, direct.names);
        assert_eq!(out.summary.records, ts.records.len() as u64);
    }

    #[test]
    fn streaming_counters_match_batch_analysis() {
        let ts = synthetic_trace_set(400, 42);
        let (records, names) = raw_streams(&ts);
        let set = AnalysisSet::new(&[0], &StreamConfig::default());
        for (i, c) in records.chunks(128).enumerate() {
            set.batch(MachineId(0), Some(i as u64), c.to_vec(), None);
        }
        for (i, n) in names.into_iter().enumerate() {
            set.name(MachineId(0), Some(i as u64), n);
        }
        let out = set.finish();
        assert!(out.trace_set.is_none(), "no retain, no fact tables");
        let s = &out.summary;
        let batch = operational_stats(&ts);
        assert_eq!(s.ops.opens_ok, batch.opens_ok);
        assert_eq!(s.ops.opens_failed, batch.opens_failed);
        assert_eq!(s.ops.control_only_fraction(), batch.control_only_fraction);
        assert_eq!(s.ops.read_failure_rate(), batch.read_failure_rate);
        assert!(s.size_tail_alpha >= 0.0 && s.size_tail_alpha.is_finite());
        assert!(s.peak_state_bytes > 0);
        assert!(s.records > 0);
    }

    #[test]
    fn out_of_order_delivery_is_invisible() {
        let ts = synthetic_trace_set(250, 43);
        let (records, _) = raw_streams(&ts);
        let run = |scramble: bool| {
            let set = AnalysisSet::new(&[0], &StreamConfig::default());
            let chunks: Vec<(u64, Vec<TraceRecord>)> = records
                .chunks(64)
                .enumerate()
                .map(|(i, c)| (i as u64, c.to_vec()))
                .collect();
            if scramble {
                // Reverse within blocks of 5 — heavy local reordering.
                for block in chunks.chunks(5) {
                    for (i, c) in block.iter().rev() {
                        set.batch(MachineId(0), Some(*i), c.clone(), None);
                    }
                }
            } else {
                for (i, c) in chunks {
                    set.batch(MachineId(0), Some(i), c, None);
                }
            }
            set.finish().summary
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a.records, b.records);
        assert_eq!(a.ops.opens_ok, b.ops.opens_ok);
        assert_eq!(
            a.ops.read_gaps_us.quantile(0.9),
            b.ops.read_gaps_us.quantile(0.9)
        );
        assert_eq!(a.sessions.all.quantile(0.5), b.sessions.all.quantile(0.5));
        assert_eq!(a.size_tail_alpha, b.size_tail_alpha);
        assert!(b.peak_parked_records > 0, "the scramble really parked");
    }

    #[test]
    fn memory_estimate_moves_with_state() {
        let ts = synthetic_trace_set(150, 44);
        let (records, _) = raw_streams(&ts);
        let set = AnalysisSet::new(&[0], &StreamConfig::default());
        let before = set.memory_estimate_bytes();
        for (i, c) in records.chunks(256).enumerate() {
            set.batch(MachineId(0), Some(i as u64), c.to_vec(), None);
        }
        assert!(set.memory_estimate_bytes() > before);
    }
}
