//! Operational characteristics — §8 of the paper.
//!
//! Open/close behaviour, control-operation dominance, error rates and
//! read/write inter-arrival spacing.

use std::collections::HashMap;

use nt_io::{EventKind, MajorFunction};
use nt_trace::TraceRecord;

use crate::cdf::Cdf;
use crate::schema::{Instance, TraceSet, UsageClass};
use crate::sketch::HistogramSketch;

/// The §8 summary numbers.
#[derive(Clone, Debug)]
pub struct OperationalStats {
    /// Successful opens.
    pub opens_ok: u64,
    /// Failed opens (§8.4: 12 %).
    pub opens_failed: u64,
    /// Of the failed opens: not-found share (52 % in the study).
    pub open_fail_not_found: f64,
    /// Of the failed opens: name-collision share (31 %).
    pub open_fail_collision: f64,
    /// Fraction of successful opens used for control/directory work only
    /// (§8.3: 74 %).
    pub control_only_fraction: f64,
    /// Control-operation failure rate (§8.4: 8 %).
    pub control_failure_rate: f64,
    /// Read failure rate (§8.4: 0.2 %).
    pub read_failure_rate: f64,
    /// Write failure rate (the study found none).
    pub write_failure_rate: f64,
    /// Gap between consecutive reads within a session, µs (§8.2: 80 %
    /// within 90 µs).
    pub read_gaps_us: Cdf,
    /// Gap between consecutive writes within a session, µs (80 % within
    /// 30 µs).
    pub write_gaps_us: Cdf,
    /// Gap between cleanup and close for read-only sessions, µs (§8.1:
    /// the close arrives within microseconds for read caching).
    pub cleanup_to_close_read_us: Cdf,
    /// Gap between cleanup and close for written files, ms (§8.1: 1–4 s,
    /// the lazy-writer drain).
    pub cleanup_to_close_write_ms: Cdf,
    /// Read-size CDF (bytes), §8.2.
    pub read_sizes: Cdf,
    /// Write-size CDF (bytes).
    pub write_sizes: Cdf,
    /// Fraction of read requests that are exactly 512 or 4096 bytes
    /// (§8.2: 59 %).
    pub read_512_4096_fraction: f64,
    /// File-reuse: fraction of read-only-opened files opened more than
    /// once in the trace (§8.1: 24–40 %).
    pub read_reopen_fraction: f64,
}

/// Computes the §8 statistics.
pub fn operational_stats(ts: &TraceSet) -> OperationalStats {
    let mut opens_ok = 0u64;
    let mut opens_failed = 0u64;
    let mut fail_nf = 0u64;
    let mut fail_col = 0u64;
    let mut control_only = 0u64;
    for inst in &ts.instances {
        if inst.opened() {
            opens_ok += 1;
            if !inst.is_data() {
                control_only += 1;
            }
        } else {
            opens_failed += 1;
            match inst.open_status {
                nt_io::NtStatus::ObjectNameNotFound | nt_io::NtStatus::ObjectPathNotFound => {
                    fail_nf += 1
                }
                nt_io::NtStatus::ObjectNameCollision => fail_col += 1,
                _ => {}
            }
        }
    }

    // Error rates from the raw stream.
    let mut reads = (0u64, 0u64); // (ok, fail)
    let mut writes = (0u64, 0u64);
    let mut controls = (0u64, 0u64);
    let mut read_sizes = Vec::new();
    let mut write_sizes = Vec::new();
    let mut common = 0u64;
    // Columnar scan over codes/flags/statuses/lengths only.
    let (statuses, lengths) = (ts.records.statuses(), ts.records.lengths());
    for i in 0..ts.records.len() {
        let kind = ts.records.kind_at(i);
        if ts.records.is_paging(i) {
            continue;
        }
        if kind.is_read() {
            if statuses[i].is_error() {
                reads.1 += 1;
            } else {
                reads.0 += 1;
                read_sizes.push(lengths[i] as f64);
                if lengths[i] == 512 || lengths[i] == 4_096 {
                    common += 1;
                }
            }
        } else if kind.is_write() {
            if statuses[i].is_error() {
                writes.1 += 1;
            } else {
                writes.0 += 1;
                write_sizes.push(lengths[i] as f64);
            }
        } else if !matches!(
            kind,
            EventKind::Irp(MajorFunction::Create)
                | EventKind::Irp(MajorFunction::Cleanup)
                | EventKind::Irp(MajorFunction::Close)
        ) {
            if statuses[i].is_error() {
                controls.1 += 1;
            } else {
                controls.0 += 1;
            }
        }
    }

    // Intra-session request gaps.
    let read_gaps: Vec<f64> = ts
        .instances
        .iter()
        .flat_map(|i| i.read_gaps.iter().map(|&g| g as f64 / 10.0))
        .collect();
    let write_gaps: Vec<f64> = ts
        .instances
        .iter()
        .flat_map(|i| i.write_gaps.iter().map(|&g| g as f64 / 10.0))
        .collect();

    // Two-stage close gaps.
    let mut c2c_read = Vec::new();
    let mut c2c_write = Vec::new();
    for inst in &ts.instances {
        let (Some(cu), Some(cl)) = (inst.cleanup_ticks, inst.close_ticks) else {
            continue;
        };
        let gap = cl.saturating_sub(cu);
        if inst.writes > 0 {
            c2c_write.push(gap as f64 / 10_000.0);
        } else {
            c2c_read.push(gap as f64 / 10.0);
        }
    }

    // Reuse: read-opened paths seen more than once.
    let mut per_path: HashMap<(u32, &str), u32> = HashMap::new();
    for inst in &ts.instances {
        if inst.usage_class() == Some(UsageClass::ReadOnly) {
            if let Some(p) = inst.path.as_deref() {
                *per_path.entry((inst.machine, p)).or_default() += 1;
            }
        }
    }
    let reopened = per_path.values().filter(|&&c| c > 1).count();
    let read_reopen_fraction = if per_path.is_empty() {
        0.0
    } else {
        reopened as f64 / per_path.len() as f64
    };

    let rate = |(ok, fail): (u64, u64)| {
        if ok + fail == 0 {
            0.0
        } else {
            fail as f64 / (ok + fail) as f64
        }
    };
    OperationalStats {
        opens_ok,
        opens_failed,
        open_fail_not_found: if opens_failed == 0 {
            0.0
        } else {
            fail_nf as f64 / opens_failed as f64
        },
        open_fail_collision: if opens_failed == 0 {
            0.0
        } else {
            fail_col as f64 / opens_failed as f64
        },
        control_only_fraction: if opens_ok == 0 {
            0.0
        } else {
            control_only as f64 / opens_ok as f64
        },
        control_failure_rate: rate(controls),
        read_failure_rate: rate(reads),
        write_failure_rate: rate(writes),
        read_512_4096_fraction: if reads.0 == 0 {
            0.0
        } else {
            common as f64 / reads.0 as f64
        },
        read_gaps_us: Cdf::from_samples(read_gaps),
        write_gaps_us: Cdf::from_samples(write_gaps),
        cleanup_to_close_read_us: Cdf::from_samples(c2c_read),
        cleanup_to_close_write_ms: Cdf::from_samples(c2c_write),
        read_sizes: Cdf::from_samples(read_sizes),
        write_sizes: Cdf::from_samples(write_sizes),
        read_reopen_fraction,
    }
}

/// Streaming counterpart of [`operational_stats`]: the same §8 counters
/// and distributions maintained online over records and finished
/// instances, with sketches standing in for the exact CDFs.
///
/// `read_reopen_fraction` is the one §8 number this accumulator does not
/// reproduce — it needs the full per-path open multiset, which is exactly
/// the unbounded state the streaming path exists to avoid. Paper-scale
/// reuse analysis belongs to a dedicated pass over the spilled name
/// dimension.
#[derive(Debug, Default, PartialEq)]
pub struct OpsAccumulator {
    /// Successful opens.
    pub opens_ok: u64,
    /// Failed opens.
    pub opens_failed: u64,
    /// Failed opens that were not-found.
    pub fail_not_found: u64,
    /// Failed opens that were name collisions.
    pub fail_collision: u64,
    /// Successful opens with no data transfer.
    pub control_only: u64,
    /// (ok, failed) non-paging reads.
    pub reads: (u64, u64),
    /// (ok, failed) non-paging writes.
    pub writes: (u64, u64),
    /// (ok, failed) control operations.
    pub controls: (u64, u64),
    /// Reads of exactly 512 or 4096 bytes.
    pub common_read_sizes: u64,
    /// Read-size sketch (bytes).
    pub read_sizes: HistogramSketch,
    /// Write-size sketch (bytes).
    pub write_sizes: HistogramSketch,
    /// Intra-session read-gap sketch (µs).
    pub read_gaps_us: HistogramSketch,
    /// Intra-session write-gap sketch (µs).
    pub write_gaps_us: HistogramSketch,
    /// Cleanup-to-close gap for read sessions (µs).
    pub cleanup_to_close_read_us: HistogramSketch,
    /// Cleanup-to-close gap for written files (ms).
    pub cleanup_to_close_write_ms: HistogramSketch,
}

impl OpsAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        OpsAccumulator::default()
    }

    /// Feeds one raw record (the per-record half of §8).
    pub fn push_record(&mut self, rec: &TraceRecord) {
        let kind = rec.kind();
        if rec.is_paging() {
            return;
        }
        if kind.is_read() {
            if rec.status.is_error() {
                self.reads.1 += 1;
            } else {
                self.reads.0 += 1;
                self.read_sizes.record(rec.length as f64);
                if rec.length == 512 || rec.length == 4_096 {
                    self.common_read_sizes += 1;
                }
            }
        } else if kind.is_write() {
            if rec.status.is_error() {
                self.writes.1 += 1;
            } else {
                self.writes.0 += 1;
                self.write_sizes.record(rec.length as f64);
            }
        } else if !matches!(
            kind,
            EventKind::Irp(MajorFunction::Create)
                | EventKind::Irp(MajorFunction::Cleanup)
                | EventKind::Irp(MajorFunction::Close)
        ) {
            if rec.status.is_error() {
                self.controls.1 += 1;
            } else {
                self.controls.0 += 1;
            }
        }
    }

    /// Feeds one finished instance (the per-session half of §8).
    pub fn push_instance(&mut self, inst: &Instance) {
        if inst.opened() {
            self.opens_ok += 1;
            if !inst.is_data() {
                self.control_only += 1;
            }
        } else {
            self.opens_failed += 1;
            match inst.open_status {
                nt_io::NtStatus::ObjectNameNotFound | nt_io::NtStatus::ObjectPathNotFound => {
                    self.fail_not_found += 1
                }
                nt_io::NtStatus::ObjectNameCollision => self.fail_collision += 1,
                _ => {}
            }
        }
        for &g in &inst.read_gaps {
            self.read_gaps_us.record(g as f64 / 10.0);
        }
        for &g in &inst.write_gaps {
            self.write_gaps_us.record(g as f64 / 10.0);
        }
        if let (Some(cu), Some(cl)) = (inst.cleanup_ticks, inst.close_ticks) {
            let gap = cl.saturating_sub(cu);
            if inst.writes > 0 {
                self.cleanup_to_close_write_ms.record(gap as f64 / 10_000.0);
            } else {
                self.cleanup_to_close_read_us.record(gap as f64 / 10.0);
            }
        }
    }

    /// Merges another machine's accumulator in.
    pub fn merge(&mut self, other: &OpsAccumulator) {
        self.opens_ok += other.opens_ok;
        self.opens_failed += other.opens_failed;
        self.fail_not_found += other.fail_not_found;
        self.fail_collision += other.fail_collision;
        self.control_only += other.control_only;
        self.reads.0 += other.reads.0;
        self.reads.1 += other.reads.1;
        self.writes.0 += other.writes.0;
        self.writes.1 += other.writes.1;
        self.controls.0 += other.controls.0;
        self.controls.1 += other.controls.1;
        self.common_read_sizes += other.common_read_sizes;
        self.read_sizes.merge(&other.read_sizes);
        self.write_sizes.merge(&other.write_sizes);
        self.read_gaps_us.merge(&other.read_gaps_us);
        self.write_gaps_us.merge(&other.write_gaps_us);
        self.cleanup_to_close_read_us
            .merge(&other.cleanup_to_close_read_us);
        self.cleanup_to_close_write_ms
            .merge(&other.cleanup_to_close_write_ms);
    }

    /// Fraction of successful opens that moved no data.
    pub fn control_only_fraction(&self) -> f64 {
        if self.opens_ok == 0 {
            0.0
        } else {
            self.control_only as f64 / self.opens_ok as f64
        }
    }

    /// Not-found share of failed opens.
    pub fn open_fail_not_found(&self) -> f64 {
        if self.opens_failed == 0 {
            0.0
        } else {
            self.fail_not_found as f64 / self.opens_failed as f64
        }
    }

    /// Collision share of failed opens.
    pub fn open_fail_collision(&self) -> f64 {
        if self.opens_failed == 0 {
            0.0
        } else {
            self.fail_collision as f64 / self.opens_failed as f64
        }
    }

    fn rate((ok, fail): (u64, u64)) -> f64 {
        if ok + fail == 0 {
            0.0
        } else {
            fail as f64 / (ok + fail) as f64
        }
    }

    /// Read failure rate.
    pub fn read_failure_rate(&self) -> f64 {
        Self::rate(self.reads)
    }

    /// Write failure rate.
    pub fn write_failure_rate(&self) -> f64 {
        Self::rate(self.writes)
    }

    /// Control failure rate.
    pub fn control_failure_rate(&self) -> f64 {
        Self::rate(self.controls)
    }

    /// Fraction of successful reads sized exactly 512 or 4096 bytes.
    pub fn read_512_4096_fraction(&self) -> f64 {
        if self.reads.0 == 0 {
            0.0
        } else {
            self.common_read_sizes as f64 / self.reads.0 as f64
        }
    }

    /// Bytes of live sketch state.
    pub fn state_bytes(&self) -> usize {
        self.read_sizes.state_bytes()
            + self.write_sizes.state_bytes()
            + self.read_gaps_us.state_bytes()
            + self.write_gaps_us.state_bytes()
            + self.cleanup_to_close_read_us.state_bytes()
            + self.cleanup_to_close_write_ms.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::test_support::synthetic_trace_set;

    #[test]
    fn streaming_counters_match_batch() {
        let ts = synthetic_trace_set(600, 85);
        let batch = operational_stats(&ts);
        let mut acc = OpsAccumulator::new();
        for (_, rec) in ts.records.iter() {
            acc.push_record(&rec);
        }
        for inst in &ts.instances {
            acc.push_instance(inst);
        }
        assert_eq!(acc.opens_ok, batch.opens_ok);
        assert_eq!(acc.opens_failed, batch.opens_failed);
        assert_eq!(acc.control_only_fraction(), batch.control_only_fraction);
        assert_eq!(acc.open_fail_not_found(), batch.open_fail_not_found);
        assert_eq!(acc.read_failure_rate(), batch.read_failure_rate);
        assert_eq!(acc.write_failure_rate(), batch.write_failure_rate);
        assert_eq!(acc.control_failure_rate(), batch.control_failure_rate);
        assert_eq!(acc.read_512_4096_fraction(), batch.read_512_4096_fraction);
        assert_eq!(acc.read_gaps_us.len(), batch.read_gaps_us.len() as u64);
        assert_eq!(acc.read_sizes.len(), batch.read_sizes.len() as u64);
        // Sketch medians track the exact CDF medians within bucket error.
        if let (Some(exact), Some(est)) = (batch.read_sizes.median(), acc.read_sizes.median()) {
            assert!((est - exact).abs() / exact < 0.05, "{est} vs {exact}");
        }
    }

    #[test]
    fn accumulator_merge_is_sum() {
        let ts = synthetic_trace_set(400, 86);
        let mut whole = OpsAccumulator::new();
        let mut left = OpsAccumulator::new();
        let mut right = OpsAccumulator::new();
        for (i, (_, rec)) in ts.records.iter().enumerate() {
            whole.push_record(&rec);
            if i % 2 == 0 {
                left.push_record(&rec);
            } else {
                right.push_record(&rec);
            }
        }
        left.merge(&right);
        assert_eq!(left.reads, whole.reads);
        assert_eq!(left.writes, whole.writes);
        assert_eq!(left.read_sizes.median(), whole.read_sizes.median());
    }

    #[test]
    fn failure_taxonomy() {
        let ts = synthetic_trace_set(800, 81);
        let s = operational_stats(&ts);
        assert!(s.opens_failed > 0);
        assert!(
            s.open_fail_not_found > 0.8,
            "the synthetic probes all fail not-found: {}",
            s.open_fail_not_found
        );
        assert_eq!(s.write_failure_rate, 0.0, "§8.4: no write errors");
        assert!(s.read_failure_rate < 0.2);
    }

    #[test]
    fn control_only_sessions_present() {
        let ts = synthetic_trace_set(800, 82);
        let s = operational_stats(&ts);
        assert!(s.control_only_fraction > 0.15);
        assert!(s.control_only_fraction < 0.9);
    }

    #[test]
    fn request_gaps_are_microsecond_scale() {
        let ts = synthetic_trace_set(600, 83);
        let s = operational_stats(&ts);
        if let Some(m) = s.read_gaps_us.median() {
            assert!(m < 10_000.0, "reads cluster in µs–ms range, got {m}");
        }
    }

    #[test]
    fn two_stage_close_gap_larger_for_writers() {
        let ts = synthetic_trace_set(700, 84);
        let s = operational_stats(&ts);
        let r = s.cleanup_to_close_read_us.median().unwrap_or(0.0);
        let w = s.cleanup_to_close_write_ms.median().unwrap_or(0.0);
        // Reads close in microseconds; writers wait for the lazy writer
        // (hundreds of ms and up).
        assert!(r < 1_000.0, "read close gap {r}us");
        assert!(w > 1.0, "write close gap {w}ms");
    }
}
