//! Shape checks against the paper's headline observations (table 1).
//!
//! These run a reduced deployment (8 machines, 10 simulated minutes) and
//! assert the *direction and rough magnitude* of each claim — absolute
//! numbers depend on the simulated substrate, and EXPERIMENTS.md records
//! the full side-by-side at evaluation scale.

use nt_analysis::{activity, arrivals, latency, lifetimes, ops, patterns, sessions, sizes, tails};
use nt_study::{MachineSpec, Study, StudyConfig, StudyData};
use nt_workload::UsageCategory;
use std::sync::OnceLock;

fn data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| {
        let mut config = StudyConfig::smoke_test(2026);
        config.duration = nt_sim::SimDuration::from_secs(600);
        config.machines = vec![
            MachineSpec::new(UsageCategory::WalkUp, 0),
            MachineSpec::new(UsageCategory::Pool, 0),
            MachineSpec::new(UsageCategory::Pool, 1),
            MachineSpec::new(UsageCategory::Personal, 0),
            MachineSpec::new(UsageCategory::Personal, 1),
            MachineSpec::new(UsageCategory::Personal, 2),
            MachineSpec::new(UsageCategory::Administrative, 0),
            MachineSpec::new(UsageCategory::Scientific, 0),
        ];
        Study::run(&config)
    })
}

#[test]
fn most_data_sessions_are_short() {
    // Paper: 75 % of data-access opens last under 10 ms.
    let s = sessions::session_durations(&data().trace_set);
    let frac = s.data.fraction_at_or_below(10.0);
    assert!(frac > 0.5, "short sessions dominate: {frac}");
}

#[test]
fn local_and_network_open_times_are_comparable() {
    // Paper §6.2: "no significant difference in the access times between
    // local and remote storage".
    let s = sessions::session_durations(&data().trace_set);
    let (Some(l), Some(n)) = (s.data_local.median(), s.data_network.median()) else {
        panic!("both volume classes must see traffic");
    };
    let ratio = (l / n).max(n / l);
    assert!(
        ratio < 50.0,
        "same order of magnitude: local {l} network {n}"
    );
}

#[test]
fn control_operations_dominate() {
    // Paper: 74 % of opens perform only control or directory work.
    let o = ops::operational_stats(&data().trace_set);
    assert!(
        o.control_only_fraction > 0.5,
        "control-only fraction {}",
        o.control_only_fraction
    );
}

#[test]
fn sequential_access_dominates_reads_with_a_random_shift() {
    // Paper table 3: 68 % of read-only accesses whole-file sequential,
    // and the read/write class is overwhelmingly random.
    let t = patterns::access_patterns(&data().trace_set);
    assert!(
        t.read_only.whole_accesses.mean + t.read_only.seq_accesses.mean > 55.0,
        "reads are mostly sequential"
    );
    assert!(
        t.read_write.random_accesses.mean > 50.0,
        "R/W sessions are mostly random: {}",
        t.read_write.random_accesses.mean
    );
    assert!(
        t.read_only.share_accesses.mean > t.write_only.share_accesses.mean,
        "read-only opens outnumber write-only"
    );
}

#[test]
fn most_accessed_files_are_small_but_bytes_live_in_big_files() {
    let s = sizes::accessed_sizes(&data().trace_set);
    let small_opens = s.all_by_opens.fraction_at_or_below(26.0 * 1024.0);
    assert!(
        small_opens > 0.4,
        "most opened files are small: {small_opens}"
    );
    let median_by_opens = s.all_by_opens.median().unwrap();
    let median_by_bytes = s.all_by_bytes.median().unwrap();
    assert!(
        median_by_bytes > median_by_opens * 3.0,
        "bytes concentrate in larger files: {median_by_opens} vs {median_by_bytes}"
    );
}

#[test]
fn new_files_die_young() {
    // Paper §6.3: ~80 % of new files die within 4 s; 65 % of deleted
    // files are under 100 bytes.
    let l = lifetimes::lifetimes(&data().trace_set);
    assert!(l.dead_within_4s > 0.5, "die-young: {}", l.dead_within_4s);
    let small = l.deaths.iter().filter(|d| d.size < 4_096).count();
    assert!(
        small * 2 > l.deaths.len(),
        "deleted files are small: {small}/{}",
        l.deaths.len()
    );
    let (o, d, _) = l.mechanism_shares;
    assert!(d > o, "explicit deletes outnumber overwrites (62% vs 37%)");
}

#[test]
fn fastio_carries_the_data_path_and_is_fast() {
    let p = latency::path_latencies(&data().trace_set);
    assert!(
        p.fastio_read_fraction > 0.4,
        "FastIO read share {}",
        p.fastio_read_fraction
    );
    assert!(
        p.fastio_write_fraction > 0.5,
        "FastIO write share {}",
        p.fastio_write_fraction
    );
    let f = p.fastio_read_latency.median().unwrap();
    let i = p.irp_read_latency.median().unwrap();
    assert!(
        i > f * 5.0,
        "figure 13: IRP reads are much slower ({f} us vs {i} us)"
    );
}

#[test]
fn arrival_gaps_are_heavy_tailed() {
    // Paper §7: Hill alpha between 1.2 and 1.7 — evidence of infinite
    // variance. The reduced run lands in a looser band.
    let ts = &data().trace_set;
    let gaps: Vec<f64> = {
        let a = nt_analysis::burstiness::open_arrival_ticks(ts);
        a.windows(2)
            .map(|w| (w[1].saturating_sub(w[0])) as f64)
            .filter(|&g| g > 0.0)
            .collect()
    };
    let alpha = tails::hill_alpha(&gaps);
    assert!(
        (0.3..2.5).contains(&alpha),
        "alpha {alpha} outside heavy-tail territory"
    );
    let l = tails::llcd(&gaps, 0.1);
    assert!(
        l.alpha < 2.5,
        "LLCD slope alpha {} shows a power tail",
        l.alpha
    );
}

#[test]
fn burstiness_survives_aggregation() {
    // Figure 8: the traced arrivals stay overdispersed at coarse scales
    // while the Poisson synthesis smooths out.
    let b = nt_analysis::burstiness::burstiness(&data().trace_set, 5);
    for s in &b.scales {
        if s.traced.counts.len() < 5 {
            continue;
        }
        assert!(
            s.traced.dispersion() > s.poisson.dispersion(),
            "scale {}s: traced {} vs poisson {}",
            s.traced.interval_secs,
            s.traced.dispersion(),
            s.poisson.dispersion()
        );
    }
}

#[test]
fn open_interarrivals_cluster_under_milliseconds() {
    // Figure 11: 40 % of opens arrive within 1 ms of the previous one.
    let a = arrivals::open_arrivals(&data().trace_set);
    let f1 = a.all.fraction_at_or_below(1.0);
    assert!(f1 > 0.15, "within-1ms fraction {f1}");
    assert!(
        a.active_second_fraction < 0.8,
        "most seconds stay idle: {}",
        a.active_second_fraction
    );
}

#[test]
fn ten_second_peaks_exceed_ten_minute_averages() {
    // Table 2's burst structure.
    let a = activity::user_activity(&data().trace_set);
    assert!(a.ten_seconds.peak_user_kbs >= a.ten_minutes.throughput_kbs.mean);
    assert!(a.ten_minutes.max_active_users as usize <= data().machines.len());
}

#[test]
fn single_prefetch_satisfies_most_read_sessions() {
    // Paper §9.1: 92 % of open-for-read cases needed one prefetch.
    let read_sessions: Vec<_> = data()
        .trace_set
        .instances
        .iter()
        .filter(|i| i.reads > 0 && i.writes == 0)
        .collect();
    let single = read_sessions.iter().filter(|i| i.paging_reads <= 1).count();
    let frac = single as f64 / read_sessions.len().max(1) as f64;
    assert!(frac > 0.6, "single-prefetch fraction {frac}");
}

#[test]
fn snapshots_show_profile_churn() {
    // §5: almost all content change sits in the user profile, most of it
    // in the WWW cache.
    let mut profile_frac_seen: f64 = 0.0;
    for m in &data().machines {
        let locals: Vec<_> = m
            .snapshots
            .iter()
            .filter(|s| s.volume == nt_fs::VolumeId(0))
            .collect();
        if locals.len() < 2 {
            continue;
        }
        let churn = nt_analysis::content::churn_stats(locals[0], locals[locals.len() - 1]);
        if churn.churn > 20 {
            profile_frac_seen = profile_frac_seen.max(churn.profile_fraction);
        }
    }
    assert!(
        profile_frac_seen > 0.3,
        "profile tree dominates churn somewhere: {profile_frac_seen}"
    );
}
