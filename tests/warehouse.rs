//! Conformance suite for the NTT binary trace warehouse.
//!
//! `tests/golden/warehouse/segment_v1.ntt` is a checked-in canonical
//! segment: the writer must reproduce it byte-for-byte (the format is
//! versioned — accidental layout drift is a format break, not a detail),
//! and the v1 reader must keep decoding it forever. Regenerate after an
//! *intentional* format-version bump with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test warehouse
//! ```
//!
//! The rest of the suite covers the corruption taxonomy (typed errors,
//! never panics), the strace importer end-to-end through
//! `Study::ingest_warehouse`, the DFG conformance check, and the
//! flat-vs-sharded export byte identity.

use std::path::PathBuf;

use nt_io::{EventKind, MajorFunction, NtStatus};
use nt_study::{ShardOptions, StreamOptions, Study, StudyConfig};
use nt_trace::{NameRecord, TraceRecord};
use nt_warehouse::{import_strace, NttError, Segment, SegmentWriter, Warehouse, NTT_VERSION};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("warehouse")
        .join("segment_v1.ntt")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nt-warehouse-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A handcrafted record touching every field group.
fn rec(code: u8, file_object: u64, ticks: u64, length: u64) -> TraceRecord {
    TraceRecord {
        code,
        flags: (file_object % 16) as u8,
        status: NtStatus::Success,
        set_info: None,
        access: None,
        disposition: None,
        options: None,
        file_object,
        fcb: file_object.wrapping_mul(0x9e37_79b9),
        process: (file_object % 7) as u32,
        volume: (file_object % 3) as u32,
        offset: length * 2,
        length,
        transferred: length,
        file_size: length * 4,
        byte_offset: length * 2,
        start_ticks: ticks,
        end_ticks: ticks + 150,
    }
}

/// The canonical fixture: three batches (one empty — agents ship empty
/// heartbeat buffers too), codes spanning IRP and FastIO ranges, and
/// three names with one path interned twice.
fn fixture_batches() -> Vec<Vec<TraceRecord>> {
    let create = EventKind::Irp(MajorFunction::Create).code();
    let read = EventKind::Irp(MajorFunction::Read).code();
    let write = EventKind::Irp(MajorFunction::Write).code();
    let cleanup = EventKind::Irp(MajorFunction::Cleanup).code();
    let close = EventKind::Irp(MajorFunction::Close).code();
    vec![
        vec![
            rec(create, 1, 1_000, 0),
            rec(read, 1, 2_000, 4_096),
            rec(read, 1, 3_000, 4_096),
            rec(53, 1, 3_500, 512), // a FastIO-range code
        ],
        vec![],
        vec![
            rec(create, 2, 4_000, 0),
            rec(write, 2, 5_000, 8_192),
            rec(cleanup, 2, 6_000, 0),
            rec(close, 2, 6_100, 0),
            rec(cleanup, 1, 7_000, 0),
            rec(close, 1, 7_050, 0),
        ],
    ]
}

fn fixture_names() -> Vec<NameRecord> {
    vec![
        NameRecord {
            file_object: 1,
            volume: 1,
            process: 1,
            path: r"\inetpub\logs\access.log".to_string(),
            at_ticks: 1_000,
        },
        NameRecord {
            file_object: 2,
            volume: 2,
            process: 2,
            path: r"\users\worker\report.doc".to_string(),
            at_ticks: 4_000,
        },
        // Same path as the first name — must intern to the same span.
        NameRecord {
            file_object: 3,
            volume: 1,
            process: 1,
            path: r"\inetpub\logs\access.log".to_string(),
            at_ticks: 8_000,
        },
    ]
}

fn fixture_segment() -> Vec<u8> {
    let mut w = SegmentWriter::new(7);
    for batch in fixture_batches() {
        w.push_batch(&batch).unwrap();
    }
    for name in fixture_names() {
        w.push_name(&name).unwrap();
    }
    w.finish()
}

#[test]
fn golden_segment_is_byte_stable() {
    let bytes = fixture_segment();
    let path = golden_path();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("regenerated {} ({} bytes)", path.display(), bytes.len());
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run GOLDEN_REGEN=1 cargo test --test warehouse",
            path.display()
        )
    });
    assert_eq!(
        bytes, golden,
        "the writer no longer reproduces the v{NTT_VERSION} fixture byte-for-byte — \
         if the format changed intentionally, bump NTT_VERSION and regenerate"
    );
}

#[test]
fn v1_reader_decodes_the_golden_segment() {
    let segment = Segment::open(&golden_path()).expect("golden fixture parses");
    assert_eq!(segment.machine(), 7);
    let reader = segment.reader();
    let footer = reader.footer();
    assert_eq!(footer.record_count, 10);
    assert_eq!(footer.batch_count, 3);
    assert_eq!(footer.name_count, 3);
    assert_eq!(footer.min_ticks, 1_000);
    assert_eq!(footer.max_ticks, 7_050 + 150);

    // Batch boundaries survive, including the empty batch.
    assert_eq!(reader.batch_lens().collect::<Vec<_>>(), vec![4, 0, 6]);

    // Zero-copy views decode to exactly the input records.
    let flat: Vec<TraceRecord> = fixture_batches().into_iter().flatten().collect();
    let decoded: Vec<TraceRecord> = reader
        .records()
        .map(|v| v.to_record().expect("valid record"))
        .collect();
    assert_eq!(decoded, flat);

    // Per-kind counts index by wire code.
    let create = EventKind::Irp(MajorFunction::Create).code();
    assert_eq!(footer.kind_counts[create as usize], 2);
    assert_eq!(footer.kind_counts[53], 1);
    assert_eq!(footer.kind_counts.iter().sum::<u64>(), 10);

    // Names come back with borrowed paths; the repeated path interns.
    let names: Vec<NameRecord> = reader
        .names()
        .map(|n| n.to_name().expect("valid name"))
        .collect();
    assert_eq!(names, fixture_names());
    let string_table = footer.strings_len;
    let distinct: usize = names
        .iter()
        .map(|n| n.path.as_str())
        .collect::<std::collections::BTreeSet<_>>()
        .iter()
        .map(|p| p.len())
        .sum();
    assert_eq!(
        string_table, distinct as u64,
        "repeated paths must share string-table bytes"
    );
}

#[test]
fn corruption_is_rejected_with_typed_errors() {
    let bytes = fixture_segment();

    // Bad leading magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        Segment::parse(bad).err().unwrap(),
        NttError::BadMagic
    ));

    // Unsupported version (header is checked before the checksum, so a
    // future-version segment reports version skew, not corruption).
    let mut bad = bytes.clone();
    bad[4] = 0xfe;
    assert!(matches!(
        Segment::parse(bad).err().unwrap(),
        NttError::UnsupportedVersion(0xfe)
    ));

    // Bad trailing magic.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert!(matches!(
        Segment::parse(bad).err().unwrap(),
        NttError::BadFooterMagic
    ));

    // A flipped body byte is a checksum mismatch.
    let mut bad = bytes.clone();
    bad[nt_warehouse::HEADER_SIZE + 3] ^= 0x40;
    assert!(matches!(
        Segment::parse(bad).err().unwrap(),
        NttError::ChecksumMismatch { .. }
    ));

    // Truncation anywhere is typed, never a panic.
    for keep in [0, 1, 15, 16, 100, bytes.len() - 1] {
        let err = Segment::parse(bytes[..keep].to_vec()).err().unwrap();
        assert!(
            matches!(
                err,
                NttError::Truncated { .. }
                    | NttError::BadFooterMagic
                    | NttError::ChecksumMismatch { .. }
                    | NttError::BadLayout(_)
            ),
            "truncation to {keep} bytes gave {err}"
        );
    }
}

const STRACE_SAMPLE: &str = "\
# mail-server trace, strace -ttt style
1723111201.000125 open(\"/var/mail/inbox.mbx\", O_RDWR) = 3
1723111201.000300 read(3, 4096) = 4096
1723111201.000412 write(3, 512) = 512
1723111201.000500 close(3) = 0
1723111201.000600 open(\"/var/mail/outbox.mbx\", O_WRONLY|O_CREAT) = 4
1723111201.000700 write(4, 2048) = 2048
1723111201.000800 close(4) = 0
1723111201.000900 open(\"/etc/missing.conf\", O_RDONLY) = -1 ENOENT (No such file or directory)
this line is garbage and must land in the ledger
";

#[test]
fn strace_import_feeds_the_full_analysis_pipeline() {
    let dir = temp_dir("import");
    std::fs::create_dir_all(&dir).unwrap();
    let out = import_strace(STRACE_SAMPLE.as_bytes(), 0);
    assert_eq!(out.ledger.lines, 9, "comment lines are not counted");
    assert_eq!(out.ledger.imported, 8);
    assert_eq!(out.ledger.bad_timestamp, 1, "the garbage line");
    assert!(out.ledger.reconciles(), "importer loss ledger must close");
    // open+read+write+cleanup+close, open+write+cleanup+close, and the
    // failed open = 10 records.
    assert_eq!(out.records, 10);
    std::fs::write(dir.join("machine-00000.ntt"), &out.segment).unwrap();

    let ingest = Study::ingest_warehouse(
        &dir,
        &StreamOptions {
            retain: true,
            ..StreamOptions::default()
        },
    )
    .expect("imported segment ingests");
    assert_eq!(ingest.records, 10);
    assert_eq!(ingest.machines, vec![0]);
    assert_eq!(ingest.summary.ops.opens_ok, 2);
    assert_eq!(ingest.summary.ops.opens_failed, 1);
    assert_eq!(ingest.summary.names, 3);

    // The DFG of the imported trace has the session shape the importer
    // promises: create→read, write→cleanup, cleanup→close.
    let set = ingest.trace_set.expect("retained");
    let dfg = nt_analysis::dfg::Dfg::of_trace_set(&set);
    assert_eq!(dfg.cases, 3, "three file objects");
    let create = EventKind::Irp(MajorFunction::Create).code();
    let read = EventKind::Irp(MajorFunction::Read).code();
    let write = EventKind::Irp(MajorFunction::Write).code();
    let cleanup = EventKind::Irp(MajorFunction::Cleanup).code();
    let close = EventKind::Irp(MajorFunction::Close).code();
    assert_eq!(dfg.edges.get(&(create, read)), Some(&1));
    assert_eq!(dfg.edges.get(&(write, cleanup)), Some(&2));
    assert_eq!(dfg.edges.get(&(cleanup, close)), Some(&2));
    assert_eq!(dfg.starts.get(&create), Some(&3));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flat_and_sharded_exports_write_identical_segments() {
    // Shard count is a pure performance knob — the sharded export must
    // produce byte-for-byte the same segment files as the flat one,
    // because each machine's canonical stream is independent of which
    // pool carried it.
    let config = StudyConfig::smoke_test(11);
    let flat_dir = temp_dir("flat");
    let shard_dir = temp_dir("sharded");
    let flat = Study::run_streaming(
        &config,
        &StreamOptions {
            warehouse: Some(flat_dir.clone()),
            ..StreamOptions::default()
        },
    );
    let sharded = Study::run_sharded(
        &config,
        &ShardOptions {
            shards: 2,
            warehouse: Some(shard_dir.clone()),
            ..ShardOptions::default()
        },
    );
    let flat_stats = flat.warehouse.expect("flat export stats");
    let shard_stats = sharded.data.warehouse.expect("sharded export stats");
    assert_eq!(flat_stats, shard_stats, "per-segment stats agree");

    let flat_wh = Warehouse::open(&flat_dir).expect("flat warehouse opens");
    assert_eq!(flat_wh.machines().len(), config.machines.len());
    for stat in &flat_stats {
        let name = format!("machine-{:05}.ntt", stat.machine);
        let a = std::fs::read(flat_dir.join(&name)).expect("flat segment");
        let b = std::fs::read(shard_dir.join(&name)).expect("sharded segment");
        assert!(
            a == b,
            "segment {name} differs between flat and sharded export"
        );
    }
    let _ = std::fs::remove_dir_all(&flat_dir);
    let _ = std::fs::remove_dir_all(&shard_dir);
}

#[test]
fn warehouse_open_rejects_a_corrupt_member_segment() {
    let dir = temp_dir("reject");
    std::fs::create_dir_all(&dir).unwrap();
    let good = fixture_segment();
    std::fs::write(dir.join("machine-00007.ntt"), &good).unwrap();
    let mut bad = good;
    let mid = bad.len() / 2;
    bad[mid] ^= 0x10;
    std::fs::write(dir.join("machine-00008.ntt"), &bad).unwrap();
    let err = Warehouse::open(&dir)
        .err()
        .expect("corrupt member rejected");
    assert!(
        matches!(err, NttError::ChecksumMismatch { .. }),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
