//! Property-based tests over the core data structures and invariants.

use nt_cache::RangeSet;
use nt_fs::NtPath;
use nt_sim::{Engine, SimTime};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// RangeSet vs a naive bit-set model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RangeOp {
    Insert(u16, u16),
    Remove(u16, u16),
}

fn range_ops() -> impl Strategy<Value = Vec<RangeOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..512, 0u16..512).prop_map(|(a, b)| RangeOp::Insert(a.min(b), a.max(b))),
            (0u16..512, 0u16..512).prop_map(|(a, b)| RangeOp::Remove(a.min(b), a.max(b))),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn range_set_matches_naive_model(ops in range_ops()) {
        let mut rs = RangeSet::new();
        let mut model = [false; 512];
        for op in &ops {
            match *op {
                RangeOp::Insert(s, e) => {
                    rs.insert(s as u64, e as u64);
                    for x in s..e {
                        model[x as usize] = true;
                    }
                }
                RangeOp::Remove(s, e) => {
                    rs.remove(s as u64, e as u64);
                    for x in s..e {
                        model[x as usize] = false;
                    }
                }
            }
        }
        // Covered bytes agree.
        let naive: u64 = model.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(rs.covered_bytes(), naive);
        // Ranges are disjoint, sorted and non-adjacent.
        let ranges: Vec<(u64, u64)> = rs.iter().collect();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "coalesced and ordered: {:?}", ranges);
        }
        // covers() agrees with the model at a few probes.
        for probe in [0u64, 7, 100, 255, 300, 511] {
            prop_assert_eq!(
                rs.covers(probe, probe + 1),
                model[probe as usize],
                "probe {}", probe
            );
        }
        // gaps() of the full domain complements the coverage.
        let gap_total: u64 = rs.gaps(0, 512).iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(gap_total, 512 - naive);
    }

    #[test]
    fn covers_and_intersects_match_naive_model(
        ops in range_ops(),
        probes in prop::collection::vec((0u16..512, 1u16..64), 1..20),
    ) {
        let mut rs = RangeSet::new();
        let mut model = [false; 600];
        for op in &ops {
            match *op {
                RangeOp::Insert(s, e) => {
                    rs.insert(s as u64, e as u64);
                    for x in s..e {
                        model[x as usize] = true;
                    }
                }
                RangeOp::Remove(s, e) => {
                    rs.remove(s as u64, e as u64);
                    for x in s..e {
                        model[x as usize] = false;
                    }
                }
            }
        }
        for &(start, len) in &probes {
            let (s, e) = (start as u64, start as u64 + len as u64);
            let bytes = &model[s as usize..e as usize];
            prop_assert_eq!(
                rs.covers(s, e),
                bytes.iter().all(|&b| b),
                "covers({}, {})", s, e
            );
            prop_assert_eq!(
                rs.intersects(s, e),
                bytes.iter().any(|&b| b),
                "intersects({}, {})", s, e
            );
        }
        // Degenerate probes: an empty range is covered and intersects
        // nothing, and clear() really empties the set.
        prop_assert!(rs.covers(10, 10));
        prop_assert!(!rs.intersects(10, 10));
        rs.clear();
        prop_assert!(rs.is_empty());
        prop_assert_eq!(rs.covered_bytes(), 0);
    }

    #[test]
    fn take_front_conserves_bytes(ops in range_ops(), budget in 0u64..600) {
        let mut rs = RangeSet::new();
        for op in &ops {
            if let RangeOp::Insert(s, e) = *op {
                rs.insert(s as u64, e as u64);
            }
        }
        let before = rs.covered_bytes();
        let taken: u64 = rs.take_front(budget).iter().map(|(s, e)| e - s).sum();
        prop_assert!(taken <= budget);
        prop_assert_eq!(rs.covered_bytes() + taken, before);
    }
}

// ---------------------------------------------------------------------
// Trace-record encode/decode roundtrip.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn trace_record_roundtrips(
        code in 0u8..54,
        flags in 0u8..16,
        fo in any::<u64>(),
        fcb in any::<u64>(),
        process in any::<u32>(),
        offset in any::<u64>(),
        length in any::<u64>(),
        start in 0u64..u64::MAX / 2,
        lat in 0u64..1_000_000_000,
    ) {
        use nt_trace::TraceRecord;
        let rec = TraceRecord {
            code,
            flags,
            status: nt_io::NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: fo,
            fcb,
            process,
            volume: 0,
            offset,
            length,
            transferred: length / 2,
            file_size: length,
            byte_offset: offset,
            start_ticks: start,
            end_ticks: start + lat,
        };
        let mut buf = bytes::BytesMut::new();
        rec.encode(&mut buf);
        prop_assert_eq!(buf.len(), nt_trace::RECORD_SIZE);
        let back = TraceRecord::decode(&mut buf.freeze()).expect("valid record");
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn record_batches_roundtrip(n in 1usize..400, seed in any::<u64>()) {
        use nt_trace::{RecordBatch, TraceRecord};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = 0u64;
        let records: Vec<TraceRecord> = (0..n)
            .map(|i| {
                t += rng.gen_range(0..1_000_000);
                TraceRecord {
                    code: rng.gen_range(0..54),
                    flags: rng.gen_range(0..16),
                    status: nt_io::NtStatus::Success,
                    set_info: None,
                    access: None,
                    disposition: None,
                    options: None,
                    file_object: i as u64,
                    fcb: rng.gen(),
                    process: rng.gen(),
                    volume: rng.gen_range(0..3),
                    offset: rng.gen(),
                    length: rng.gen_range(0..1 << 20),
                    transferred: 0,
                    file_size: 0,
                    byte_offset: 0,
                    start_ticks: t,
                    end_ticks: t + rng.gen_range(0..100_000),
                }
            })
            .collect();
        let batch = RecordBatch::compress(&records);
        prop_assert_eq!(batch.decompress(), records);
    }
}

// ---------------------------------------------------------------------
// NTT warehouse segments: arbitrary batch streams roundtrip through the
// zero-copy format exactly, and corrupted or truncated segments are
// rejected with a typed error — never a panic.
// ---------------------------------------------------------------------

/// Deterministic record stream for a seed: varied kinds, monotone ticks.
fn ntt_random_batches(batch_lens: &[usize], seed: u64) -> Vec<Vec<nt_trace::TraceRecord>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut t = 0u64;
    batch_lens
        .iter()
        .map(|&n| {
            (0..n)
                .map(|_| {
                    t += rng.gen_range(1..1_000_000);
                    nt_trace::TraceRecord {
                        code: rng.gen_range(0..54),
                        flags: rng.gen_range(0..16),
                        status: nt_io::NtStatus::Success,
                        set_info: None,
                        access: None,
                        disposition: None,
                        options: None,
                        file_object: rng.gen_range(0..50),
                        fcb: rng.gen(),
                        process: rng.gen(),
                        volume: rng.gen_range(0..3),
                        offset: rng.gen(),
                        length: rng.gen_range(0..1 << 24),
                        transferred: rng.gen_range(0..1 << 24),
                        file_size: rng.gen(),
                        byte_offset: rng.gen(),
                        start_ticks: t,
                        end_ticks: t + rng.gen_range(0..100_000),
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn ntt_segment_roundtrips_arbitrary_batches(
        batch_lens in prop::collection::vec(0usize..40, 0..12),
        n_names in 0usize..10,
        seed in any::<u64>(),
        machine in any::<u32>(),
    ) {
        use nt_warehouse::{Segment, SegmentWriter};
        let batches = ntt_random_batches(&batch_lens, seed);
        let names: Vec<nt_trace::NameRecord> = (0..n_names)
            .map(|i| nt_trace::NameRecord {
                file_object: i as u64,
                volume: (i % 3) as u32,
                process: i as u32,
                // Half the paths repeat, exercising the interner.
                path: format!(r"\prop\file-{}.dat", i / 2),
                at_ticks: i as u64 * 100,
            })
            .collect();
        let mut w = SegmentWriter::new(machine);
        for b in &batches {
            w.push_batch(b).unwrap();
        }
        for name in &names {
            w.push_name(name).unwrap();
        }
        let seg = Segment::parse(w.finish()).expect("fresh segment is valid");
        prop_assert_eq!(seg.machine(), machine);
        let reader = seg.reader();
        let flat: Vec<nt_trace::TraceRecord> =
            batches.iter().flatten().copied().collect();
        prop_assert_eq!(flat.len() as u64, reader.record_count());
        let decoded: Vec<nt_trace::TraceRecord> = reader
            .records()
            .map(|v| v.to_record().expect("valid record"))
            .collect();
        prop_assert_eq!(decoded, flat);
        let lens: Vec<u32> = reader.batch_lens().collect();
        let expected: Vec<u32> = batch_lens.iter().map(|&n| n as u32).collect();
        prop_assert_eq!(lens, expected, "batch boundaries survive");
        let back: Vec<nt_trace::NameRecord> = reader
            .names()
            .map(|n| n.to_name().expect("valid name"))
            .collect();
        prop_assert_eq!(back, names);
    }

    #[test]
    fn ntt_corruption_is_an_error_never_a_panic(
        batch_lens in prop::collection::vec(0usize..20, 0..6),
        seed in any::<u64>(),
        flip_at in any::<usize>(),
        flip_with in 1u8..=255,
        trunc_to in any::<usize>(),
    ) {
        use nt_warehouse::{Segment, SegmentWriter};
        let mut w = SegmentWriter::new(1);
        for b in ntt_random_batches(&batch_lens, seed) {
            w.push_batch(&b).unwrap();
        }
        let good = w.finish();
        prop_assert!(Segment::parse(good.clone()).is_ok());
        // Any single corrupted byte is detected.
        let mut bad = good.clone();
        let at = flip_at % bad.len();
        bad[at] ^= flip_with;
        prop_assert!(
            Segment::parse(bad).is_err(),
            "corruption at byte {} went undetected", at
        );
        // Any truncation is detected.
        let keep = trunc_to % good.len();
        prop_assert!(Segment::parse(good[..keep].to_vec()).is_err());
    }
}

// ---------------------------------------------------------------------
// Engine ordering under random schedules.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn engine_fires_in_nondecreasing_time_order(times in prop::collection::vec(0u64..10_000, 1..80)) {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for &t in &times {
            engine.schedule_at(SimTime::from_millis(t), move |world, eng| {
                world.push(eng.now().as_millis());
            });
        }
        let mut fired = Vec::new();
        engine.run(&mut fired);
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(fired, sorted);
    }
}

// ---------------------------------------------------------------------
// CDF properties.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn cdf_quantiles_are_monotone(samples in prop::collection::vec(0.0f64..1e9, 2..200)) {
        let cdf = nt_analysis::Cdf::from_samples(samples.clone());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = cdf.quantile(q).expect("non-empty");
            prop_assert!(v >= last, "quantiles decrease at q={q}");
            last = v;
        }
        let (lo, hi) = cdf.range().expect("non-empty");
        prop_assert_eq!(cdf.fraction_at_or_below(hi), 1.0);
        prop_assert!(cdf.fraction_at_or_below(lo - 1.0) == 0.0);
    }
}

// ---------------------------------------------------------------------
// Path parsing.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn path_display_parse_roundtrip(parts in prop::collection::vec("[a-z0-9]{1,8}(\\.[a-z0-9]{1,3})?", 0..6)) {
        let mut p = NtPath::root();
        for part in &parts {
            p.push(part);
        }
        let shown = p.to_string();
        let back = NtPath::parse(&shown);
        prop_assert_eq!(back, p);
    }

    #[test]
    fn path_parent_reduces_depth(parts in prop::collection::vec("[a-z]{1,6}", 1..6)) {
        let mut p = NtPath::root();
        for part in &parts {
            p.push(part);
        }
        prop_assert_eq!(p.depth(), parts.len());
        prop_assert_eq!(p.parent().depth(), parts.len() - 1);
        prop_assert!(p.starts_with(&p.parent()));
    }
}

// ---------------------------------------------------------------------
// Cache-manager invariants under arbitrary operation sequences.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CacheOp {
    Read { key: u8, offset: u32, len: u16 },
    Write { key: u8, offset: u32, len: u16 },
    Flush { key: u8 },
    LazyScan,
    Purge { key: u8 },
    Trim { budget: u32 },
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4, 0u32..1_000_000, 1u16..u16::MAX)
                .prop_map(|(key, offset, len)| CacheOp::Read { key, offset, len }),
            (0u8..4, 0u32..1_000_000, 1u16..u16::MAX)
                .prop_map(|(key, offset, len)| CacheOp::Write { key, offset, len }),
            (0u8..4).prop_map(|key| CacheOp::Flush { key }),
            Just(CacheOp::LazyScan),
            (0u8..4).prop_map(|key| CacheOp::Purge { key }),
            (0u32..2_000_000).prop_map(|budget| CacheOp::Trim { budget }),
        ],
        0..80,
    )
}

proptest! {
    #[test]
    fn cache_manager_invariants_hold(ops in cache_ops()) {
        use nt_cache::{CacheManager, CacheOpenHints};
        let mut m: CacheManager<u8> = CacheManager::with_defaults();
        let hints = CacheOpenHints::default();
        let file_size = 1 << 20;
        let mut scan = 1u64;
        for op in &ops {
            match *op {
                CacheOp::Read { key, offset, len } => {
                    let out = m.read(&key, offset as u64, len as u64, file_size, hints);
                    // Paging reads are page aligned and never empty.
                    for io in &out.ios {
                        prop_assert!(io.offset % nt_cache::PAGE_SIZE == 0);
                        prop_assert!(io.len > 0 && io.len % nt_cache::PAGE_SIZE == 0);
                        prop_assert!(!io.write);
                        m.complete_paging_read(&key, io.offset, io.len);
                    }
                    // After completing the paging I/O, the same read hits.
                    if !out.hit {
                        let again = m.read(&key, offset as u64, len as u64, file_size, hints);
                        prop_assert!(
                            again.ios.iter().all(|io| io.readahead),
                            "demand range must now be resident"
                        );
                    }
                }
                CacheOp::Write { key, offset, len } => {
                    let out = m.write(&key, offset as u64, len as u64, file_size, hints);
                    prop_assert!(out.ios.is_empty(), "write-behind by default");
                }
                CacheOp::Flush { key } => {
                    m.flush(&key);
                    prop_assert_eq!(m.file_dirty_bytes(&key), 0);
                }
                CacheOp::LazyScan => {
                    let before = m.dirty_bytes();
                    let (actions, _) = m.lazy_scan(nt_sim::SimTime::from_secs(scan));
                    scan += 1;
                    let written: u64 = actions.iter().map(|a| a.io.len).sum();
                    prop_assert_eq!(m.dirty_bytes() + written, before);
                }
                CacheOp::Purge { key } => {
                    m.purge(&key);
                    prop_assert!(!m.is_cached(&key));
                }
                CacheOp::Trim { budget } => {
                    let dirty_before = m.dirty_bytes();
                    m.trim(budget as u64);
                    prop_assert_eq!(m.dirty_bytes(), dirty_before, "trim never drops dirty data");
                }
            }
            // Global invariant: dirty data is always resident.
            prop_assert!(m.dirty_bytes() <= m.resident_bytes());
        }
    }
}

// ---------------------------------------------------------------------
// Share-mode arbitration is symmetric and self-consistent.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn share_arbitration_is_consistent(
        seq in prop::collection::vec((0u8..3, 0u8..8), 1..20)
    ) {
        use nt_io::sharing::ShareRegistry;
        use nt_io::{AccessMode, ArenaHandle, HandleId, ShareMode};
        let decode_access = |a: u8| match a {
            0 => AccessMode::Read,
            1 => AccessMode::Write,
            _ => AccessMode::ReadWrite,
        };
        let decode_share = |s: u8| ShareMode {
            read: s & 1 != 0,
            write: s & 2 != 0,
            delete: s & 4 != 0,
        };
        let mut reg = ShareRegistry::new();
        let fcb = ArenaHandle::from_parts(1, 1);
        let mut granted: Vec<(HandleId, AccessMode, ShareMode)> = Vec::new();
        for (i, (a, sh)) in seq.iter().enumerate() {
            let access = decode_access(*a);
            let share = decode_share(*sh);
            let h = HandleId(i as u64);
            let compatible = reg.compatible(fcb, access, share);
            let opened = reg.try_open(fcb, h, access, share);
            prop_assert_eq!(compatible, opened, "check and open agree");
            if opened {
                // The grant must be pairwise consistent with every
                // already-granted opener.
                for (_, ga, gs) in &granted {
                    if access.can_read() { prop_assert!(gs.read); }
                    if access.can_write() { prop_assert!(gs.write); }
                    if ga.can_read() { prop_assert!(share.read); }
                    if ga.can_write() { prop_assert!(share.write); }
                }
                granted.push((h, access, share));
            }
        }
        // Closing everything resets arbitration.
        for (h, _, _) in &granted {
            reg.close(fcb, *h);
        }
        prop_assert!(reg.try_open(fcb, HandleId(999), AccessMode::ReadWrite, ShareMode::default()));
    }
}

// ---------------------------------------------------------------------
// Heavy-tail estimator sanity.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn hill_estimator_tracks_pareto_alpha(seed in any::<u64>(), alpha_x10 in 11u32..25) {
        use rand::{Rng, SeedableRng};
        let alpha = alpha_x10 as f64 / 10.0;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let sample: Vec<f64> = (0..30_000)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                1.0 / u.powf(1.0 / alpha)
            })
            .collect();
        let est = nt_analysis::tails::hill_alpha(&sample);
        prop_assert!(
            (est - alpha).abs() < 0.4,
            "alpha {} estimated {}", alpha, est
        );
    }
}

// ---------------------------------------------------------------------
// Triple-buffer delivery: never duplicated, never reordered, fully
// accounted — at the paper's capacity and under fault-plan squeezes.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BufferOp {
    /// Push this many records.
    Push(u16),
    /// Take the queued full buffers (a shipping opportunity).
    Ship,
}

fn buffer_ops() -> impl Strategy<Value = Vec<BufferOp>> {
    prop::collection::vec(
        prop_oneof![(1u16..200).prop_map(BufferOp::Push), Just(BufferOp::Ship),],
        1..40,
    )
}

proptest! {
    #[test]
    fn triple_buffer_never_duplicates_or_reorders(
        ops in buffer_ops(),
        capacity in 1usize..120,
    ) {
        use nt_trace::{TraceRecord, TripleBuffer};

        fn rec(i: u64) -> TraceRecord {
            TraceRecord {
                code: 0,
                flags: 0,
                status: nt_io::NtStatus::Success,
                set_info: None,
                access: None,
                disposition: None,
                options: None,
                file_object: i,
                fcb: 0,
                process: 0,
                volume: 0,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                start_ticks: i,
                end_ticks: i + 1,
            }
        }

        let mut tb = TripleBuffer::with_capacity(capacity);
        let mut pushed = 0u64;
        let mut delivered: Vec<u64> = Vec::new();
        for op in &ops {
            match *op {
                BufferOp::Push(n) => {
                    for _ in 0..n {
                        tb.push(rec(pushed));
                        pushed += 1;
                    }
                }
                BufferOp::Ship => {
                    for batch in tb.take_queued() {
                        prop_assert!(batch.len() <= capacity);
                        delivered.extend(batch.iter().map(|r| r.file_object));
                    }
                }
            }
        }
        delivered.extend(tb.drain_all().iter().map(|r| r.file_object));

        // Every accepted record arrived exactly once, in push order.
        prop_assert_eq!(delivered.len() as u64, tb.recorded());
        for w in delivered.windows(2) {
            prop_assert!(w[0] < w[1], "shipped stream reordered or duplicated");
        }
        prop_assert!(delivered.iter().all(|&id| id < pushed));
        // Accounting closes: accepted plus overflow-dropped is everything.
        prop_assert_eq!(tb.recorded() + tb.dropped(), pushed);
        prop_assert_eq!(tb.overflowed(), tb.dropped() > 0);
        prop_assert_eq!(tb.pending(), 0, "drain_all leaves nothing behind");
    }
}

// ---------------------------------------------------------------------
// Engine cancellation under faulted schedules: cancelling the events a
// fault window covers removes exactly those, preserving order and the
// FIFO tie break for the survivors.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn engine_cancellation_removes_exactly_the_faulted_events(
        times in prop::collection::vec(0u64..5_000, 1..80),
        window in (0u64..5_000, 1u64..2_000),
    ) {
        use nt_trace::{any_contains, TickWindow};

        // The fault window in milliseconds; events inside it are the
        // work an outage would cancel.
        let windows = [TickWindow::new(window.0, window.0 + window.1)];
        let mut engine: Engine<Vec<(u64, usize)>> = Engine::new();
        let mut cancelled = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let id = engine.schedule_at(SimTime::from_millis(t), move |w: &mut Vec<(u64, usize)>, eng: &mut Engine<Vec<(u64, usize)>>| {
                w.push((eng.now().as_millis(), i));
            });
            if any_contains(&windows, t) {
                prop_assert!(engine.cancel(id));
                prop_assert!(!engine.cancel(id), "double cancel reports false");
                cancelled.push(i);
            }
        }
        let mut fired = Vec::new();
        engine.run(&mut fired);

        // The survivors are exactly the out-of-window events, in time
        // order with scheduling order breaking ties.
        let mut expected: Vec<(u64, usize)> = times
            .iter()
            .enumerate()
            .filter(|(_, &t)| !any_contains(&windows, t))
            .map(|(i, &t)| (t, i))
            .collect();
        expected.sort();
        prop_assert_eq!(fired, expected);
        prop_assert_eq!(
            engine.events_fired() as usize + cancelled.len(),
            times.len()
        );
    }
}

// ---------------------------------------------------------------------
// Volume namespace vs a flat-map model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum NsOp {
    CreateFile {
        dir: u8,
        name: u8,
    },
    Mkdir {
        parent: u8,
        name: u8,
    },
    Remove {
        dir: u8,
        name: u8,
    },
    Rename {
        dir: u8,
        name: u8,
        to_dir: u8,
        to_name: u8,
    },
    SetSize {
        dir: u8,
        name: u8,
        size: u32,
    },
}

fn ns_ops() -> impl Strategy<Value = Vec<NsOp>> {
    let dir = 0u8..4;
    let name = 0u8..12;
    prop::collection::vec(
        prop_oneof![
            (dir.clone(), name.clone()).prop_map(|(dir, name)| NsOp::CreateFile { dir, name }),
            (dir.clone(), name.clone()).prop_map(|(parent, name)| NsOp::Mkdir { parent, name }),
            (dir.clone(), name.clone()).prop_map(|(dir, name)| NsOp::Remove { dir, name }),
            (dir.clone(), name.clone(), dir.clone(), name.clone()).prop_map(
                |(dir, name, to_dir, to_name)| NsOp::Rename {
                    dir,
                    name,
                    to_dir,
                    to_name
                }
            ),
            (dir, name, 0u32..10_000_000).prop_map(|(dir, name, size)| NsOp::SetSize {
                dir,
                name,
                size
            }),
        ],
        0..120,
    )
}

proptest! {
    #[test]
    fn volume_matches_flat_model(ops in ns_ops()) {
        use nt_fs::{FsError, Volume, VolumeConfig};
        use nt_sim::SimTime;
        use std::collections::HashMap;

        let now = SimTime::from_secs(1);
        let mut vol = Volume::new(VolumeConfig::local_ntfs(1 << 30));
        // Four fixed directories d0..d3 under the root.
        let dirs: Vec<nt_fs::NodeId> = (0..4)
            .map(|i| vol.mkdir(vol.root(), &format!("d{i}"), now).expect("fresh"))
            .collect();
        // Model: (dir index, name index) -> size.
        let mut model: HashMap<(u8, u8), u64> = HashMap::new();

        for op in &ops {
            match *op {
                NsOp::CreateFile { dir, name } => {
                    let r = vol.create_file(dirs[dir as usize], &format!("f{name}"), now);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry((dir, name)) {
                        prop_assert!(r.is_ok());
                        e.insert(0);
                    } else {
                        prop_assert_eq!(r.unwrap_err(), FsError::AlreadyExists);
                    }
                }
                NsOp::Mkdir { parent, name } => {
                    // Directory names collide with files in the same dir.
                    let r = vol.mkdir(dirs[parent as usize], &format!("f{name}"), now);
                    if model.contains_key(&(parent, name)) {
                        prop_assert_eq!(r.unwrap_err(), FsError::AlreadyExists);
                    } else {
                        // Created a directory occupying the name; remove it
                        // again to keep the model files-only.
                        let id = r.expect("fresh directory");
                        vol.remove(id, now).expect("empty directory removes");
                    }
                }
                NsOp::Remove { dir, name } => {
                    match vol.child(dirs[dir as usize], &format!("f{name}")) {
                        Ok(id) => {
                            prop_assert!(model.contains_key(&(dir, name)));
                            vol.remove(id, now).expect("file removes");
                            model.remove(&(dir, name));
                        }
                        Err(e) => {
                            prop_assert_eq!(e, FsError::NotFound);
                            prop_assert!(!model.contains_key(&(dir, name)));
                        }
                    }
                }
                NsOp::Rename { dir, name, to_dir, to_name } => {
                    let src = vol.child(dirs[dir as usize], &format!("f{name}"));
                    match src {
                        Ok(id) => {
                            let same = (dir, name) == (to_dir, to_name);
                            let r = vol.rename(
                                id,
                                dirs[to_dir as usize],
                                &format!("f{to_name}"),
                                now,
                            );
                            if model.contains_key(&(to_dir, to_name)) && !same {
                                prop_assert_eq!(r.unwrap_err(), FsError::AlreadyExists);
                            } else if same {
                                // Renaming onto itself collides with its own
                                // entry in this model's semantics.
                                prop_assert!(r.is_err());
                            } else {
                                prop_assert!(r.is_ok());
                                let size = model.remove(&(dir, name)).expect("tracked");
                                model.insert((to_dir, to_name), size);
                            }
                        }
                        Err(_) => prop_assert!(!model.contains_key(&(dir, name))),
                    }
                }
                NsOp::SetSize { dir, name, size } => {
                    match vol.child(dirs[dir as usize], &format!("f{name}")) {
                        Ok(id) => {
                            vol.set_file_size(id, size as u64, now).expect("fits");
                            model.insert((dir, name), size as u64);
                        }
                        Err(_) => prop_assert!(!model.contains_key(&(dir, name))),
                    }
                }
            }
        }

        // Final state agrees: every model entry resolves with its size,
        // and the stats add up.
        let mut total = 0u64;
        for (&(dir, name), &size) in &model {
            let id = vol
                .child(dirs[dir as usize], &format!("f{name}"))
                .expect("model entry exists");
            prop_assert_eq!(vol.file_size(id).expect("is a file"), size);
            total += size;
        }
        prop_assert_eq!(vol.stats().files as usize, model.len());
        prop_assert_eq!(vol.stats().used_bytes, total);
        // The snapshot walker sees exactly the model's files.
        let snap = nt_trace::SnapshotWalker::walk_volume(
            nt_fs::VolumeId(0),
            &vol,
            SimTime::from_secs(2),
        );
        prop_assert_eq!(snap.file_count(), model.len());
    }
}

// ---------------------------------------------------------------------
// Hierarchical merge: the sharded collection tree reduces per-machine
// aggregates shard → aggregator → fleet, so the merge must be exactly
// associative and insensitive to how machines are partitioned into
// shards — not merely close up to float reassociation.
// ---------------------------------------------------------------------

use nt_analysis::schema::test_support::synthetic_trace_set;
use nt_analysis::sizes::SizeAccumulator;
use nt_analysis::{HistogramSketch, SpillRuns};

/// Weighted samples tagged with an owning group (machine).
fn tagged_samples() -> impl Strategy<Value = Vec<(f64, u64, u8)>> {
    prop::collection::vec((1e-3f64..1e9, 1u64..1_000, 0u8..5), 0..200)
}

/// Merges group sketches `order`-wise with an arbitrary association:
/// `splits` picks where the fold restarts a fresh sub-tree.
fn merge_tree(groups: &[HistogramSketch], splits: &[bool]) -> HistogramSketch {
    let mut subtrees: Vec<HistogramSketch> = Vec::new();
    for (i, g) in groups.iter().enumerate() {
        let fresh = subtrees.is_empty() || *splits.get(i).unwrap_or(&false);
        if fresh {
            subtrees.push(g.clone());
        } else {
            subtrees.last_mut().unwrap().merge(g);
        }
    }
    let mut root = HistogramSketch::new();
    for s in &subtrees {
        root.merge(s);
    }
    root
}

proptest! {
    #[test]
    fn histogram_merge_is_associative_and_order_insensitive(
        samples in tagged_samples(),
        splits_a in prop::collection::vec(any::<bool>(), 5..6),
        splits_b in prop::collection::vec(any::<bool>(), 5..6),
    ) {
        let mut groups = vec![HistogramSketch::new(); 5];
        let mut whole = HistogramSketch::new();
        for &(v, w, g) in &samples {
            groups[g as usize].record_weighted(v, w);
            whole.record_weighted(v, w);
        }
        // merge(a, merge(b, c)) == merge(merge(a, b), c), generalized:
        // any two association trees over the same group order agree.
        let a = merge_tree(&groups, &splits_a);
        let b = merge_tree(&groups, &splits_b);
        prop_assert_eq!(&a, &b);
        // Order-insensitive: reversing the shard order changes nothing.
        let reversed: Vec<HistogramSketch> = groups.iter().rev().cloned().collect();
        let c = merge_tree(&reversed, &splits_a);
        prop_assert_eq!(&a, &c);
        // And the hierarchy is invisible: any tree equals the flat
        // single-sketch ingest, fixed-point sum included.
        prop_assert_eq!(&a, &whole);
        prop_assert_eq!(a.sum(), whole.sum());
    }

    #[test]
    fn accumulator_merge_is_shard_partition_insensitive(
        shards_a in prop::collection::vec(0usize..4, 6..7),
        shards_b in prop::collection::vec(0usize..4, 6..7),
    ) {
        // Six "machines", each with its own accumulator over its own
        // slice of instances — the per-machine state the sinks build.
        let ts = synthetic_trace_set(240, 97);
        let instances = &ts.instances;
        let machines: Vec<SizeAccumulator> = (0..6)
            .map(|m| {
                let mut acc = SizeAccumulator::new();
                for inst in instances.iter().skip(m).step_by(6) {
                    acc.push_instance(inst);
                }
                acc
            })
            .collect();
        // Partitioning machines into shards, merging within each shard,
        // then across shards in shard order must equal the flat
        // machine-order merge — for *any* partition assignment.
        let reduce = |assign: &[usize]| {
            let mut shards: Vec<SizeAccumulator> =
                (0..4).map(|_| SizeAccumulator::new()).collect();
            for (m, acc) in machines.iter().enumerate() {
                shards[assign[m]].merge(acc);
            }
            let mut fleet = SizeAccumulator::new();
            for s in &shards {
                fleet.merge(s);
            }
            fleet
        };
        let mut flat = SizeAccumulator::new();
        for acc in &machines {
            flat.merge(acc);
        }
        prop_assert_eq!(&reduce(&shards_a), &flat);
        prop_assert_eq!(&reduce(&shards_b), &flat);
    }

    #[test]
    fn spill_absorb_is_order_insensitive(
        parts in prop::collection::vec(
            prop::collection::vec(0.001f64..1e6, 0..40), 1..6),
        order in any::<u64>(),
    ) {
        // The tail spills are merged shard-by-shard; the k-way sorted
        // stream (and hence every order statistic the Hill estimator
        // reads) must not depend on absorb order.
        let build = |indices: &[usize]| {
            let mut all = SpillRuns::new(16, None, "prop-absorb");
            for &i in indices {
                let mut one = SpillRuns::new(16, None, "prop-part");
                for &v in &parts[i] {
                    one.push(v);
                }
                all.absorb(one);
            }
            let mut out = Vec::new();
            all.for_each_sorted(|v| out.push(v));
            out
        };
        let forward: Vec<usize> = (0..parts.len()).collect();
        let mut shuffled = forward.clone();
        // Cheap deterministic shuffle from the seed.
        for i in (1..shuffled.len()).rev() {
            let j = (order.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(build(&forward), build(&shuffled));
    }
}

// ---------------------------------------------------------------------
// Generational arena vs a naive live/retired model: ABA safety.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ArenaOp {
    /// Insert a fresh value.
    Insert(u32),
    /// Remove one of the currently live handles (chosen by modulo).
    Remove(usize),
    /// Probe one of the retired handles (chosen by modulo) through every
    /// accessor — the ABA attack surface.
    ProbeStale(usize),
}

fn arena_ops() -> impl Strategy<Value = Vec<ArenaOp>> {
    prop::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(ArenaOp::Insert),
            any::<usize>().prop_map(ArenaOp::Remove),
            any::<usize>().prop_map(ArenaOp::ProbeStale),
        ],
        0..120,
    )
}

proptest! {
    // The dispatch arena's whole reason to exist: a handle freed and
    // its slot reused — any number of times — must never resolve to
    // the slot's new occupant. The model keeps every retired handle
    // forever and re-probes them all at the end, so reuse at any depth
    // is exercised, not just the first generation bump.
    #[test]
    fn arena_stale_handles_never_resolve(ops in arena_ops()) {
        use nt_io::{Arena, ArenaHandle};

        let mut arena: Arena<u32> = Arena::new();
        let mut live: Vec<(ArenaHandle, u32)> = Vec::new();
        let mut retired: Vec<ArenaHandle> = Vec::new();
        for op in &ops {
            match *op {
                ArenaOp::Insert(v) => {
                    let h = arena.insert(v);
                    prop_assert_ne!(h.pack(), 0);
                    prop_assert_eq!(ArenaHandle::unpack(h.pack()), h);
                    live.push((h, v));
                }
                ArenaOp::Remove(pick) if !live.is_empty() => {
                    let (h, v) = live.swap_remove(pick % live.len());
                    prop_assert_eq!(arena.remove(h), Some(v));
                    retired.push(h);
                }
                ArenaOp::ProbeStale(pick) if !retired.is_empty() => {
                    let h = retired[pick % retired.len()];
                    prop_assert!(!arena.contains(h));
                    prop_assert_eq!(arena.get(h), None);
                    prop_assert_eq!(arena.get_mut(h), None);
                    prop_assert_eq!(arena.remove(h), None);
                    prop_assert!(!arena.contains_raw(h.pack()));
                    prop_assert_eq!(arena.get_raw(h.pack()), None);
                }
                _ => {}
            }
            prop_assert_eq!(arena.len(), live.len());
        }
        // Every live handle still resolves to exactly its value...
        for &(h, v) in &live {
            prop_assert_eq!(arena.get(h).copied(), Some(v));
        }
        // ...iteration shows precisely the live set, slot-ordered...
        let mut expected: Vec<(ArenaHandle, u32)> = live.clone();
        expected.sort_by_key(|(h, _)| h.index());
        let seen: Vec<(ArenaHandle, u32)> =
            arena.iter().map(|(h, v)| (h, *v)).collect();
        prop_assert_eq!(seen, expected);
        // ...and no retired handle ever came back to life, no matter
        // how many times its slot was recycled since.
        for &h in &retired {
            prop_assert!(!arena.contains(h), "stale handle {h:?} resolved");
            prop_assert_eq!(arena.get_raw(h.pack()), None);
        }
    }
}
