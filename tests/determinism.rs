//! Determinism and regression guarantees of the collection pipeline.
//!
//! The study's value rests on reproducibility: the same seed must yield
//! the same trace bit-for-bit, no matter how many worker threads carried
//! the machines, and the fault-injection layer must be invisible when its
//! plan is empty. These tests pin all three properties.

use std::collections::HashMap;

use nt_study::{MachineRun, StreamOptions, Study, StudyConfig};
use nt_trace::{CollectionServer, MachineId};

fn per_machine_counts(data: &nt_study::StudyData) -> HashMap<u32, usize> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for (m, _) in data.trace_set.records.iter() {
        *counts.entry(m).or_default() += 1;
    }
    counts
}

#[test]
fn same_seed_same_study() {
    let config = StudyConfig::smoke_test(21);
    let a = Study::run(&config);
    let b = Study::run(&config);
    assert_eq!(a.total_records, b.total_records, "record head-count");
    assert_eq!(a.stored_bytes, b.stored_bytes, "compressed footprint");
    assert_eq!(
        per_machine_counts(&a),
        per_machine_counts(&b),
        "per-machine record counts"
    );
    assert_eq!(
        a.trace_set.records, b.trace_set.records,
        "the full record streams are identical"
    );
    // And a different seed actually changes the trace.
    let mut other = config.clone();
    other.seed = 22;
    let c = Study::run(&other);
    assert_ne!(a.trace_set.records, c.trace_set.records);
}

#[test]
fn parallel_study_equals_serial_study() {
    let config = StudyConfig::smoke_test(33);
    let parallel = Study::run(&config);
    let serial = Study::run_with_workers(&config, 1);
    assert_eq!(parallel.total_records, serial.total_records);
    assert_eq!(parallel.stored_bytes, serial.stored_bytes);
    assert_eq!(parallel.trace_set.records, serial.trace_set.records);
    assert_eq!(
        parallel.trace_set.instances.len(),
        serial.trace_set.instances.len()
    );
    for (p, s) in parallel.machines.iter().zip(serial.machines.iter()) {
        assert_eq!(p.id, s.id);
        assert_eq!(p.loss, s.loss, "ledgers agree machine by machine");
    }
}

#[test]
fn zero_fault_plan_is_byte_identical_to_the_direct_pipeline() {
    // The fault layer must be a no-op when the plan is empty: running the
    // study through the fault-aware pool produces byte-for-byte the same
    // compressed batches as shipping each machine straight into a local
    // collection server, the pre-fault pipeline shape.
    let config = StudyConfig::smoke_test(55);
    assert!(config.faults.is_none(), "smoke preset carries no faults");
    let study = Study::run(&config);

    let mut direct = CollectionServer::new();
    for (index, spec) in config.machines.iter().enumerate() {
        let mut run = MachineRun::build(&config, index, spec);
        let mut server = CollectionServer::new();
        run.simulate(&config, &mut server);
        let ledger = run.loss_ledger();
        assert!(ledger.reconciles());
        assert_eq!(ledger.lost(), 0, "clean runs lose nothing");
        direct.merge(server);
    }
    assert_eq!(study.total_records, direct.total_records());
    assert_eq!(
        study.stored_bytes,
        direct.stored_bytes(),
        "identical batch boundaries compress to identical bytes"
    );
    for index in 0..config.machines.len() {
        let id = MachineId(index as u32);
        let direct_records = direct.records_for(id);
        let study_records: Vec<_> = study
            .trace_set
            .records
            .iter()
            .filter(|(m, _)| *m == id.0)
            .map(|(_, r)| r)
            .collect();
        let mut sorted = direct_records.clone();
        sorted.sort_by_key(|r| (r.start_ticks, r.file_object));
        assert_eq!(
            study_records.len(),
            sorted.len(),
            "machine {index} record counts"
        );
        assert_eq!(study_records, sorted, "machine {index} record streams");
    }
}

#[test]
fn streaming_study_rebuilds_identical_fact_tables() {
    // The tentpole guarantee of the streaming pipeline: with `retain` on,
    // feeding shipments through the per-machine sinks and rebuilding the
    // fact tables yields bit-for-bit what the materialize-everything path
    // produces — same records, same instances, same name table.
    let config = StudyConfig::smoke_test(21);
    let batch = Study::run(&config);
    let streamed = Study::run_streaming(
        &config,
        &StreamOptions {
            retain: true,
            ..StreamOptions::default()
        },
    );
    assert_eq!(batch.total_records, streamed.total_records, "head-count");
    assert_eq!(
        batch.stored_bytes, streamed.stored_bytes,
        "identical batch boundaries compress to identical bytes"
    );
    let rebuilt = streamed
        .trace_set
        .as_ref()
        .expect("retain keeps the fact tables");
    assert_eq!(batch.trace_set.records, rebuilt.records, "record table");
    assert_eq!(
        batch.trace_set.instances, rebuilt.instances,
        "open/close instance table"
    );
    assert_eq!(batch.trace_set.names, rebuilt.names, "name table");
}

#[test]
fn streaming_study_is_deterministic() {
    let config = StudyConfig::smoke_test(34);
    let a = Study::run_streaming(&config, &StreamOptions::default());
    let b = Study::run_streaming(&config, &StreamOptions::default());
    assert_eq!(a.total_records, b.total_records);
    assert_eq!(a.stored_bytes, b.stored_bytes);
    assert_eq!(a.summary.records, b.summary.records);
    assert_eq!(a.summary.names, b.summary.names);
    assert_eq!(a.summary.ops.opens_ok, b.summary.ops.opens_ok);
    assert_eq!(a.summary.ops.opens_failed, b.summary.ops.opens_failed);
    assert_eq!(a.summary.sessions.all.len(), b.summary.sessions.all.len());
    assert_eq!(a.summary.arrivals.all.len(), b.summary.arrivals.all.len());
    assert_eq!(a.summary.size_tail_alpha, b.summary.size_tail_alpha);
    assert_eq!(a.summary.duration_tail_alpha, b.summary.duration_tail_alpha);
    assert_eq!(a.summary.peak_open_sessions, b.summary.peak_open_sessions);
    assert_eq!(a.summary.peak_state_bytes, b.summary.peak_state_bytes);
}

#[test]
fn multi_day_faulted_fleet_keeps_streaming_and_batch_tables_identical() {
    // The full 45-machine fleet over two simulated days with the lossy
    // fault plan active — agent suspensions, shipping refusals and
    // network partitions all firing. The gap-excluded fact tables the
    // two pipelines build (records, open/close instances, names) must
    // still be bit-for-bit identical: fault windows may only remove
    // records, never reorder or corrupt what survives, and both
    // pipelines must exclude exactly the same gaps.
    //
    // This run is ~10 M surviving records; it needs the lazy-writer
    // worklist in `nt-cache` (the per-second scan used to walk every
    // cache map, which made multi-day simulations quadratic in traced
    // time and this test infeasible).
    let mut config = StudyConfig::evaluation(91);
    config.duration = nt_sim::SimDuration::from_secs(2 * 86_400);
    config.snapshot_interval = nt_sim::SimDuration::from_secs(86_400);
    config.files_per_volume = 100;
    config.web_cache_files = 20;
    config.faults = nt_study::FaultPlan::lossy();
    assert_eq!(config.machines.len(), 45, "paper fleet");

    let batch = Study::run(&config);
    let streamed = Study::run_streaming(
        &config,
        &StreamOptions {
            retain: true,
            ..StreamOptions::default()
        },
    );
    let lost: u64 = streamed.machines.iter().map(|m| m.loss.lost()).sum();
    assert!(lost > 0, "the lossy plan should have dropped records");
    assert!(
        batch.total_records > 1_000_000,
        "multi-day scale, got {} records",
        batch.total_records
    );
    assert_eq!(batch.total_records, streamed.total_records, "head-count");
    assert_eq!(batch.stored_bytes, streamed.stored_bytes, "stored bytes");
    let rebuilt = streamed
        .trace_set
        .as_ref()
        .expect("retain keeps the fact tables");
    // `assert!` with `==`, not `assert_eq!`: a failure must not try to
    // print ten million records.
    assert!(
        batch.trace_set.records == rebuilt.records,
        "record tables diverge ({} batch vs {} streaming rows)",
        batch.trace_set.records.len(),
        rebuilt.records.len()
    );
    assert!(
        batch.trace_set.instances == rebuilt.instances,
        "instance tables diverge ({} batch vs {} streaming rows)",
        batch.trace_set.instances.len(),
        rebuilt.instances.len()
    );
    assert!(
        batch.trace_set.names == rebuilt.names,
        "name tables diverge ({} batch vs {} streaming entries)",
        batch.trace_set.names.len(),
        rebuilt.names.len()
    );
}

/// FNV-1a over a `Debug` rendering: a stable, dependency-free digest for
/// locking large fact tables against refactors without checking the
/// tables themselves in.
fn fnv1a(digest: &mut u64, text: &str) {
    for b in text.bytes() {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Digest of a trace set's three tables: records, instances, names.
fn digest_trace_set(set: &nt_analysis::TraceSet) -> [u64; 3] {
    let seed = 0xcbf2_9ce4_8422_2325u64;
    let mut records = seed;
    for (m, r) in set.records.iter() {
        fnv1a(&mut records, &format!("{m}:{r:?}"));
    }
    let mut instances = seed;
    for inst in &set.instances {
        fnv1a(&mut instances, &format!("{inst:?}"));
    }
    let mut names = seed;
    let mut sorted: Vec<_> = set.names.iter().collect();
    sorted.sort();
    for ((m, fo), path) in sorted {
        fnv1a(&mut names, &format!("{m}:{fo}:{path}"));
    }
    [records, instances, names]
}

fn digest_study(data: &nt_study::StudyData) -> [u64; 5] {
    let seed = 0xcbf2_9ce4_8422_2325u64;
    let [records, instances, names] = digest_trace_set(&data.trace_set);
    let mut ledgers = seed;
    let mut counters = seed;
    for m in &data.machines {
        fnv1a(&mut ledgers, &format!("{:?}:{:?}", m.id, m.loss));
        fnv1a(
            &mut counters,
            &format!(
                "{:?}:{:?}:{:?}:{:?}:{}",
                m.id, m.io, m.cache, m.vm, m.residual_dirty_bytes
            ),
        );
    }
    [records, instances, names, ledgers, counters]
}

/// The faulted 45-machine fleet used by the refactor lock below.
fn locked_fleet() -> StudyConfig {
    let mut config = StudyConfig::paper_scale(4_242);
    config.duration = nt_sim::SimDuration::from_secs(600);
    config.snapshot_interval = nt_sim::SimDuration::from_secs(300);
    config.files_per_volume = 1_200;
    config.web_cache_files = 150;
    config.faults = nt_study::FaultPlan::lossy();
    config
}

/// Golden digests of the locked fleet's fact tables, name table, loss
/// ledgers and per-machine counters (the inputs of every conservation
/// account), captured on `main` before the driver-stack refactor landed.
/// A change here means the simulated trace itself changed — which the
/// refactor, and any future stack work, must not do.
const LOCKED_FLEET_DIGESTS: [u64; 5] = [
    0x751949feb61e3785,
    0x4c7494fcd271444b,
    0x76f9a98f439129cd,
    0xe5dc45272e52c2fa,
    0x5fc4a9729afaeef1,
];

#[test]
fn driver_stack_keeps_the_faulted_fleet_bit_identical() {
    // Telemetry off and on must both reproduce the recorded digests:
    // the stack refactor (and the span filter it hangs telemetry on)
    // may not move a single byte of the study's output.
    let silent = Study::run(&locked_fleet());
    assert_eq!(
        digest_study(&silent),
        LOCKED_FLEET_DIGESTS,
        "telemetry-off fleet diverged from the pre-refactor tables"
    );

    let dir = std::env::temp_dir().join(format!("nt-determinism-lock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut watched_config = locked_fleet();
    watched_config.telemetry = nt_study::TelemetryConfig::On(nt_study::TelemetryOptions {
        dir: Some(dir.clone()),
        sample_interval: nt_sim::SimDuration::from_secs(30),
        ..nt_study::TelemetryOptions::default()
    });
    let watched = Study::run(&watched_config);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        digest_study(&watched),
        LOCKED_FLEET_DIGESTS,
        "telemetry-on fleet diverged from the pre-refactor tables"
    );
}

#[test]
fn warehouse_reimport_of_the_faulted_fleet_is_bit_identical_to_live_ingest() {
    // The 45-machine faulted fleet, exported to an NTT warehouse while
    // it streams, then re-ingested from disk through a fresh set of
    // streaming sinks. Everything analytical must be bit-identical to
    // the live run: the retained fact tables digest-for-digest, the
    // streaming summary field-for-field (only the scheduling watermarks
    // — parked records and live state bytes — may differ between a
    // threaded run and a sequential re-ingest), and the directly-follows
    // graph over per-file event sequences at similarity exactly 1.0 —
    // not approximately: any dropped, duplicated or reordered record
    // moves the score strictly below one.
    let config = locked_fleet();
    let dir = std::env::temp_dir().join(format!("nt-determinism-warehouse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut live = Study::run_streaming(
        &config,
        &StreamOptions {
            retain: true,
            warehouse: Some(dir.clone()),
            ..StreamOptions::default()
        },
    );
    assert!(live.total_lost() > 0, "the lossy plan should have fired");
    let stats = live.warehouse.take().expect("export stats present");
    assert_eq!(stats.len(), 45, "one segment per machine");
    assert_eq!(
        stats.iter().map(|s| s.records).sum::<u64>(),
        live.summary.records,
        "the warehouse holds exactly what the analysis saw"
    );

    let mut ingest = Study::ingest_warehouse(
        &dir,
        &StreamOptions {
            retain: true,
            ..StreamOptions::default()
        },
    )
    .expect("the exported warehouse re-ingests");
    let _ = std::fs::remove_dir_all(&dir);

    let live_set = live.trace_set.take().expect("retained");
    let ingest_set = ingest.trace_set.take().expect("retained");
    assert_eq!(
        digest_trace_set(&live_set),
        digest_trace_set(&ingest_set),
        "fact-table/name-table digests diverge between live and reimported ingest"
    );

    let mut a = live.summary;
    let mut b = ingest.summary;
    a.peak_parked_records = 0;
    b.peak_parked_records = 0;
    a.peak_state_bytes = 0;
    b.peak_state_bytes = 0;
    assert!(a == b, "streaming summaries diverge");

    let live_dfg = nt_analysis::dfg::Dfg::of_trace_set(&live_set);
    let reimported_dfg = nt_analysis::dfg::Dfg::of_trace_set(&ingest_set);
    assert!(live_dfg.events > 50_000, "got {} events", live_dfg.events);
    assert_eq!(
        live_dfg.similarity(&reimported_dfg),
        1.0,
        "DFG similarity between live and reimported runs must be exactly 1.0"
    );
}

/// The documented memory ceiling for the streaming analysis state at the
/// paper's 45-machine deployment shape (see EXPERIMENTS.md). The ceiling
/// covers the per-machine sinks — open-session builders, parked
/// out-of-order shipments, CDF sketches and spill buffers — not the
/// simulators themselves, which exist in either pipeline.
const STREAMING_STATE_CEILING_BYTES: usize = 64 << 20;

#[test]
fn paper_shaped_streaming_run_stays_under_the_memory_ceiling() {
    // The full 45-machine fleet at a shortened tracing period. Without
    // `retain`, no record stream is ever materialized: the analysis state
    // must stay bounded no matter how long the trace runs, and the spill
    // runs keep the tail analyses exact on disk.
    let mut config = StudyConfig::evaluation(7);
    config.duration = nt_sim::SimDuration::from_secs(600);
    config.snapshot_interval = nt_sim::SimDuration::from_secs(300);
    config.files_per_volume = 1_000;
    config.web_cache_files = 100;
    let spill_dir =
        std::env::temp_dir().join(format!("nt-determinism-spill-{}", std::process::id()));
    let data = Study::run_streaming(
        &config,
        &StreamOptions {
            retain: false,
            spill_dir: Some(spill_dir.clone()),
            ..StreamOptions::default()
        },
    );
    let _ = std::fs::remove_dir_all(&spill_dir);
    assert_eq!(data.machines.len(), 45);
    assert!(data.trace_set.is_none(), "nothing materialized");
    assert!(
        data.summary.records > 10_000,
        "got {} records",
        data.summary.records
    );
    assert!(
        data.summary.peak_state_bytes < STREAMING_STATE_CEILING_BYTES,
        "peak streaming state {} exceeds the {} MiB ceiling",
        data.summary.peak_state_bytes,
        STREAMING_STATE_CEILING_BYTES >> 20
    );
}

/// One pass of a watch-heavy, deferred-close-heavy scenario on a bare
/// machine, returning the observer's record streams as rendered lines.
fn watched_machine_run() -> (Vec<String>, Vec<String>) {
    use nt_fs::{NtPath, VolumeConfig};
    use nt_io::{
        AccessMode, CreateOptions, DiskParams, Disposition, Machine, MachineConfig, ProcessId,
        VecObserver,
    };
    use nt_sim::{SimDuration, SimTime};

    let mut m = Machine::new(MachineConfig::default(), VecObserver::default());
    let vol = m.add_local_volume(
        'C',
        VolumeConfig::local_ntfs(1 << 30),
        DiskParams::local_ide(),
    );
    let p = ProcessId(7);
    let dir_opts = CreateOptions {
        directory: true,
        ..CreateOptions::default()
    };
    let mut at = SimTime::from_secs(1);

    // Arm change-notification watches on several directories at once.
    for d in 0..4 {
        let (reply, h) = m.create(
            p,
            vol,
            &NtPath::parse(&format!(r"\watched-{d}")),
            AccessMode::ReadWrite,
            Disposition::OpenIf,
            dir_opts,
            at,
        );
        assert!(reply.status.is_success());
        at = m.watch_directory(h.expect("dir opened"), at).end;
    }

    // Dirty several files per watched directory (each create fires that
    // directory's pending notification), then close them all while the
    // lazy writer still holds their data — a pile of deferred closes.
    let mut files = Vec::new();
    for d in 0..4 {
        for f in 0..3 {
            let path = format!(r"\watched-{d}\f{f}.dat");
            let (reply, h) = m.create(
                p,
                vol,
                &NtPath::parse(&path),
                AccessMode::ReadWrite,
                Disposition::OpenIf,
                CreateOptions::default(),
                at,
            );
            assert!(reply.status.is_success());
            let h = h.expect("file opened");
            at = m.write(h, Some(0), 48 * 1024, at).end;
            files.push((h, path));
        }
    }
    for (h, _) in &files {
        at = m.close(*h, at).end;
    }

    // Truncating reopens purge the cache map and release the deferred
    // closes queued behind the lazy writer; interleave with background
    // pumping so pending completions drain between requests.
    for (_, path) in &files {
        let (reply, h) = m.create(
            p,
            vol,
            &NtPath::parse(path),
            AccessMode::ReadWrite,
            Disposition::OverwriteIf,
            CreateOptions::default(),
            at,
        );
        assert!(reply.status.is_success());
        at = m.close(h.expect("reopened"), at).end;
        m.pump(at);
    }
    m.pump(at + SimDuration::from_secs(600));

    let events = m
        .observer()
        .events
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    let objects = m
        .observer()
        .objects
        .iter()
        .map(|o| format!("{o:?}"))
        .collect();
    (events, objects)
}

#[test]
fn machine_record_stream_is_identical_across_runs_in_one_process() {
    // Two full machines in the same process: any per-instance hash-map
    // RandomState deciding watch, deferred-close or pending-completion
    // order would make the second stream diverge from the first. The
    // kernel maps are BTreeMaps and the pending queue is an arena-backed
    // binary heap precisely so this holds.
    let (events_a, objects_a) = watched_machine_run();
    let (events_b, objects_b) = watched_machine_run();
    assert!(!events_a.is_empty());
    assert_eq!(events_a, events_b, "event streams identical run-to-run");
    assert_eq!(objects_a, objects_b, "name records identical run-to-run");
}
