//! Integration tests for the systems beyond the core reproduction:
//! sharing/locking, the MDL path, the collector pool, the OLAP cube, the
//! replay engine and the synthetic-benchmark loop.

use nt_analysis::{dimensions, processes, profile};
use nt_cache::CacheConfig;
use nt_io::{EventKind, FastIoKind};
use nt_study::{replay, ReplayConfig, Study, StudyConfig, StudyData, SyntheticBench};
use std::sync::OnceLock;

fn data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| Study::run(&StudyConfig::smoke_test(404)))
}

#[test]
fn lock_traffic_appears_in_traces() {
    // The administrative machines run database engines that take
    // byte-range locks; the FastIO lock calls must reach the trace.
    let locks = data()
        .trace_set
        .records
        .iter()
        .filter(|(_, r)| {
            matches!(
                r.kind(),
                EventKind::FastIo(FastIoKind::Lock)
                    | EventKind::FastIo(FastIoKind::UnlockSingle)
                    | EventKind::FastIo(FastIoKind::UnlockAll)
            )
        })
        .count();
    assert!(locks > 0, "lock operations recorded");
    let granted: u64 = data().machines.iter().map(|m| m.io.locks_granted).sum();
    assert!(granted > 0);
}

#[test]
fn cifs_server_mdl_traffic_appears() {
    // §3.4 noise: the system process serves remote clients via MDL reads.
    let mdl = data()
        .trace_set
        .records
        .iter()
        .filter(|(_, r)| r.kind() == EventKind::FastIo(FastIoKind::MdlRead))
        .count();
    assert!(mdl > 0, "MDL reads recorded");
    // All MDL traffic comes from the system process (id 0).
    for (_, r) in data()
        .trace_set
        .records
        .iter()
        .filter(|(_, r)| r.kind() == EventKind::FastIo(FastIoKind::MdlRead))
    {
        assert_eq!(r.process, 0, "only the kernel service uses MDL (§10)");
    }
}

#[test]
fn cube_conserves_and_drills() {
    let cube = dimensions::type_cube(&data().trace_set);
    assert!(cube.consistent());
    // The transient-files category exists (scratch + web cache churn).
    let transient = cube.drill_down(dimensions::TopCategory::TransientFiles);
    assert!(!transient.is_empty());
}

#[test]
fn process_analysis_finds_system_noise() {
    let a = processes::process_analysis(&data().trace_set);
    // The system process (0) appears on machines that served remotes.
    let system_machines = a.per_process.keys().filter(|(_, p)| *p == 0).count();
    assert!(system_machines > 0, "§3.4 server sessions traced");
    assert!(a.top_decile_share > 0.05);
}

#[test]
fn replay_policy_ordering_is_sane() {
    let ts = &data().trace_set;
    let baseline = replay(ts, &ReplayConfig::default());
    let no_ra = replay(
        ts,
        &ReplayConfig {
            cache: CacheConfig {
                readahead_enabled: false,
                ..CacheConfig::default()
            },
            ..ReplayConfig::default()
        },
    );
    let irp_only = replay(
        ts,
        &ReplayConfig {
            disable_fastio: true,
            ..ReplayConfig::default()
        },
    );
    assert!(baseline.hit_rate() > no_ra.hit_rate(), "read-ahead helps");
    assert_eq!(irp_only.fastio_reads, 0);
    assert_eq!(
        baseline.replayed_requests, irp_only.replayed_requests,
        "the same trace is replayed under every policy"
    );
}

#[test]
fn fit_generate_refit_preserves_tail_weight() {
    // The §7 loop: fit a profile, generate synthetic load, and verify the
    // generated arrivals are still bursty (dispersion ≫ 1).
    let p = profile::fit_profile(&data().trace_set).expect("fit succeeds");
    let mut bench = SyntheticBench::new(p, nt_io::MachineConfig::default(), 300, 77);
    bench.run(nt_sim::SimDuration::from_secs(600));
    let binned = nt_analysis::burstiness::bin_arrivals(&bench.open_ticks, 10);
    assert!(
        binned.dispersion() > 1.5,
        "synthetic load keeps its burstiness: {}",
        binned.dispersion()
    );
}

#[test]
fn agent_outages_thin_the_trace_but_nothing_breaks() {
    // §3 failure injection: agents suspend during connection losses; the
    // analysis pipeline must tolerate the resulting gaps.
    let mut flaky = StudyConfig::smoke_test(404);
    flaky.faults.agent_outage_mean = Some(nt_sim::SimDuration::from_secs(45));
    let lossy = Study::run(&flaky);
    // The machine-side counters see every open; the filter misses the
    // ones issued while suspended.
    let machine_opens: u64 = lossy
        .machines
        .iter()
        .map(|m| m.io.opens + m.io.open_failures)
        .sum();
    let traced_opens = lossy.trace_set.creates().count() as u64;
    assert!(
        traced_opens < machine_opens,
        "outages lose create records: traced {traced_opens} vs issued {machine_opens}"
    );
    assert!(
        traced_opens > machine_opens / 10,
        "but most of the trace survives"
    );
    // The clean run records everything.
    let clean = data();
    let clean_machine_opens: u64 = clean
        .machines
        .iter()
        .map(|m| m.io.opens + m.io.open_failures)
        .sum();
    assert_eq!(
        clean.trace_set.creates().count() as u64,
        clean_machine_opens,
        "without outages the filter misses nothing"
    );
    // The fact tables and every analysis still build.
    assert!(!lossy.trace_set.instances.is_empty());
    let o = nt_analysis::ops::operational_stats(&lossy.trace_set);
    assert!(o.opens_ok > 0);
    let t = nt_analysis::patterns::access_patterns(&lossy.trace_set);
    let total = t.read_only.share_accesses.mean
        + t.write_only.share_accesses.mean
        + t.read_write.share_accesses.mean;
    assert!((total - 100.0).abs() < 1e-6 || total == 0.0);
}

#[test]
fn fat_volumes_appear_in_snapshots() {
    // A quarter of non-scientific machines run FAT: their snapshots have
    // files without creation/last-access times.
    let mut fat_machines = 0;
    for m in &data().machines {
        let has_fat_files = m
            .snapshots
            .iter()
            .any(|s| s.records.iter().any(|r| !r.is_dir && r.creation.is_none()));
        if has_fat_files {
            fat_machines += 1;
        }
    }
    // With 5 machines at 25% each this can be 0 by chance for some seeds;
    // seed 404 was chosen so at least one FAT volume exists.
    assert!(
        fat_machines >= 1,
        "at least one FAT machine in the smoke fleet"
    );
}
