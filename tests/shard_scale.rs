//! Scale-up invariants of the sharded collection tree.
//!
//! Two locks on `Study::run_sharded`:
//!
//! 1. **Memory**: the flat pipeline's documented ceiling — 64 MiB of
//!    live analysis state per 45-machine fleet — becomes a *per-shard*
//!    budget proportional to the shard's machine count. A
//!    1,000-machine / 8-shard run must hold every shard under its
//!    budget, because the whole point of the tree is that analysis
//!    state scales with shard width, not fleet width.
//! 2. **Bit-identity**: shard count and worker count are performance
//!    knobs, nothing more. On the faulted 45-machine fleet, the fact
//!    tables, name tables and loss ledgers must be byte-identical
//!    across shard counts 1/4/8 and worker counts 1/N, telemetry on or
//!    off — and the merged summary must satisfy `==`, which is exact
//!    (integer and fixed-point state only). The two peak watermarks
//!    (`peak_parked_records`, `peak_state_bytes`) record *how far out
//!    of order* failover delivery happened to run — a scheduling fact,
//!    not an analytical one — so they are zeroed before the comparison.

use nt_study::{ShardOptions, StreamOptions, Study, StudyConfig};

/// The flat pipeline's documented analysis-state ceiling for the
/// paper's 45-machine deployment (see `tests/determinism.rs` and
/// EXPERIMENTS.md).
const PER_45_MACHINES_CEILING_BYTES: usize = 64 << 20;

/// The ceiling scaled to one shard's machine count.
fn shard_budget_bytes(machines: usize) -> usize {
    (PER_45_MACHINES_CEILING_BYTES * machines).div_ceil(45)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nt-shard-scale-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn thousand_machine_sharded_run_holds_every_shard_under_budget() {
    // 1,000 machines in the paper's category proportions, 8 shards,
    // spill runs on disk — the org-scale shape from the ROADMAP. The
    // audited entry point doubles as the conservation check: every
    // machine, every shard and the fleet root must balance at width
    // 1,000 exactly as they do at width 45.
    let config = StudyConfig::org_scale(31, 1_000);
    let spill_dir = temp_dir("spill");
    let audited = Study::run_sharded_audited(
        &config,
        &ShardOptions {
            shards: 8,
            spill_dir: Some(spill_dir.clone()),
            ..ShardOptions::default()
        },
    )
    .expect("audited sharded run balances");
    let _ = std::fs::remove_dir_all(&spill_dir);
    let data = &audited.data;
    assert_eq!(data.data.machines.len(), 1_000);
    assert_eq!(data.shards.len(), 8);
    assert_eq!(audited.ledgers.len(), 1_000);
    assert_eq!(audited.shard_ledgers.len(), 8);
    assert!(
        data.data.summary.records > 100_000,
        "org-scale head-count, got {}",
        data.data.summary.records
    );
    assert!(data.data.trace_set.is_none(), "nothing materialized");
    for shard in &data.shards {
        let budget = shard_budget_bytes(shard.machines.len());
        assert_eq!(shard.machines.len(), 125, "near-even split");
        assert!(shard.total_records > 0, "shard {} was idle", shard.shard);
        assert!(
            shard.peak_state_bytes < budget,
            "shard {} peak analysis state {} exceeds its {} byte budget",
            shard.shard,
            shard.peak_state_bytes,
            budget
        );
    }
    // The shard partials partition the fleet exactly.
    let analysed: u64 = data.shards.iter().map(|s| s.records).sum();
    assert_eq!(analysed, data.data.summary.records);
    let shipped: usize = data.shards.iter().map(|s| s.total_records).sum();
    assert_eq!(shipped, data.data.total_records);
}

/// FNV-1a over a `Debug` rendering (same digest the determinism suite
/// uses to lock fact tables without checking them in).
fn fnv1a(digest: &mut u64, text: &str) {
    for b in text.bytes() {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Digests of everything the scale-up must not move: the record table,
/// the open/close instance table, the name table, and every machine's
/// loss ledger.
fn digest_tables(data: &nt_study::StreamedStudyData) -> [u64; 4] {
    let seed = 0xcbf2_9ce4_8422_2325u64;
    let ts = data.trace_set.as_ref().expect("retain keeps the tables");
    let mut records = seed;
    for (m, r) in ts.records.iter() {
        fnv1a(&mut records, &format!("{m}:{r:?}"));
    }
    let mut instances = seed;
    for inst in &ts.instances {
        fnv1a(&mut instances, &format!("{inst:?}"));
    }
    let mut names = seed;
    let mut sorted: Vec<_> = ts.names.iter().collect();
    sorted.sort();
    for ((m, fo), path) in sorted {
        fnv1a(&mut names, &format!("{m}:{fo}:{path}"));
    }
    let mut ledgers = seed;
    for m in &data.machines {
        fnv1a(&mut ledgers, &format!("{:?}:{:?}", m.id, m.loss));
    }
    [records, instances, names, ledgers]
}

/// The faulted 45-machine fleet the digests run on: the full paper
/// roster with the lossy fault plan active, shortened to keep six runs
/// affordable.
fn faulted_fleet(telemetry_on: bool) -> StudyConfig {
    let mut config = StudyConfig::paper_scale(2_020);
    config.duration = nt_sim::SimDuration::from_secs(300);
    config.snapshot_interval = nt_sim::SimDuration::from_secs(150);
    config.files_per_volume = 600;
    config.web_cache_files = 80;
    config.faults = nt_study::FaultPlan::lossy();
    if telemetry_on {
        config.telemetry = nt_study::TelemetryConfig::On(nt_study::TelemetryOptions {
            sample_interval: nt_sim::SimDuration::from_secs(30),
            ..nt_study::TelemetryOptions::default()
        });
    }
    config
}

/// Zeroes the scheduling watermarks (see the module doc) so the rest of
/// the summary can be held to exact `==`.
fn scrub_watermarks(summary: &mut nt_analysis::StudySummary) {
    summary.peak_parked_records = 0;
    summary.peak_state_bytes = 0;
}

#[test]
fn digests_are_bit_identical_across_shard_and_worker_counts() {
    let mut flat = Study::run_streaming(
        &faulted_fleet(false),
        &StreamOptions {
            retain: true,
            ..StreamOptions::default()
        },
    );
    let reference = digest_tables(&flat);
    assert!(flat.total_lost() > 0, "the lossy plan should drop records");
    let mut want = std::mem::take(&mut flat.summary);
    scrub_watermarks(&mut want);

    // (shards, workers, telemetry) — every axis the issue names.
    let variants: &[(usize, Option<usize>, bool)] = &[
        (1, Some(1), false),
        (4, Some(1), false),
        (4, None, false),
        (8, None, false),
        (8, None, true),
    ];
    for &(shards, workers, telemetry_on) in variants {
        let mut sharded = Study::run_sharded(
            &faulted_fleet(telemetry_on),
            &ShardOptions {
                shards,
                workers,
                retain: true,
                ..ShardOptions::default()
            },
        );
        let label = format!("shards={shards} workers={workers:?} telemetry={telemetry_on}");
        assert_eq!(sharded.shards.len(), shards, "{label}");
        assert_eq!(
            digest_tables(&sharded.data),
            reference,
            "{label}: fact tables, name table or loss ledgers diverged"
        );
        assert_eq!(
            sharded.data.total_records, flat.total_records,
            "{label}: pool head-count"
        );
        assert_eq!(
            sharded.data.stored_bytes, flat.stored_bytes,
            "{label}: stored bytes"
        );
        // Exact summary equality — the hierarchical merge is integer
        // and fixed-point state only, so `==` is the right bar once the
        // scheduling watermarks are out of the way.
        let mut got = std::mem::take(&mut sharded.data.summary);
        scrub_watermarks(&mut got);
        assert_eq!(got, want, "{label}: merged summary");
    }
}

#[test]
fn aggregator_fanout_is_invisible() {
    // The middle tier's shape (how many shards each aggregator merges)
    // must be as invisible as the shard count itself.
    let config = StudyConfig::smoke_test(23);
    let narrow = Study::run_sharded(
        &config,
        &ShardOptions {
            shards: 4,
            aggregator_fanout: 1,
            ..ShardOptions::default()
        },
    );
    let wide = Study::run_sharded(
        &config,
        &ShardOptions {
            shards: 4,
            aggregator_fanout: 64,
            ..ShardOptions::default()
        },
    );
    assert_eq!(narrow.aggregators, 4);
    assert_eq!(wide.aggregators, 1);
    assert_eq!(narrow.data.summary, wide.data.summary);
    assert_eq!(narrow.data.total_records, wide.data.total_records);
}
