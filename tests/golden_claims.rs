//! Golden paper-claims lockdown for the streaming analysis pipeline.
//!
//! A fixed-seed smoke-scale study is summarized by the streaming sinks and
//! compared against `tests/golden/smoke_summary.json`, a checked-in flat
//! `{"metric": number}` file. Counts must match exactly; derived fractions
//! and tail exponents get a small relative tolerance so that benign
//! floating-point reassociation (e.g. a different merge order) does not
//! churn the golden file.
//!
//! When a change legitimately moves the numbers — a workload tweak, a new
//! record kind — regenerate with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_claims
//! ```
//!
//! and review the diff like any other source change: it *is* the claim.

use std::collections::BTreeMap;
use std::path::PathBuf;

use nt_study::{StreamOptions, Study, StudyConfig};

const GOLDEN_SEED: u64 = 1999; // SOSP'99.

/// Exact-match metrics (event counts; integers in disguise).
const EXACT: &[&str] = &[
    "records",
    "names",
    "opens_ok",
    "opens_failed",
    "reads_ok",
    "writes_ok",
    "sessions",
    "arrival_gaps",
];

/// Tolerance for derived ratios, quantiles and tail exponents.
const REL_TOL: f64 = 0.05;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("smoke_summary.json")
}

/// Computes every locked metric from a fresh streaming run.
fn measure() -> BTreeMap<String, f64> {
    let config = StudyConfig::smoke_test(GOLDEN_SEED);
    let data = Study::run_streaming(&config, &StreamOptions::default());
    let s = &data.summary;
    let mut m = BTreeMap::new();
    // Head counts — any drift here means the pipeline changed behaviour.
    m.insert("records".into(), s.records as f64);
    m.insert("names".into(), s.names as f64);
    m.insert("opens_ok".into(), s.ops.opens_ok as f64);
    m.insert("opens_failed".into(), s.ops.opens_failed as f64);
    m.insert("reads_ok".into(), s.ops.reads.0 as f64);
    m.insert("writes_ok".into(), s.ops.writes.0 as f64);
    m.insert("sessions".into(), s.sessions.all.len() as f64);
    m.insert("arrival_gaps".into(), s.arrivals.all.len() as f64);
    // §4–§8 claims, as reproduced at smoke scale.
    m.insert(
        "control_only_fraction".into(),
        s.ops.control_only_fraction(),
    );
    m.insert(
        "read_512_4096_fraction".into(),
        s.ops.read_512_4096_fraction(),
    );
    m.insert("open_fail_not_found".into(), s.ops.open_fail_not_found());
    m.insert(
        "fastio_read_fraction".into(),
        s.latency.fastio_read_fraction(),
    );
    m.insert("read_write_byte_ratio".into(), s.read_write_byte_ratio());
    m.insert(
        "session_median_ms".into(),
        s.sessions.all.median().unwrap_or(0.0),
    );
    m.insert(
        "short_session_fraction".into(),
        s.sessions.all.fraction_at_or_below(10.0),
    );
    m.insert(
        "active_second_fraction".into(),
        s.arrivals.active_second_fraction(),
    );
    m.insert("size_tail_alpha".into(), s.size_tail_alpha);
    m.insert("duration_tail_alpha".into(), s.duration_tail_alpha);
    m
}

/// Renders the metric map as the golden file's JSON.
fn render(metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("  \"{k}\": {v:.6}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Parses the flat `{"key": number}` golden file. Hand-rolled on purpose:
/// the workspace carries no JSON dependency and the format is fixed.
fn parse(text: &str) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("bad golden value for {key}: {e}"));
        m.insert(key.to_string(), value);
    }
    m
}

#[test]
fn summary_matches_the_golden_claims() {
    let measured = measure();
    let path = golden_path();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(&measured)).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = parse(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_REGEN=1",
            path.display()
        )
    }));
    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        measured.keys().collect::<Vec<_>>(),
        "metric sets diverge; regenerate with GOLDEN_REGEN=1 and review"
    );
    let mut failures = Vec::new();
    for (key, &want) in &golden {
        let got = measured[key];
        let ok = if EXACT.contains(&key.as_str()) {
            got == want
        } else if want == 0.0 {
            got.abs() < 1e-9
        } else {
            ((got - want) / want).abs() <= REL_TOL
        };
        if !ok {
            failures.push(format!("  {key}: golden {want} measured {got}"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden claims drifted:\n{}\nIf intentional, GOLDEN_REGEN=1 and review the diff.",
        failures.join("\n")
    );
}

#[test]
fn golden_file_is_well_formed() {
    let golden = parse(&std::fs::read_to_string(golden_path()).expect("golden file is checked in"));
    assert!(golden.len() >= 15, "got {} metrics", golden.len());
    for (k, v) in &golden {
        assert!(v.is_finite(), "{k} is not finite");
    }
}
