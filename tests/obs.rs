//! Telemetry must observe without perturbing.
//!
//! The §3 filter driver's cardinal rule — instrumentation must not change
//! the workload it watches — applies to `nt-obs` too: running the faulted
//! 45-machine fleet with spans, samplers and the span log all enabled has
//! to produce bit-identical fact tables and loss ledgers to a silent run,
//! while still leaving behind well-formed artefacts (per-machine span
//! JSONL with monotone simulated timestamps, the fleet `timeseries.jsonl`,
//! and a populated [`nt_study::RuntimeProfile`]).

use std::fs;
use std::path::{Path, PathBuf};

use nt_study::{FaultPlan, ShardOptions, Study, StudyConfig, TelemetryConfig, TelemetryOptions};

/// The faulted 45-machine smoke fleet: paper topology, short period.
fn faulted_fleet(seed: u64) -> StudyConfig {
    let mut c = StudyConfig::paper_scale(seed);
    c.duration = nt_sim::SimDuration::from_secs(600);
    c.snapshot_interval = nt_sim::SimDuration::from_secs(300);
    c.files_per_volume = 1_200;
    c.web_cache_files = 150;
    c.faults = FaultPlan::lossy();
    c
}

fn artefact_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nt-obs-it-{tag}-{}", std::process::id()))
}

/// Pulls the integer value of a `"key":N` field out of a hand-rolled
/// JSONL line (the span log never nests objects).
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check_span_log(path: &Path, machine: u64) {
    let text = fs::read_to_string(path).expect("span log readable");
    let mut last_sim = 0u64;
    let mut lines = 0usize;
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "span line is a JSON object: {line}"
        );
        assert_eq!(json_u64(line, "m"), Some(machine), "machine id: {line}");
        for key in ["sim", "host_enter_ns", "host_ns", "self_ns", "depth"] {
            assert!(json_u64(line, key).is_some(), "field {key} in {line}");
        }
        let sim = json_u64(line, "sim").unwrap();
        assert!(
            sim >= last_sim,
            "sim stamps are monotone per machine: {sim} after {last_sim}"
        );
        last_sim = sim;
        let total = json_u64(line, "host_ns").unwrap();
        assert!(json_u64(line, "self_ns").unwrap() <= total);
        lines += 1;
    }
    assert!(lines > 0, "machine {machine} logged at least one span");
}

#[test]
fn telemetry_does_not_perturb_the_study() {
    let dir = artefact_dir("fleet");
    let _ = fs::remove_dir_all(&dir);

    let silent = Study::run(&faulted_fleet(4_040));

    let mut watched_config = faulted_fleet(4_040);
    watched_config.telemetry = TelemetryConfig::On(TelemetryOptions {
        dir: Some(dir.clone()),
        sample_interval: nt_sim::SimDuration::from_secs(30),
        ..TelemetryOptions::default()
    });
    let watched = Study::run(&watched_config);

    // The whole point: watching the fleet changes nothing it produces.
    // `assert!` rather than `assert_eq!` — a failure diff over these
    // tables would be megabytes of unreadable output.
    assert!(
        silent.trace_set.records == watched.trace_set.records,
        "record streams are bit-identical with telemetry on"
    );
    assert!(
        silent.trace_set.instances == watched.trace_set.instances,
        "instance tables are bit-identical with telemetry on"
    );
    assert!(
        silent.trace_set.names == watched.trace_set.names,
        "name tables are bit-identical with telemetry on"
    );
    assert_eq!(silent.total_records, watched.total_records);
    assert_eq!(silent.stored_bytes, watched.stored_bytes);
    assert!(
        watched.total_lost() > 0,
        "the lossy plan visibly dropped records, so the ledgers are live"
    );
    for (s, w) in silent.machines.iter().zip(watched.machines.iter()) {
        assert_eq!(s.id, w.id);
        assert_eq!(s.loss, w.loss, "machine {:?} ledger unchanged", s.id);
        assert_eq!(s.residual_dirty_bytes, w.residual_dirty_bytes);
        // The conservation-audit ledgers are posted from these counters,
        // so equality here is equality of every audit account too.
        assert_eq!(s.io, w.io, "machine {:?} io counters unchanged", s.id);
        assert_eq!(s.cache, w.cache, "machine {:?} cache counters", s.id);
        assert_eq!(s.vm, w.vm, "machine {:?} vm counters", s.id);
    }

    // The silent run carries no telemetry at all; the watched run's
    // profile attributes wall-clock to the phases the fleet exercised.
    assert!(silent.profile.is_empty(), "telemetry off leaves no profile");
    assert!(silent.machines.iter().all(|m| m.telemetry.is_none()));
    let profile = watched.profile;
    for phase in [
        nt_study::Phase::Dispatch,
        nt_study::Phase::Cache,
        nt_study::Phase::Trace,
        nt_study::Phase::Analysis,
    ] {
        assert!(
            profile.phase(phase).spans > 0,
            "phase {phase:?} recorded spans"
        );
    }
    assert!(profile.total_self_ns() > 0);

    // The published per-layer ns/op budget: the silent run has no rows,
    // the watched run prices every phase that ran, dispatch included.
    assert!(silent.layer_budget().is_empty());
    let budget = watched.layer_budget();
    assert!(!budget.is_empty());
    let dispatch = budget
        .iter()
        .find(|b| b.phase == nt_study::Phase::Dispatch)
        .expect("dispatch layer priced");
    assert!(dispatch.spans > 0);
    assert!(dispatch.ns_per_op > 0.0);
    assert_eq!(
        dispatch.ns_per_op,
        dispatch.self_ns as f64 / dispatch.spans as f64
    );

    // Span logs: one per machine, well-formed JSONL, monotone sim stamps.
    for m in &watched.machines {
        let telemetry = m.telemetry.as_ref().expect("telemetry report present");
        assert!(telemetry.spans_logged > 0);
        let log = dir.join(format!("spans-m{:02}.jsonl", m.id.0));
        check_span_log(&log, u64::from(m.id.0));
        // The sampler landed the headline gauges for this machine.
        for name in ["cache.resident_bytes", "engine.queue_depth", "io.ops"] {
            let series = telemetry
                .series(name)
                .unwrap_or_else(|| panic!("series {name} on machine {:?}", m.id));
            assert!(!series.points.is_empty());
        }
    }

    // The fleet time-series artefact: fleet-scope rows with points.
    let text = fs::read_to_string(dir.join("timeseries.jsonl")).expect("timeseries.jsonl written");
    let fleet_rows: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"scope\":\"fleet\""))
        .collect();
    assert!(!fleet_rows.is_empty(), "fleet-scope rows exported");
    assert!(
        fleet_rows
            .iter()
            .any(|l| l.contains("\"series\":\"trace.lost_records\"") && l.contains("\"points\":[[")),
        "fleet loss counter has sampled points"
    );
    assert!(
        text.lines().any(|l| l.contains("\"scope\":\"category:")),
        "per-category rollups exported"
    );

    let _ = fs::remove_dir_all(&dir);
}

/// The causal shipment tracer, flight recorder and watchdogs all ride
/// the sharded pipeline without perturbing it: the faulted 45-machine
/// fleet produces bit-identical fact tables, ledgers and aggregates
/// whether the whole observability stack is on or off, while the traced
/// run additionally leaves behind `trace.json`, the exactly-once
/// `flight-recorder.jsonl` (via `dump_on_loss` under the lossy plan),
/// causal hop spans and typed health findings.
#[test]
fn shipment_tracing_does_not_perturb_the_sharded_study() {
    let dir = artefact_dir("trace-fleet");
    let _ = fs::remove_dir_all(&dir);

    let options = ShardOptions {
        shards: 4,
        retain: true,
        ..ShardOptions::default()
    };
    let silent = Study::run_sharded(&faulted_fleet(5_050), &options);

    let mut traced_config = faulted_fleet(5_050);
    traced_config.telemetry = TelemetryConfig::On(TelemetryOptions {
        dir: Some(dir.clone()),
        sample_interval: nt_sim::SimDuration::from_secs(30),
        trace_shipments: true,
        flight_recorder: true,
        watchdogs: true,
        dump_on_loss: true,
        ..TelemetryOptions::default()
    });
    let traced = Study::run_sharded(&traced_config, &options);

    // Fact tables: bit-identical (retain rebuilt the exact tables).
    let s = silent.data.trace_set.as_ref().expect("silent retained");
    let t = traced.data.trace_set.as_ref().expect("traced retained");
    assert!(
        s.records == t.records,
        "record streams are bit-identical with tracing on"
    );
    assert!(
        s.instances == t.instances,
        "instance tables are bit-identical with tracing on"
    );
    assert!(s.names == t.names, "name tables are bit-identical");

    assert_eq!(silent.data.total_records, traced.data.total_records);
    assert_eq!(silent.data.stored_bytes, traced.data.stored_bytes);
    assert!(
        traced.data.total_lost() > 0,
        "the lossy plan visibly dropped records"
    );
    for (a, b) in silent.data.machines.iter().zip(traced.data.machines.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.loss, b.loss, "machine {:?} ledger unchanged", a.id);
        assert_eq!(a.io, b.io, "machine {:?} io counters unchanged", a.id);
        assert_eq!(a.cache, b.cache, "machine {:?} cache counters", a.id);
        assert_eq!(a.vm, b.vm, "machine {:?} vm counters", a.id);
    }
    for (a, b) in silent.shards.iter().zip(traced.shards.iter()) {
        assert_eq!(a.records, b.records, "shard {} head-count", a.shard);
        assert_eq!(a.machines, b.machines, "shard {} machine range", a.shard);
    }

    // Aggregates: identical up to the operational peaks, which depend on
    // thread interleaving (out-of-order failover delivery), not facts.
    let mut a = silent.data.summary;
    let mut b = traced.data.summary;
    a.peak_parked_records = 0;
    b.peak_parked_records = 0;
    a.peak_state_bytes = 0;
    b.peak_state_bytes = 0;
    assert!(a == b, "streaming aggregates unchanged by tracing");

    // The silent run carried no observability state at all.
    assert!(silent.data.shipment_spans.is_empty());
    assert!(silent.data.health.is_empty());
    assert!(!silent.data.flight_recorder.is_enabled());
    assert!(silent.shards.iter().all(|s| s.findings.is_empty()));

    // The traced run left the causal timeline and the post-mortem dump.
    assert!(
        !traced.data.shipment_spans.is_empty(),
        "tracing captured hop spans"
    );
    assert!(
        dir.join("trace.json").exists(),
        "Chrome trace artefact written"
    );
    assert!(
        traced.data.flight_recorder.dumped(),
        "dump_on_loss fired the exactly-once flight-recorder dump"
    );
    assert!(dir.join("flight-recorder.jsonl").exists());
    assert!(
        !traced.data.health.is_empty(),
        "watchdogs surfaced findings under the lossy plan"
    );

    let _ = fs::remove_dir_all(&dir);
}
