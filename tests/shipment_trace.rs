//! Acceptance validation of the causal shipment-tracing artefacts.
//!
//! Runs the faulted 45-machine sharded fleet (with warehouse export,
//! so every pipeline tier is live) twice with the full observability
//! stack enabled and checks the acceptance bar end to end:
//!
//! 1. **Determinism** — same seed, same config ⇒ byte-identical
//!    `trace.json` and `flight-recorder.jsonl` across runs, because
//!    every artefact is keyed on simulated time and deterministic ids.
//! 2. **Causality** — the Chrome trace parses, every batch resolves to
//!    a complete `agent.batch → agent.ship → collector.recv` chain with
//!    `analysis.ingest` and `warehouse.export` both parented to the
//!    collect hop, every parent id resolves, intervals are well-nested,
//!    and the spanned record counts conserve against the loss ledgers.
//! 3. **Post-mortem** — the lossy plan trips the exactly-once flight
//!    recorder dump, and the newest `records_dropped` event of every
//!    lossy machine reconciles with that machine's [`LossLedger`].
//!
//! The repo ships no JSON dependency, so the validator parses the
//! Chrome document with a small hand-rolled recursive-descent parser.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::PathBuf;

use nt_study::{FaultPlan, ShardOptions, Study, StudyConfig, TelemetryConfig, TelemetryOptions};

// ---------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, f64 numbers).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn u64(&self, key: &str) -> Option<u64> {
        let n = self.num(key)?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
    }

    /// A `"%016x"`-encoded id field.
    fn hex(&self, key: &str) -> Option<u64> {
        u64::from_str_radix(self.str(key)?, 16).ok()
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at offset {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            Some(&c) => {
                // Copy the full UTF-8 sequence starting at this byte.
                let len = if c < 0x80 {
                    1
                } else if c < 0xE0 {
                    2
                } else if c < 0xF0 {
                    3
                } else {
                    4
                };
                let chunk = b.get(*pos..*pos + len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad UTF-8")?);
                *pos += len;
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at offset {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at offset {pos}", pos = *pos));
        }
        *pos += 1;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

// ---------------------------------------------------------------------
// The traced fleet under test.
// ---------------------------------------------------------------------

/// The faulted 45-machine fleet with the whole observability stack on.
fn traced_fleet(seed: u64, dir: &std::path::Path) -> StudyConfig {
    let mut c = StudyConfig::paper_scale(seed);
    c.duration = nt_sim::SimDuration::from_secs(600);
    c.snapshot_interval = nt_sim::SimDuration::from_secs(300);
    c.files_per_volume = 1_200;
    c.web_cache_files = 150;
    c.faults = FaultPlan::lossy();
    c.telemetry = TelemetryConfig::On(TelemetryOptions {
        dir: Some(dir.to_path_buf()),
        sample_interval: nt_sim::SimDuration::from_secs(30),
        trace_shipments: true,
        flight_recorder: true,
        watchdogs: true,
        dump_on_loss: true,
        ..TelemetryOptions::default()
    });
    c
}

fn artefact_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nt-shiptrace-{tag}-{}", std::process::id()))
}

/// One parsed `"ph":"X"` complete event off the Chrome timeline.
struct Ev {
    name: String,
    pid: u64,
    ts: f64,
    end: f64,
    trace: u64,
    span: u64,
    parent: u64,
    records: u64,
    server: Option<u64>,
    shard: Option<u64>,
}

const HOPS: [&str; 5] = [
    "agent.batch",
    "agent.ship",
    "collector.recv",
    "analysis.ingest",
    "warehouse.export",
];

fn tier_pid(hop: &str) -> u64 {
    match hop {
        "agent.batch" | "agent.ship" => 1,
        "collector.recv" => 2,
        "analysis.ingest" => 3,
        "warehouse.export" => 4,
        other => panic!("unknown hop {other}"),
    }
}

#[test]
fn traced_faulted_fleet_artefacts_validate_and_are_deterministic() {
    let dir_a = artefact_dir("a");
    let dir_b = artefact_dir("b");
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);

    let options = |dir: &std::path::Path| ShardOptions {
        shards: 4,
        warehouse: Some(dir.join("warehouse")),
        ..ShardOptions::default()
    };
    let run_a = Study::run_sharded(&traced_fleet(6_060, &dir_a), &options(&dir_a));
    let run_b = Study::run_sharded(&traced_fleet(6_060, &dir_b), &options(&dir_b));

    // ---- 1. Determinism: byte-identical artefacts across runs. ----
    let trace_a = fs::read_to_string(dir_a.join("trace.json")).expect("run A wrote trace.json");
    let trace_b = fs::read_to_string(dir_b.join("trace.json")).expect("run B wrote trace.json");
    assert!(
        trace_a == trace_b,
        "same-seed runs render byte-identical Chrome traces"
    );
    let dump_a =
        fs::read_to_string(dir_a.join("flight-recorder.jsonl")).expect("run A dumped the recorder");
    let dump_b =
        fs::read_to_string(dir_b.join("flight-recorder.jsonl")).expect("run B dumped the recorder");
    assert!(
        dump_a == dump_b,
        "same-seed runs dump byte-identical flight recorders"
    );
    assert!(run_a.data.flight_recorder.dumped());
    assert!(run_b.data.flight_recorder.dumped());
    assert_eq!(
        run_a.data.shipment_spans, run_b.data.shipment_spans,
        "the in-memory span lists match across same-seed runs too"
    );
    assert!(
        run_a.data.total_lost() > 0,
        "the lossy plan visibly dropped records"
    );

    // ---- 2. The Chrome trace parses and the causal chains close. ----
    let doc = Json::parse(&trace_a).expect("trace.json is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array present");
    };

    // One process-name metadata record per pipeline tier.
    for (pid, tier) in [
        (1, "tier: agents"),
        (2, "tier: collectors"),
        (3, "tier: analysis"),
        (4, "tier: warehouse"),
    ] {
        assert!(
            events.iter().any(|e| e.str("ph") == Some("M")
                && e.u64("pid") == Some(pid)
                && e.get("args").and_then(|a| a.str("name")) == Some(tier)),
            "tier {pid} named on the timeline"
        );
    }

    // Decode every complete event and group by (machine, batch seq).
    let mut batches: BTreeMap<(u64, u64), Vec<Ev>> = BTreeMap::new();
    let mut total_events = 0usize;
    for e in events.iter().filter(|e| e.str("ph") == Some("X")) {
        assert_eq!(e.str("cat"), Some("shipment"));
        let args = e.get("args").expect("X event has args");
        let name = e.str("name").expect("X event named").to_string();
        let ts = e.num("ts").expect("ts");
        let dur = e.num("dur").expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0);
        assert_eq!(
            e.u64("pid"),
            Some(tier_pid(&name)),
            "pid matches tier: {name}"
        );
        let ev = Ev {
            pid: e.u64("pid").unwrap(),
            ts,
            end: ts + dur,
            trace: args.hex("trace").expect("trace id"),
            span: args.hex("span").expect("span id"),
            parent: args.hex("parent").expect("parent id"),
            records: args.u64("records").expect("records"),
            server: args.u64("server"),
            shard: args.u64("shard"),
            name,
        };
        assert_eq!(e.u64("tid"), args.u64("machine"), "tid is the machine id");
        let machine = args.u64("machine").expect("machine");
        let seq = args.u64("seq").expect("seq");
        batches.entry((machine, seq)).or_default().push(ev);
        total_events += 1;
    }
    assert_eq!(
        total_events,
        run_a.data.shipment_spans.len(),
        "the artefact carries every captured span"
    );
    assert!(!batches.is_empty(), "tracing captured delivered batches");

    let mut spanned_delivered = 0u64;
    for ((machine, seq), group) in &batches {
        let find = |hop: &str| {
            let hits: Vec<&Ev> = group.iter().filter(|e| e.name == hop).collect();
            assert_eq!(
                hits.len(),
                1,
                "machine {machine} batch {seq}: exactly one {hop} span"
            );
            hits[0]
        };
        let batch = find(HOPS[0]);
        let ship = find(HOPS[1]);
        let recv = find(HOPS[2]);
        let ingest = find(HOPS[3]);
        let export = find(HOPS[4]);
        assert_eq!(group.len(), 5, "no stray spans on the batch");

        // One trace id spans the whole chain; ids are live and unique.
        let chain = [batch, ship, recv, ingest, export];
        assert!(chain.iter().all(|e| e.trace == batch.trace && e.trace != 0));
        let span_ids: BTreeSet<u64> = chain.iter().map(|e| e.span).collect();
        assert_eq!(span_ids.len(), 5, "span ids are distinct");
        assert!(!span_ids.contains(&0));

        // Parent links: batch is the root; the two aggregator-tier hops
        // (analysis + warehouse) both hang off the collect hop.
        assert_eq!(batch.parent, 0, "batch span is the root");
        assert_eq!(ship.parent, batch.span);
        assert_eq!(recv.parent, ship.span);
        assert_eq!(ingest.parent, recv.span);
        assert_eq!(export.parent, recv.span);

        // Intervals are well-nested down the chain.
        for (child, parent) in [(ship, batch), (recv, ship), (ingest, recv), (export, recv)] {
            assert!(
                child.ts >= parent.ts && child.end <= parent.end,
                "machine {machine} batch {seq}: {} ⊆ {}",
                child.name,
                parent.name
            );
        }

        // The batch head-count rides every hop unchanged.
        assert!(batch.records > 0, "empty batches emit no spans");
        assert!(chain.iter().all(|e| e.records == batch.records));
        spanned_delivered += batch.records;

        // The collect hop names its server; the sharded run stamps the
        // shard on every collector-tier-and-later hop, consistently.
        assert!(recv.server.is_some(), "collect hop carries the server");
        assert!(recv.shard.is_some(), "collect hop carries the shard");
        assert_eq!(ingest.shard, recv.shard);
        assert_eq!(export.shard, recv.shard);
        let _ = (batch.pid, ship.pid); // pids checked against tier above
    }

    // Conservation: the spanned record counts are exactly the ledgers'
    // delivered column, and every machine made it onto the timeline.
    let ledger_delivered: u64 = run_a.data.machines.iter().map(|m| m.loss.delivered).sum();
    assert_eq!(
        spanned_delivered, ledger_delivered,
        "agent.batch spans account for every delivered record"
    );
    let spanned_machines: BTreeSet<u64> = batches.keys().map(|(m, _)| *m).collect();
    assert_eq!(
        spanned_machines.len(),
        run_a.data.machines.len(),
        "every machine resolves to at least one complete chain"
    );

    // ---- 3. The flight-recorder dump reconciles with the ledgers. ----
    let lines: Vec<&str> = dump_a.lines().collect();
    let header = Json::parse(lines[0]).expect("dump header parses");
    assert_eq!(header.str("flight_recorder"), Some("v1"));
    assert!(
        header
            .str("reason")
            .is_some_and(|r| r.starts_with("loss-on-shutdown:")),
        "dump_on_loss named the trigger"
    );
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"flight_recorder\":\"v1\""))
            .count(),
        1,
        "exactly one dump header — the recorder latched after one dump"
    );

    // Rings dump oldest → newest, so the last records_dropped per
    // machine carries the final cumulative totals.
    let mut newest_drop: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut failovers = 0usize;
    let mut merges = 0usize;
    for line in &lines[1..] {
        let row = Json::parse(line).expect("dump line parses");
        let scope = row.str("scope").expect("dump line is scoped");
        match row.str("kind") {
            Some("records_dropped") => {
                let machine: u64 = scope
                    .strip_prefix("machine:")
                    .expect("drop events are machine-scoped")
                    .parse()
                    .unwrap();
                newest_drop.insert(
                    machine,
                    (
                        row.u64("total_suspended").expect("cumulative suspended"),
                        row.u64("total_overflow").expect("cumulative overflow"),
                    ),
                );
            }
            Some("failover") => failovers += 1,
            Some("merge_boundary") => {
                assert!(scope.starts_with("shard:"), "merges are shard-scoped");
                merges += 1;
            }
            _ => {}
        }
    }
    let mut reconciled = 0usize;
    for m in &run_a.data.machines {
        let id = u64::from(m.id.0);
        if m.loss.dropped_suspended + m.loss.dropped_overflow == 0 {
            continue;
        }
        let (suspended, overflow) = newest_drop
            .get(&id)
            .copied()
            .unwrap_or_else(|| panic!("machine {id} lost records but logged no drop event"));
        assert_eq!(
            suspended, m.loss.dropped_suspended,
            "machine {id} suspension drops"
        );
        assert_eq!(
            overflow, m.loss.dropped_overflow,
            "machine {id} overflow drops"
        );
        reconciled += 1;
    }
    assert!(reconciled > 0, "the lossy plan left drops to reconcile");
    assert_eq!(merges, 4, "one merge-boundary event per shard");
    assert!(failovers > 0, "collector outages forced recorded failovers");

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}
