//! Behaviour of the fault-injection layer end to end.
//!
//! The §3 collection pipeline was built to survive an unreliable fleet:
//! agents suspend when they lose their collectors, triple buffers absorb
//! shipping stalls, and the analysis has to cope with the holes the
//! faults leave behind. These tests pin what each fault may and may not
//! cost: suspensions lose exactly the in-window events, collector
//! downtime loses nothing at all, squeezed buffers lose only what the
//! ledger admits to, and a visibly lossy deployment still supports the
//! paper's headline analyses.

use nt_analysis::{arrivals, burstiness, gaps::LossWindows, ops};
use nt_io::observer::IoObserver;
use nt_io::{EventKind, FcbId, FileObjectId, IoEvent, MajorFunction, NtStatus, ProcessId};
use nt_sim::SimTime;
use nt_study::{FaultPlan, FaultSchedule, MachineFaults, MachineRun, Study, StudyConfig};
use nt_trace::{AgentState, CollectionServer, MachineId, TickWindow, TraceFilter};

fn read_event(i: u64) -> IoEvent {
    IoEvent {
        kind: EventKind::Irp(MajorFunction::Read),
        file_object: FileObjectId(i),
        fcb: FcbId(0),
        process: ProcessId(1),
        volume: 0,
        local: true,
        paging_io: false,
        readahead: false,
        offset: 0,
        length: 512,
        transferred: 512,
        file_size: 4096,
        byte_offset: 0,
        status: NtStatus::Success,
        start: SimTime::from_ticks(i * 1_000),
        end: SimTime::from_ticks(i * 1_000 + 30),
        access: None,
        disposition: None,
        options: None,
        set_info: None,
        created: false,
    }
}

#[test]
fn suspension_drops_exactly_the_in_window_events() {
    // Feed 100 events at ticks 0, 1000, ..., suspending for the middle
    // third. Only events arriving while suspended may be lost.
    let window = TickWindow::new(30_000, 60_000);
    let mut f = TraceFilter::new(MachineId(5));
    let mut srv = CollectionServer::new();
    let mut expected_dropped = 0u64;
    for i in 0..100u64 {
        let at = i * 1_000;
        if at == window.start_ticks {
            f.transition(AgentState::Suspended, at);
        }
        if at == window.end_ticks {
            f.transition(AgentState::Connected, at);
        }
        if window.contains(at) {
            expected_dropped += 1;
        }
        f.event(&read_event(i));
    }
    f.final_flush(&mut srv);
    let ledger = f.ledger();
    assert!(ledger.reconciles());
    assert_eq!(ledger.dropped_suspended, expected_dropped);
    assert_eq!(ledger.downtime_ticks, window.duration_ticks());
    let back = srv.records_for(MachineId(5));
    assert_eq!(back.len() as u64 + expected_dropped, 100);
    for r in &back {
        assert!(
            !window.contains(r.start_ticks),
            "record at {} inside the suspension window",
            r.start_ticks
        );
    }
}

#[test]
fn machine_outage_costs_exactly_the_suspended_records() {
    // The workload is driven by its own RNG stream, untouched by the
    // fault layer: a suspended agent still *sees* the same event stream,
    // it just declines to record part of it. So the faulted run's
    // recorded + dropped_suspended must equal the clean run's recorded.
    let config = StudyConfig::smoke_test(41);
    let spec = &config.machines[0];

    let mut clean_run = MachineRun::build(&config, 0, spec);
    let mut clean_srv = CollectionServer::new();
    clean_run.simulate(&config, &mut clean_srv);
    let clean = clean_run.loss_ledger();
    assert_eq!(clean.lost(), 0);

    let faults = MachineFaults {
        agent_outages: vec![TickWindow::new(
            100 * nt_sim::TICKS_PER_SEC,
            200 * nt_sim::TICKS_PER_SEC,
        )],
        ..MachineFaults::default()
    };
    let mut lossy_run = MachineRun::build_with_faults(&config, 0, spec, &faults);
    let mut lossy_srv = CollectionServer::new();
    lossy_run.simulate_with_faults(&config, &faults, &mut lossy_srv);
    let lossy = lossy_run.loss_ledger();

    assert!(lossy.reconciles());
    assert!(lossy.dropped_suspended > 0, "the outage lost something");
    assert_eq!(
        lossy.recorded + lossy.dropped_suspended,
        clean.recorded,
        "losses are exactly the records the clean run kept"
    );
    assert_eq!(
        lossy.downtime_ticks,
        100 * nt_sim::TICKS_PER_SEC,
        "downtime accounting matches the scheduled window"
    );
}

#[test]
fn collector_outages_lose_nothing() {
    // Server downtime forces failover (or backoff and retry when every
    // server is down) but never loses records: the triple buffer holds
    // full batches until somebody accepts them.
    let mut config = StudyConfig::smoke_test(17);
    config.faults = FaultPlan {
        collector_outages: 2,
        collector_outage_secs: (20, 60),
        ..FaultPlan::none()
    };
    let schedule = FaultSchedule::materialize(&config, 3);
    assert!(
        schedule.collectors.iter().all(|w| w.len() == 2),
        "downtime actually scheduled"
    );
    let faulted = Study::run(&config);
    for report in faulted.loss_reports() {
        assert!(report.ledger.reconciles(), "machine {:?}", report.machine);
        assert_eq!(report.ledger.lost(), 0, "machine {:?}", report.machine);
    }
    assert_eq!(faulted.total_lost(), 0);

    // Batch boundaries come from buffer fills, not shipping times, so
    // the collected trace is identical to the clean deployment's.
    let mut clean_config = config.clone();
    clean_config.faults = FaultPlan::none();
    let clean = Study::run(&clean_config);
    assert_eq!(faulted.total_records, clean.total_records);
    assert_eq!(
        faulted.trace_set.records, clean.trace_set.records,
        "server downtime only moves bytes, it never drops them"
    );
}

#[test]
fn squeezed_buffers_lose_only_what_the_ledger_admits() {
    let config = StudyConfig::smoke_test(23);
    let spec = &config.machines[0];
    let faults = MachineFaults {
        buffer_capacity: Some(40),
        ..MachineFaults::default()
    };
    let mut run = MachineRun::build_with_faults(&config, 0, spec, &faults);
    let mut srv = CollectionServer::new();
    run.simulate_with_faults(&config, &faults, &mut srv);
    let ledger = run.loss_ledger();
    assert!(
        ledger.dropped_overflow > 0,
        "40-record buffers must overflow under a real workload"
    );
    assert!(ledger.reconciles(), "delivered + overflow == recorded");
    assert_eq!(
        srv.records_for(MachineId(0)).len() as u64,
        ledger.delivered,
        "the server holds exactly the delivered records"
    );
}

#[test]
fn squeeze_probability_one_squeezes_the_whole_fleet() {
    let mut config = StudyConfig::smoke_test(29);
    config.faults = FaultPlan {
        buffer_squeeze_probability: 1.0,
        squeezed_capacity: 60,
        ..FaultPlan::none()
    };
    let schedule = FaultSchedule::materialize(&config, 3);
    assert!(schedule
        .machines
        .iter()
        .all(|m| m.buffer_capacity == Some(60)));
    let data = Study::run(&config);
    assert!(data.total_lost() > 0, "tiny buffers overflow somewhere");
    for report in data.loss_reports() {
        assert!(report.ledger.reconciles(), "machine {:?}", report.machine);
        assert_eq!(report.ledger.dropped_suspended, 0, "no agent suspended");
    }
}

#[test]
fn partition_fails_remote_requests() {
    // Cut the network for the entire run: every request against the
    // user's share must come back NetworkUnreachable, and the failures
    // land in the machine's counters and its trace.
    let config = StudyConfig::smoke_test(47);
    let spec = &config.machines[0];
    let faults = MachineFaults {
        partitions: vec![TickWindow::new(0, u64::MAX)],
        ..MachineFaults::default()
    };
    let mut run = MachineRun::build_with_faults(&config, 0, spec, &faults);
    let mut srv = CollectionServer::new();
    run.simulate_with_faults(&config, &faults, &mut srv);
    let io = run.io_metrics();
    assert!(io.network_failures > 0, "remote requests failed");
    let unreachable = srv
        .records_for(MachineId(0))
        .iter()
        .filter(|r| r.status == NtStatus::NetworkUnreachable)
        .count();
    assert!(
        unreachable > 0,
        "the trace records the NetworkUnreachable completions"
    );
    assert!(run.loss_ledger().reconciles());
}

#[test]
fn lossy_study_completes_and_analysis_degrades_gracefully() {
    let mut config = StudyConfig::smoke_test(101);
    config.faults = FaultPlan::lossy();
    let data = Study::run(&config);

    // Every ledger is internally consistent and the fleet visibly lost
    // records.
    assert_eq!(data.loss_reports().len(), data.machines.len());
    for report in data.loss_reports() {
        assert!(report.ledger.reconciles(), "machine {:?}", report.machine);
    }
    assert!(data.total_lost() > 0, "the lossy plan costs records");
    assert!(
        data.machines.iter().any(|m| m.loss.downtime_ticks > 0),
        "some agent was suspended"
    );

    // The degraded analyses run over the holes the schedule predicts.
    let schedule = FaultSchedule::materialize(&config, 3);
    let mut lossy = LossWindows::new();
    for (index, faults) in schedule.machines.iter().enumerate() {
        for w in &faults.agent_outages {
            lossy.add(index as u32, *w);
        }
    }
    assert!(!lossy.is_empty(), "the lossy plan schedules outages");

    let a = arrivals::open_arrivals_excluding(&data.trace_set, &lossy);
    assert!(!a.all.is_empty(), "arrivals survive the exclusions");
    assert!(a.active_second_fraction > 0.0);
    assert!(a.active_second_fraction <= 1.0);

    let b = burstiness::burstiness_excluding(&data.trace_set, config.seed, &lossy);
    assert_eq!(b.scales.len(), 3);

    // The paper's headline shape survives the degradation: control-only
    // opens stay a large share (the clean full-scale run sits near the
    // paper's 74 %; this reduced lossy deployment lands close to half).
    let o = ops::operational_stats(&data.trace_set);
    assert!(
        o.control_only_fraction > 0.4,
        "control-only opens remain a large share: {}",
        o.control_only_fraction
    );
}
