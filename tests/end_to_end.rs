//! End-to-end invariants of the whole pipeline: workload → I/O stack →
//! filter driver → collection server → fact tables.

use nt_analysis::{ops, TraceSet};
use nt_io::{EventKind, MajorFunction};
use nt_study::{Study, StudyConfig};
use nt_trace::filter_paging_duplicates;

fn study() -> nt_study::StudyData {
    Study::run(&StudyConfig::smoke_test(123))
}

#[test]
fn every_create_record_becomes_an_instance() {
    let data = study();
    let creates = data.trace_set.creates().count();
    assert_eq!(
        creates,
        data.trace_set.instances.len(),
        "one instance per open attempt"
    );
}

#[test]
fn successful_sessions_have_ordered_lifecycle() {
    let data = study();
    let mut closed = 0;
    for inst in &data.trace_set.instances {
        if !inst.opened() {
            assert!(inst.cleanup_ticks.is_none());
            continue;
        }
        if let Some(cu) = inst.cleanup_ticks {
            assert!(cu >= inst.open_start_ticks, "cleanup after open: {inst:?}");
            if let Some(cl) = inst.close_ticks {
                assert!(cl >= cu, "close after cleanup (two-stage, §8.1)");
                closed += 1;
            }
        }
    }
    assert!(closed > 100, "most sessions complete the two-stage close");
}

#[test]
fn paging_accounting_balances() {
    let data = study();
    // Every paging record belongs to a read or a write.
    let mut paging = 0u64;
    for (_, rec) in data.trace_set.records.iter() {
        if rec.is_paging() {
            paging += 1;
            assert!(
                rec.kind().is_read() || rec.kind().is_write(),
                "paging bit only on data majors"
            );
            assert!(
                matches!(rec.kind(), EventKind::Irp(_)),
                "paging I/O always rides IRPs"
            );
        }
    }
    assert!(paging > 0, "the VM manager produced paging traffic");
    // The §3.3 duplicate filter removes some but never all paging
    // records (image loads must survive).
    let records: Vec<_> = data.trace_set.records.iter().map(|(_, r)| r).collect();
    let kept = filter_paging_duplicates(&records);
    let kept_paging = kept.iter().filter(|r| r.is_paging()).count() as u64;
    assert!(
        kept_paging < paging,
        "cache-induced duplicates were dropped"
    );
    assert!(kept_paging > 0, "mapped-file paging survives the filter");
    // Non-paging records are untouched.
    let nonpaging = records.iter().filter(|r| !r.is_paging()).count();
    let kept_nonpaging = kept.iter().filter(|r| !r.is_paging()).count();
    assert_eq!(nonpaging, kept_nonpaging);
}

#[test]
fn record_streams_roundtrip_compression() {
    let data = study();
    // TraceSet::build already decompressed every batch; rebuilding from
    // the same streams must be byte-identical in aggregate counts.
    assert_eq!(
        data.trace_set.records.len(),
        data.total_records,
        "no records lost between server and fact tables"
    );
}

#[test]
fn machines_do_not_bleed_into_each_other() {
    let data = study();
    // File-object ids restart per machine; (machine, fo) must be unique
    // per instance.
    let mut seen = std::collections::HashSet::new();
    for inst in &data.trace_set.instances {
        assert!(
            seen.insert((inst.machine, inst.file_object)),
            "duplicate (machine, file object) pair"
        );
    }
    assert_eq!(data.trace_set.machines().len(), 5);
}

#[test]
fn error_rates_in_paper_ballpark() {
    let data = study();
    let o = ops::operational_stats(&data.trace_set);
    let open_fail = o.opens_failed as f64 / (o.opens_ok + o.opens_failed).max(1) as f64;
    assert!(
        (0.03..0.30).contains(&open_fail),
        "open failure rate {open_fail} (paper: 12%)"
    );
    assert_eq!(o.write_failure_rate, 0.0, "§8.4: no write errors");
    assert!(o.read_failure_rate < 0.1, "reads hardly ever fail");
    assert!(
        o.control_only_fraction > 0.4,
        "control operations dominate opens: {}",
        o.control_only_fraction
    );
}

#[test]
fn trace_volume_scales_to_paper_rates() {
    // §3.2: 80 thousand to 1.4 million events per machine per 24 h.
    let data = study();
    let secs = data.config.duration.as_secs() as f64;
    let per_machine_day = data.total_records as f64 / data.machines.len() as f64 / secs * 86_400.0;
    assert!(
        (20_000.0..4_000_000.0).contains(&per_machine_day),
        "events per machine-day {per_machine_day} out of plausible range"
    );
}

#[test]
fn fact_tables_rebuild_deterministically() {
    let a = Study::run(&StudyConfig::smoke_test(77));
    let b = Study::run(&StudyConfig::smoke_test(77));
    assert_eq!(a.total_records, b.total_records);
    assert_eq!(a.trace_set.instances.len(), b.trace_set.instances.len());
    // Spot-check a structural digest: per-kind record counts.
    let digest = |ts: &TraceSet| {
        let mut counts = [0u64; 54];
        for (_, r) in ts.records.iter() {
            counts[r.code as usize] += 1;
        }
        counts
    };
    assert_eq!(digest(&a.trace_set), digest(&b.trace_set));
}

#[test]
fn create_cleanup_close_counts_are_consistent() {
    let data = study();
    let count = |k: EventKind| {
        data.trace_set
            .records
            .iter()
            .filter(|(_, r)| r.kind() == k)
            .count()
    };
    let creates_ok = data
        .trace_set
        .records
        .iter()
        .filter(|(_, r)| r.kind() == EventKind::Irp(MajorFunction::Create) && r.status.is_success())
        .count();
    let cleanups = count(EventKind::Irp(MajorFunction::Cleanup));
    let closes = count(EventKind::Irp(MajorFunction::Close));
    assert_eq!(creates_ok, cleanups, "every open is cleaned up");
    // Closes can lag cleanups slightly at trace end (deferred closes are
    // drained, so equality should hold here).
    assert_eq!(cleanups, closes, "every cleanup is followed by a close");
}

/// A long soak at evaluation scale; run with `cargo test -- --ignored`.
#[test]
#[ignore = "multi-second evaluation-scale soak; run explicitly"]
fn evaluation_scale_soak() {
    let data = Study::run(&StudyConfig::evaluation(99));
    assert_eq!(data.machines.len(), 45);
    assert!(data.total_records > 100_000);
    let o = ops::operational_stats(&data.trace_set);
    assert!(o.control_only_fraction > 0.5);
    assert_eq!(o.write_failure_rate, 0.0);
    // Every table/figure renders at scale.
    let report = nt_study::report::full_report(&data);
    assert!(report.contains("Figure 14"));
    assert!(report.contains("Section 10"));
}
