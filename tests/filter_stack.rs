//! The FastIO-fallback rule, proven at fleet scale.
//!
//! A filter driver that declines the FastIO entry points forces every
//! procedural call down its documented IRP fallback (§10). The study's
//! `force_irp_fallback` switch attaches such a filter
//! ([`FastIoVeto`](nt_io::FastIoVeto)) to every machine; these tests pin
//! the two properties that make the switch an observation rather than an
//! ablation:
//!
//! * the fact tables of a vetoed run equal the baseline's **modulo the
//!   `EventKind` relabelling** — same timestamps, same transfers, same
//!   open/close instances once both sides are reduced to the IRP
//!   vocabulary; and
//! * the conservation ledgers still reconcile on the faulted fleet,
//!   because the accounting treats the FastIO and IRP paths as two
//!   legs of the same dispatch account.

use std::collections::HashMap;

use nt_analysis::TraceSet;
use nt_io::{irp_fallback, EventKind};
use nt_study::{FaultPlan, StreamOptions, Study, StudyConfig};
use nt_trace::{NameRecord, TraceRecord};

/// The faulted 45-machine fleet (the determinism suite's locked shape).
fn fleet(seed: u64) -> StudyConfig {
    let mut config = StudyConfig::paper_scale(seed);
    config.duration = nt_sim::SimDuration::from_secs(600);
    config.snapshot_interval = nt_sim::SimDuration::from_secs(300);
    config.files_per_volume = 1_200;
    config.web_cache_files = 150;
    config.faults = FaultPlan::lossy();
    config
}

/// Rewrites a record's event-kind code to its IRP fallback; IRP records
/// pass through untouched.
fn to_irp_vocabulary(mut rec: TraceRecord) -> TraceRecord {
    if let Some(EventKind::FastIo(kind)) = EventKind::from_code(rec.code) {
        rec.code = EventKind::Irp(irp_fallback(kind)).code();
    }
    rec
}

/// Rebuilds the fact tables from a record table and name dimension, so
/// both runs' instances derive from the same, order-stable procedure.
fn rebuild(records: &[(u32, TraceRecord)], names: &HashMap<(u32, u64), String>) -> TraceSet {
    let mut per_machine: HashMap<u32, Vec<TraceRecord>> = HashMap::new();
    for (m, r) in records {
        per_machine.entry(*m).or_default().push(*r);
    }
    let mut machines: Vec<u32> = per_machine.keys().copied().collect();
    machines.sort_unstable();
    TraceSet::build(machines.into_iter().map(|m| {
        let recs = per_machine.remove(&m).unwrap_or_default();
        let name_recs: Vec<NameRecord> = names
            .iter()
            .filter(|((nm, _), _)| *nm == m)
            .map(|((_, fo), path)| NameRecord {
                file_object: *fo,
                volume: 0,
                process: 0,
                path: path.clone(),
                at_ticks: 0,
            })
            .collect();
        (m, recs, name_recs)
    }))
}

#[test]
fn forced_irp_fallback_matches_the_baseline_modulo_event_kind() {
    let baseline = Study::run(&fleet(4_242));
    let mut veto_config = fleet(4_242);
    veto_config.force_irp_fallback = true;
    let vetoed = Study::run(&veto_config);

    assert_eq!(
        baseline.total_records, vetoed.total_records,
        "the veto relabels records, it never adds or removes one"
    );
    assert!(
        baseline
            .trace_set
            .records
            .iter()
            .any(|(_, r)| matches!(EventKind::from_code(r.code), Some(EventKind::FastIo(_)))),
        "the baseline exercises the FastIO path"
    );
    assert!(
        vetoed
            .trace_set
            .records
            .iter()
            .all(|(_, r)| !matches!(EventKind::from_code(r.code), Some(EventKind::FastIo(_)))),
        "no FastIO record survives the veto"
    );

    // Reduce the baseline to the IRP vocabulary; the record tables must
    // then agree byte for byte — same machines, timestamps, offsets,
    // transfers and statuses.
    let remapped: Vec<(u32, TraceRecord)> = baseline
        .trace_set
        .records
        .iter()
        .map(|(m, r)| (m, to_irp_vocabulary(r)))
        .collect();
    let vetoed_rows: Vec<(u32, TraceRecord)> = vetoed.trace_set.records.iter().collect();
    assert!(
        remapped == vetoed_rows,
        "record tables diverge beyond the EventKind relabelling \
         ({} baseline vs {} vetoed rows)",
        remapped.len(),
        vetoed_rows.len()
    );
    assert_eq!(
        baseline.trace_set.names, vetoed.trace_set.names,
        "name dimension"
    );

    // The instance table aggregates per-kind counters (fastio_reads and
    // friends), so rebuild both sides from their IRP-vocabulary records
    // with the same procedure before comparing.
    let base_rebuilt = rebuild(&remapped, &baseline.trace_set.names);
    let veto_rebuilt = rebuild(&vetoed_rows, &vetoed.trace_set.names);
    assert!(
        base_rebuilt.instances == veto_rebuilt.instances,
        "instance tables diverge ({} baseline vs {} vetoed rows)",
        base_rebuilt.instances.len(),
        veto_rebuilt.instances.len()
    );
    assert!(
        veto_rebuilt
            .instances
            .iter()
            .all(|i| i.fastio_reads == 0 && i.fastio_writes == 0),
        "the IRP vocabulary has no FastIO-served operations"
    );
}

#[test]
fn conservation_still_balances_under_the_veto() {
    let mut config = fleet(97);
    config.force_irp_fallback = true;
    let audited = Study::run_audited(&config, &StreamOptions::default())
        .expect("every ledger reconciles with the veto attached");
    let lost: u64 = audited.data.machines.iter().map(|m| m.loss.lost()).sum();
    assert!(lost > 0, "the lossy plan dropped records");
    assert_eq!(audited.ledgers.len(), 45, "one ledger per machine");
}
