//! The conservation-audit suite: every layer's counters must balance
//! against its neighbours', on clean runs and under fault injection, and
//! the batch / streaming / replay pipelines must agree on the fact
//! tables at beyond-smoke scale.

use nt_study::{differential_check, ReplayConfig, StreamOptions, Study, StudyConfig};

#[test]
fn smoke_run_reconciles_every_ledger() {
    let config = StudyConfig::smoke_test(2024);
    let audited = Study::run_audited(&config, &StreamOptions::default())
        .unwrap_or_else(|failure| panic!("{failure}"));
    assert_eq!(audited.ledgers.len(), audited.data.machines.len());
    // The audit is only meaningful if the accounts saw real traffic.
    let l = &audited.ledgers[0];
    assert!(
        l.entry(nt_audit::accounts::READ_DISPATCH)
            .expect("reads happened")
            .debit
            > 0
    );
    assert!(
        audited
            .fleet
            .entry(nt_audit::accounts::POOL_RECORDS)
            .expect("records flowed")
            .debit
            > 0
    );
    let report = audited.report();
    assert!(report.contains("ledger machine-0"));
    assert!(report.contains("ledger fleet"));
    assert!(!report.contains("DRIFT"), "{report}");
}

#[test]
fn seeded_drift_is_caught_and_named() {
    // Sanity-check the failure path: cook a ledger with one bad account
    // and make sure reconciliation points at it.
    let mut ledger = nt_audit::Ledger::new("machine-9");
    ledger.debit(nt_audit::accounts::PAGING_READ_BYTES, 4096);
    ledger.credit(nt_audit::accounts::PAGING_READ_BYTES, 0);
    let imbalance = ledger.reconcile().unwrap_err();
    assert_eq!(imbalance.account, nt_audit::accounts::PAGING_READ_BYTES);
    assert_eq!(imbalance.scope, "machine-9");
}

#[test]
fn faulted_fleet_run_reconciles_to_zero_drift() {
    // The acceptance bar: 45 machines, multi-day trace window, lossy
    // fault plan active — every machine ledger and the fleet ledger must
    // still balance, because the accounts charge loss to explicit buckets
    // (suspension, overflow) rather than letting it vanish.
    let mut config = StudyConfig::evaluation(77);
    config.duration = nt_sim::SimDuration::from_secs(900);
    config.snapshot_interval = nt_sim::SimDuration::from_secs(300);
    config.files_per_volume = 400;
    config.web_cache_files = 60;
    config.faults = nt_study::FaultPlan::lossy();
    assert_eq!(config.machines.len(), 45, "paper fleet");
    let audited = Study::run_audited(&config, &StreamOptions::default())
        .unwrap_or_else(|failure| panic!("{failure}"));
    // Fault injection really happened …
    assert!(
        audited.data.total_lost() > 0,
        "the lossy plan should drop records"
    );
    // … and still every account balances, fleet-wide.
    assert!(!audited.report().contains("DRIFT"));
    // Loss shows up in the books as the gap between dispatch and intake
    // never existing: trace.events balances because suspension drops are
    // an explicit credit, not an unexplained deficit.
    let drops: u64 = audited
        .data
        .machines
        .iter()
        .map(|m| m.loss.dropped_suspended)
        .sum();
    assert!(drops > 0, "suspension windows should have dropped events");
}

#[test]
fn sharded_run_reconciles_every_tier() {
    // The three-tier books: machine ledgers, one ledger per shard
    // collector, and the fleet root carrying both the flat pool account
    // and the sharded roll-up account. A faulted 4-shard run must
    // balance at every tier — loss is charged to explicit buckets on
    // the machine, so nothing the shards forward can go missing.
    let mut config = StudyConfig::smoke_test(404);
    config.faults = nt_study::FaultPlan::lossy();
    let audited = Study::run_sharded_audited(
        &config,
        &nt_study::ShardOptions {
            shards: 4,
            ..nt_study::ShardOptions::default()
        },
    )
    .unwrap_or_else(|failure| panic!("{failure}"));
    assert_eq!(audited.ledgers.len(), audited.data.data.machines.len());
    assert_eq!(audited.shard_ledgers.len(), 4);
    for (k, ledger) in audited.shard_ledgers.iter().enumerate() {
        let entry = ledger
            .entry(nt_audit::accounts::SHARD_RECORDS)
            .expect("shard pool saw traffic");
        assert!(entry.debit > 0, "shard {k} collected nothing");
        assert_eq!(entry.drift(), 0, "shard {k} drifted");
    }
    let rollup = audited
        .fleet
        .entry(nt_audit::accounts::FLEET_ROLLUP_RECORDS)
        .expect("roll-up account posted");
    assert!(rollup.debit > 0);
    assert_eq!(rollup.drift(), 0);
}

#[test]
fn drifting_shard_is_named_by_the_rollup() {
    // Injected drift: pretend shard 2's collector over-reported its
    // head-count by 7 records. Rebuilding the books from the perturbed
    // reports must flag the shard tier — and name shard 2 — while every
    // machine ledger (built from untouched machine state) stays clean.
    let config = StudyConfig::smoke_test(405);
    let mut data = Study::run_sharded(
        &config,
        &nt_study::ShardOptions {
            shards: 4,
            ..nt_study::ShardOptions::default()
        },
    );
    data.shards[2].total_records += 7;
    let (machines, shards, fleet) = nt_study::sharded_ledgers(&data);
    for ledger in &machines {
        ledger.reconcile().expect("machine tier untouched");
    }
    let imbalance = shards
        .iter()
        .map(|l| l.reconcile())
        .find_map(Result::err)
        .expect("the cooked head-count must surface");
    assert_eq!(imbalance.scope, "shard-2");
    assert_eq!(imbalance.account, nt_audit::accounts::SHARD_RECORDS);
    assert_eq!(
        imbalance.credit - imbalance.debit,
        7,
        "credit exceeds the machines' deliveries by exactly the injection"
    );
    // The same lie is visible from the root: the roll-up leg debits the
    // perturbed shard totals against the true fleet head-count.
    let root = fleet.reconcile().unwrap_err();
    assert_eq!(root.scope, "fleet");
    assert_eq!(root.account, nt_audit::accounts::FLEET_ROLLUP_RECORDS);
}

#[test]
fn differential_harness_is_clean_under_faults() {
    // Batch, streaming and replay legs over a faulted multi-machine run:
    // per-table drift must be zero and the two replays identical.
    let mut config = StudyConfig::smoke_test(31);
    config.faults = nt_study::FaultPlan::lossy();
    let report = differential_check(&config, &ReplayConfig::default())
        .unwrap_or_else(|fault| panic!("{fault}"));
    assert_eq!(report.tables.len(), 3);
    assert!(report.clean(), "drift:\n{}", report.render());
    assert_eq!(report.batch_records, report.streaming_records);
    assert!(report.render().contains("records"));
}
