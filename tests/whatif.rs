//! What-if replay subsystem lockdowns.
//!
//! The determinism contract of `nt_study::whatif`: same seed + same
//! segments → bit-identical differential fact tables, regardless of how
//! many workers carried the (variant × machine) grid and regardless of
//! whether the trace came from the live fact tables or from an NTT
//! warehouse directory. Plus: every variant must pass the conservation
//! audit, an injected drift must be named by variant, and the §9-style
//! delta summary is locked against a golden file
//! (`GOLDEN_REGEN=1 cargo test --test whatif` to regenerate).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

use nt_analysis::TraceSet;
use nt_cache::CacheConfig;
use nt_io::DiskParams;
use nt_study::{
    audit_variant, FaultPlan, ReplayConfig, StreamOptions, Study, StudyConfig, WhatIfError,
    WhatIfReport, WhatIfStudy,
};
use nt_warehouse::Warehouse;

/// The faulted 45-machine fleet, trimmed to a tier-1-friendly period.
fn faulted_fleet() -> StudyConfig {
    let mut config = StudyConfig::paper_scale(90_210);
    config.duration = nt_sim::SimDuration::from_secs(300);
    config.snapshot_interval = nt_sim::SimDuration::from_secs(300);
    config.files_per_volume = 600;
    config.web_cache_files = 100;
    config.faults = FaultPlan::lossy();
    config
}

/// The ≥3-variant policy matrix the acceptance criteria call for:
/// a cache-policy axis, a dispatch axis, and the disk latency-model
/// axis, all against the NT-defaults baseline.
fn matrix() -> WhatIfStudy {
    WhatIfStudy::new(ReplayConfig::default())
        .variant(
            "no-read-ahead",
            ReplayConfig {
                cache: CacheConfig {
                    readahead_enabled: false,
                    ..CacheConfig::default()
                },
                ..ReplayConfig::default()
            },
        )
        .variant(
            "irp-only",
            ReplayConfig {
                disable_fastio: true,
                ..ReplayConfig::default()
            },
        )
        .variant(
            "ssd-class-disk",
            ReplayConfig {
                disk: DiskParams::ssd_class(),
                ..ReplayConfig::default()
            },
        )
}

struct Fixture {
    trace: TraceSet,
    /// The matrix answered from the live fact tables on one worker.
    live_serial: WhatIfReport,
    /// The same matrix on many workers.
    live_parallel: WhatIfReport,
    /// The same matrix from the exported NTT warehouse directory.
    stored: WhatIfReport,
}

fn fixture() -> &'static Fixture {
    static DATA: OnceLock<Fixture> = OnceLock::new();
    DATA.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("nt-whatif-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let data = Study::run_streaming(
            &faulted_fleet(),
            &StreamOptions {
                retain: true,
                warehouse: Some(dir.clone()),
                ..StreamOptions::default()
            },
        );
        let trace = data.trace_set.expect("retained");
        let live_serial = matrix()
            .workers(1)
            .run_trace_set(&trace)
            .expect("serial live matrix reconciles");
        let live_parallel = matrix()
            .workers(8)
            .run_trace_set(&trace)
            .expect("parallel live matrix reconciles");
        let warehouse = Warehouse::open(&dir).expect("fleet exported a warehouse");
        let stored = matrix()
            .workers(3)
            .run(&warehouse)
            .expect("warehouse matrix reconciles");
        let _ = std::fs::remove_dir_all(&dir);
        Fixture {
            trace,
            live_serial,
            live_parallel,
            stored,
        }
    })
}

#[test]
fn matrix_is_bit_identical_across_worker_counts_and_sources() {
    let f = fixture();
    assert_eq!(f.live_serial.machines.len(), 45, "the full faulted fleet");
    assert_eq!(f.live_serial.variants.len(), 3);

    // Worker count never changes a bit.
    assert_eq!(f.live_serial.machines, f.live_parallel.machines);
    assert_eq!(f.live_serial.tables, f.live_parallel.tables);
    assert_eq!(f.live_serial.baseline.rows, f.live_parallel.baseline.rows);
    for (a, b) in f.live_serial.variants.iter().zip(&f.live_parallel.variants) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.rows, b.rows,
            "variant '{}' drifted across workers",
            a.name
        );
        assert_eq!(a.total, b.total);
    }
    assert_eq!(f.live_serial.summaries, f.live_parallel.summaries);

    // Neither does the trace source: live fact tables vs the NTT
    // warehouse scan answer with identical differential tables.
    assert_eq!(f.live_serial.machines, f.stored.machines);
    assert_eq!(f.live_serial.tables, f.stored.tables);
    assert_eq!(f.live_serial.baseline.rows, f.stored.baseline.rows);
    for (a, b) in f.live_serial.variants.iter().zip(&f.stored.variants) {
        assert_eq!(
            a.rows, b.rows,
            "variant '{}' drifted across sources",
            a.name
        );
    }
    assert_eq!(f.live_serial.summaries, f.stored.summaries);
}

#[test]
fn the_matrix_actually_moves_the_policies_under_study() {
    let f = fixture();
    let summary = |name: &str| {
        f.live_serial
            .summaries
            .iter()
            .find(|s| s.variant == name)
            .unwrap_or_else(|| panic!("summary row for {name}"))
    };
    // The §9 read-ahead ablation hurts the hit rate and adds disk reads.
    let nra = summary("no-read-ahead");
    assert!(nra.hit_rate_delta < 0.0, "{nra:?}");
    assert_eq!(nra.readahead_efficiency, 0.0);
    // Removing the FastIO table moves reads to the IRP path.
    let irp = f
        .live_serial
        .variants
        .iter()
        .find(|v| v.name == "irp-only")
        .unwrap();
    assert_eq!(irp.total.fastio_reads, 0);
    assert!(irp.total.irp_reads > f.live_serial.baseline.total.irp_reads);
    // The latency-model axis: SSD-class disks slash disk busy time.
    let ssd = f
        .live_serial
        .variants
        .iter()
        .find(|v| v.name == "ssd-class-disk")
        .unwrap();
    assert!(
        ssd.total.disk_busy_ticks * 10 < f.live_serial.baseline.total.disk_busy_ticks,
        "ssd busy {} vs baseline {}",
        ssd.total.disk_busy_ticks,
        f.live_serial.baseline.total.disk_busy_ticks
    );
    // Replayed request counts are variant-invariant: a policy changes
    // how requests are served, never what the trace asked for.
    for table in &f.live_serial.tables {
        for row in &table.rows {
            assert_eq!(
                row.replayed_requests, 0,
                "variant '{}' changed the request stream on machine {}",
                table.variant, row.machine
            );
        }
    }
}

#[test]
fn every_variant_passes_the_conservation_audit_and_drift_is_named() {
    let f = fixture();
    // The fixture reports exist, so every variant already reconciled.
    // Re-audit explicitly, then inject a drift into one variant's
    // outcomes and prove the failure names that variant.
    for run in std::iter::once(&f.live_serial.baseline).chain(&f.live_serial.variants) {
        audit_variant(&run.name, &run.outcomes).expect("clean outcomes reconcile");
    }
    let victim = &f.live_serial.variants[1];
    assert_eq!(victim.name, "irp-only");
    let mut outcomes = victim.outcomes.clone();
    // An over-reported paging read: the I/O layer debits one more I/O
    // than any cache or VM activity credits.
    outcomes[7].io.paging_reads += 1;
    let err = audit_variant(&victim.name, &outcomes).expect_err("drift must fail the audit");
    match &err {
        WhatIfError::Drift {
            variant,
            imbalance,
            report,
        } => {
            assert_eq!(variant, "irp-only");
            assert_eq!(imbalance.account, "paging.read-ios");
            assert!(imbalance.scope.contains("whatif:irp-only"), "{imbalance:?}");
            assert!(report.contains("paging.read-ios"));
        }
        other => panic!("expected Drift, got {other:?}"),
    }
    let rendered = err.to_string();
    assert!(
        rendered.contains("variant 'irp-only'"),
        "the error must name the variant: {rendered}"
    );
}

#[test]
fn whatif_replay_is_attributed_under_the_replay_phase() {
    let f = fixture();
    let stat = f.live_serial.profile.phase(nt_study::Phase::Replay);
    assert!(
        stat.spans > 0 && stat.total_ns > 0,
        "replay work must be attributed under Phase::Replay: {stat:?}"
    );
    // And nothing leaked into unrelated phases' span counts from the
    // what-if engine itself (the replayed machines run observer-less).
    assert_eq!(f.live_serial.profile.phase(nt_study::Phase::Trace).spans, 0);
}

#[test]
fn live_source_covers_the_whole_trace() {
    let f = fixture();
    let records: usize = f
        .live_serial
        .baseline
        .rows
        .iter()
        .map(|r| r.source_records as usize)
        .sum();
    assert_eq!(
        records,
        f.trace.records.len(),
        "every record reaches a replay stream"
    );
    // Every source record is accounted replayed, skipped, or control.
    for row in &f.live_serial.baseline.rows {
        assert_eq!(
            row.source_records,
            row.replayed_requests + row.skipped_records + row.control_records,
            "machine {} leaked records",
            row.machine
        );
    }
}

// ---------------------------------------------------------------------
// Golden delta-summary lockdown.

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("whatif_delta.json")
}

/// Exact-match metrics (integer counts in disguise).
const EXACT_SUFFIXES: &[&str] = &["disk_ios", "disk_ios_delta", "disk_reads", "disk_writes"];

/// Tolerance for ratios.
const REL_TOL: f64 = 0.05;

fn measure() -> BTreeMap<String, f64> {
    let f = fixture();
    let mut m = BTreeMap::new();
    for s in &f.live_serial.summaries {
        let k = |suffix: &str| format!("{}.{suffix}", s.variant);
        m.insert(k("hit_rate"), s.hit_rate);
        m.insert(k("hit_rate_delta"), s.hit_rate_delta);
        m.insert(k("readahead_efficiency"), s.readahead_efficiency);
        m.insert(k("disk_ios"), s.disk_ios as f64);
        m.insert(k("disk_ios_delta"), s.disk_ios_delta as f64);
        m.insert(k("disk_reads"), s.disk_reads as f64);
        m.insert(k("disk_writes"), s.disk_writes as f64);
    }
    m
}

fn render(metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("  \"{k}\": {v:.6}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

fn parse(text: &str) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("bad golden value for {key}: {e}"));
        m.insert(key.to_string(), value);
    }
    m
}

#[test]
fn delta_summary_matches_the_golden_lockdown() {
    let measured = measure();
    let path = golden_path();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(&measured)).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = parse(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_REGEN=1",
            path.display()
        )
    }));
    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        measured.keys().collect::<Vec<_>>(),
        "metric sets diverge; regenerate with GOLDEN_REGEN=1 and review"
    );
    let mut failures = Vec::new();
    for (key, &want) in &golden {
        let got = measured[key];
        let exact = EXACT_SUFFIXES.iter().any(|s| key.ends_with(s));
        let ok = if exact {
            got == want
        } else if want == 0.0 {
            got.abs() < 1e-9
        } else {
            ((got - want) / want).abs() <= REL_TOL
        };
        if !ok {
            failures.push(format!("  {key}: golden {want} measured {got}"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden what-if deltas drifted:\n{}\nIf intentional, GOLDEN_REGEN=1 and review the diff.",
        failures.join("\n")
    );
}
