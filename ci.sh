#!/usr/bin/env bash
# Local CI gate: formatting, lints, tier-1 verification.
#
# Everything runs offline — dependencies are vendored under vendor/ and
# resolved by path, so no step touches a registry or the network.
#
# Usage: ./ci.sh [--quick]
#   --quick   skip the release build (lints + tests only)

set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

# The generational arena is the dispatch hot path's foundation; lint it
# explicitly so a slab regression can't hide behind an allow() elsewhere.
step "cargo clippy (nt-io dispatch arena, warnings are errors)"
cargo clippy -p nt-io --offline -- -D warnings

if [ "$QUICK" -eq 0 ]; then
    step "cargo build --release (tier-1)"
    cargo build --release --offline
fi

step "cargo build --examples"
cargo build --examples --offline

step "cargo test (tier-1)"
cargo test -q --offline

step "conservation audit (ledger reconciliation + differential harness)"
cargo test -q --offline --test audit

step "telemetry non-perturbation (obs suite: fact tables identical on/off)"
cargo test -q --offline --test obs

step "driver stack (FastIO fallback equivalence + conservation under veto)"
cargo test -q --offline --test filter_stack

step "sharded scale-up (per-shard memory budget + shard/worker bit-identity)"
cargo test -q --offline --release --test shard_scale

step "trace warehouse (golden segment, corruption rejection, import, export parity)"
cargo test -q --offline --test warehouse
cargo test -q --offline --release --test determinism warehouse_reimport

step "causal shipment tracing (faulted sharded smoke: Chrome trace validates, dump reconciles with LossLedger)"
cargo test -q --offline --test shipment_trace

step "what-if replay (matrix bit-identity across workers/sources, variant audit, golden deltas)"
cargo test -q --offline --test whatif

step "cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline -q

step "cargo test --workspace"
cargo test -q --workspace --offline

step "bench regression gate (every *_min_ns in BENCH_streaming.json + 3 ratio gates)"
NT_BENCH_ITERS=1 NT_BENCH_GATE=1 cargo bench -q --offline -p nt-bench --bench streaming

echo
echo "CI green."
