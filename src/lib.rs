//! Umbrella crate of the NT 4.0 file-system usage-study reproduction.
//!
//! The runnable surface lives in the member crates; this crate hosts the
//! workspace-level examples (`examples/`) and integration tests
//! (`tests/`). For library use, depend on the member crates directly:
//!
//! * [`nt_study`] — run deployments and render the paper's tables/figures.
//! * [`nt_analysis`] — the statistics pipeline.
//! * [`nt_io`] / [`nt_cache`] / [`nt_vm`] / [`nt_fs`] — the simulated NT
//!   I/O subsystem.
//! * [`nt_workload`] — the calibrated synthetic workload.
//! * [`nt_trace`] — the filter-driver tracing apparatus.

pub use nt_analysis;
pub use nt_cache;
pub use nt_fs;
pub use nt_io;
pub use nt_sim;
pub use nt_study;
pub use nt_trace;
pub use nt_vm;
pub use nt_workload;
