//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no access to crates.io, so the workspace pins
//! this local implementation of exactly the surface the simulator uses:
//! [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64, the same
//! construction the upstream crate uses on 64-bit targets),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`.
//!
//! Determinism is the contract: a given seed must yield the same stream on
//! every host, forever. Nothing here needs to be — or claims to be —
//! cryptographically strong.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that `Rng::gen` can produce from the uniform stream.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `Rng::gen_range` can draw uniformly.
///
/// The blanket [`SampleRange`] impls below are generic over `T`, mirroring
/// upstream: a single `Range<T>: SampleRange<T>` impl is what lets type
/// inference flow from the use site (say, a slice index) back into an
/// unsuffixed range literal.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }

            #[inline]
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*}
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                low + unit_f64(rng) as $t * (high - low)
            }

            #[inline]
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                low + unit_f64(rng) as $t * (high - low)
            }
        }
    )*}
}

uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the generator behind upstream `SmallRng` on 64-bit
    /// targets: 256 bits of state, fast output mixing, period 2^256 − 1.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors; it cannot produce the
            // all-zero state.
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_samples_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean drifted: {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "gen_bool(0.3): {hits}");
    }
}
