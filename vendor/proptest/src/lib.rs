//! Offline vendored subset of the `proptest` 1.x API.
//!
//! Implements the slice of proptest this workspace uses: the [`Strategy`]
//! trait with ranges, tuples, [`Just`], `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, regex-subset string strategies, `any::<T>()`,
//! and the `proptest!` runner macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//! - cases are generated from a seed derived from the test name, so runs
//!   are fully deterministic across hosts and repetitions;
//! - failing inputs are reported but not shrunk.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;
pub use strategy::{Just, Strategy, Union};

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!` and friends inside a proptest body.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case RNG: FNV-1a over the test name, mixed with the
/// case index. No ambient entropy — identical on every host and run.
pub fn test_rng(name: &str, case: u64) -> SmallRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Types with a canonical full-range strategy, via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy producing any value of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace used by test files (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        pub use crate::collection::vec;
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Strategy for vectors with length drawn from `size` and elements
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{any, prop, Arbitrary, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new()$(.or($arm))+
    };
}

/// The test-runner macro. Each `#[test] fn name(arg in strategy, ...) { .. }`
/// expands to a standard test that runs the body over `cases` sampled
/// inputs with a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )+) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                let desc = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case,
                        config.cases,
                        e,
                        desc
                    );
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u8, u8)>> {
        prop::collection::vec((0u8..10, 0u8..10), 1..20)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(v in pairs()) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in &v {
                prop_assert!(*a < 10 && *b < 10);
            }
        }

        #[test]
        fn oneof_and_map_produce_all_arms(picks in prop::collection::vec(prop_oneof![
            Just(0usize),
            (1u8..3).prop_map(|v| v as usize),
            Just(9usize),
        ], 64..65)) {
            for p in &picks {
                prop_assert!(matches!(p, 0 | 1 | 2 | 9));
            }
        }

        #[test]
        fn regex_strategies_match_shape(parts in prop::collection::vec("[a-z0-9]{1,8}(\\.[a-z0-9]{1,3})?", 0..6)) {
            for p in &parts {
                prop_assert!(!p.is_empty() && p.len() <= 12, "bad part {:?}", p);
                prop_assert!(p.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_limits_cases(seed in any::<u64>()) {
            // Would fail on case 8+ if the config were ignored; the seed
            // argument just exercises `any`.
            let _ = seed;
            prop_assert!(true);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = prop::collection::vec(0u64..1_000_000, 1..50);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|c| Strategy::sample(&s, &mut crate::test_rng("det", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|c| Strategy::sample(&s, &mut crate::test_rng("det", c)))
            .collect();
        assert_eq!(a, b);
    }
}
