//! Strategy combinators: ranges, tuples, `Just`, `prop_map`, unions and a
//! regex-subset string generator.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for one proptest argument.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    #[allow(clippy::type_complexity)]
    arms: Vec<Box<dyn Fn(&mut SmallRng) -> T>>,
}

impl<T> Union<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.arms.push(Box::new(move |rng| strategy.sample(rng)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let pick = rng.gen_range(0..self.arms.len());
        (self.arms[pick])(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+}
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// String literals act as regex-subset strategies, like upstream proptest.
///
/// Supported syntax: literals, `\x` escapes, classes `[a-z0-9]`, groups,
/// alternation `|`, and the quantifiers `?`, `*`, `+`, `{n}`, `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut SmallRng) -> String {
        let ast = parse_alternation(&mut Cursor::new(self));
        let mut out = String::new();
        sample_node(&ast, rng, &mut out);
        out
    }
}

enum Node {
    /// Alternation of sequences; each sequence is quantified atoms.
    Alt(Vec<Vec<(Node, Quant)>>),
    Class(Vec<(char, char)>),
    Lit(char),
}

struct Quant {
    min: u32,
    max: u32,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
}

impl Cursor {
    fn new(pattern: &str) -> Self {
        Cursor {
            chars: pattern.chars().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }
}

fn parse_alternation(cur: &mut Cursor) -> Node {
    let mut alternatives = vec![parse_sequence(cur)];
    while cur.peek() == Some('|') {
        cur.next();
        alternatives.push(parse_sequence(cur));
    }
    Node::Alt(alternatives)
}

fn parse_sequence(cur: &mut Cursor) -> Vec<(Node, Quant)> {
    let mut seq = Vec::new();
    while let Some(c) = cur.peek() {
        if c == ')' || c == '|' {
            break;
        }
        let atom = parse_atom(cur);
        let quant = parse_quant(cur);
        seq.push((atom, quant));
    }
    seq
}

fn parse_atom(cur: &mut Cursor) -> Node {
    match cur.next().expect("regex atom") {
        '(' => {
            let inner = parse_alternation(cur);
            assert_eq!(cur.next(), Some(')'), "unclosed group in regex strategy");
            inner
        }
        '[' => {
            let mut ranges = Vec::new();
            loop {
                let c = cur.next().expect("unclosed class in regex strategy");
                if c == ']' {
                    break;
                }
                if cur.peek() == Some('-') {
                    cur.next();
                    let hi = cur.next().expect("class range end");
                    ranges.push((c, hi));
                } else {
                    ranges.push((c, c));
                }
            }
            Node::Class(ranges)
        }
        '\\' => Node::Lit(cur.next().expect("escape target")),
        c => Node::Lit(c),
    }
}

fn parse_quant(cur: &mut Cursor) -> Quant {
    match cur.peek() {
        Some('?') => {
            cur.next();
            Quant { min: 0, max: 1 }
        }
        Some('*') => {
            cur.next();
            Quant { min: 0, max: 8 }
        }
        Some('+') => {
            cur.next();
            Quant { min: 1, max: 8 }
        }
        Some('{') => {
            cur.next();
            let mut first = String::new();
            let mut second = String::new();
            let mut in_second = false;
            loop {
                match cur.next().expect("unclosed quantifier") {
                    '}' => break,
                    ',' => in_second = true,
                    d if in_second => second.push(d),
                    d => first.push(d),
                }
            }
            let min: u32 = first.parse().expect("quantifier min");
            let max: u32 = if in_second {
                second.parse().expect("quantifier max")
            } else {
                min
            };
            Quant { min, max }
        }
        _ => Quant { min: 1, max: 1 },
    }
}

fn sample_node(node: &Node, rng: &mut SmallRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick).expect("class char"));
                    return;
                }
                pick -= span;
            }
        }
        Node::Alt(alternatives) => {
            let seq = &alternatives[rng.gen_range(0..alternatives.len())];
            for (atom, quant) in seq {
                let reps = rng.gen_range(quant.min..=quant.max);
                for _ in 0..reps {
                    sample_node(atom, rng, out);
                }
            }
        }
    }
}
