//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! Benchmarks compile against this exactly as against upstream, but the
//! harness is a smoke runner: each `bench_function` body executes a small
//! fixed number of iterations and reports wall-clock time per iteration,
//! with no statistics, warm-up or report files. That keeps `cargo bench`
//! usable for regression eyeballing in the offline container while the
//! real dependency stays declared with the same version and surface.

use std::time::Instant;

/// Iterations per benchmark body; low because several benches run whole
/// multi-machine studies per iteration.
const ITERATIONS: u32 = 3;

/// Iterations actually used: `NT_BENCH_ITERS` overrides the default so CI
/// can smoke the benches with a single iteration (`NT_BENCH_ITERS=1`) and
/// a measurement run can ask for more.
fn iterations() -> u32 {
    std::env::var("NT_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(ITERATIONS)
}

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared throughput of a benchmark, echoed in the output line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed_nanos: 0,
            iterations: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed_nanos / u128::from(bencher.iterations.max(1));
        match self.throughput {
            Some(Throughput::Elements(n)) => eprintln!(
                "bench {}/{}: {} ns/iter ({} elements)",
                self.name, id, per_iter, n
            ),
            Some(Throughput::Bytes(n)) => eprintln!(
                "bench {}/{}: {} ns/iter ({} bytes)",
                self.name, id, per_iter, n
            ),
            None => eprintln!("bench {}/{}: {} ns/iter", self.name, id, per_iter),
        }
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed_nanos: u128,
    iterations: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = iterations();
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        self.elapsed_nanos += start.elapsed().as_nanos();
        self.iterations += n;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("unit");
            g.throughput(Throughput::Elements(1));
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, iterations());
    }

    #[test]
    fn iteration_override_parses_like_the_env() {
        // The default holds when the variable is unset or nonsense; the
        // test avoids mutating the process environment.
        assert_eq!(ITERATIONS, 3);
        assert_eq!("7".parse::<u32>().ok().filter(|&n| n > 0), Some(7));
        assert_eq!("0".parse::<u32>().ok().filter(|&n| n > 0), None);
        assert_eq!("x".parse::<u32>().ok().filter(|&n| n > 0), None);
    }
}
