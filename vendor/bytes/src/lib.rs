//! Offline vendored subset of the `bytes` 1.x API: [`Bytes`], [`BytesMut`]
//! and the [`Buf`]/[`BufMut`] traits, backed by plain `Vec<u8>` storage.
//!
//! The trace pipeline only needs contiguous buffers with little-endian
//! integer accessors; none of upstream's zero-copy reference counting is
//! required for correctness here.

use core::ops::{Deref, RangeBounds};

/// Read-side cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

/// Write-side sink for bytes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new `Bytes` holding the given sub-range of the unread
    /// portion.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let rest = &self.data[self.pos..];
        let start = match range.start_bound() {
            core::ops::Bound::Included(&n) => n,
            core::ops::Bound::Excluded(&n) => n + 1,
            core::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            core::ops::Bound::Included(&n) => n + 1,
            core::ops::Bound::Excluded(&n) => n,
            core::ops::Bound::Unbounded => rest.len(),
        };
        Bytes {
            data: rest[start..end].to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        assert_eq!(buf.len(), 13);
        let mut frozen = buf.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xdead_beef);
        assert_eq!(frozen.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_and_slices_read_like_bufs() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(42);
        buf.put_u64_le(43);
        let frozen = buf.freeze();
        let mut head = frozen.slice(0..8);
        assert_eq!(head.get_u64_le(), 42);
        let mut raw: &[u8] = &frozen;
        raw.advance(8);
        assert_eq!(raw.get_u64_le(), 43);
    }
}
