//! Offline vendored subset of the `rand_distr` 0.4 API: the
//! [`Distribution`] trait and the [`LogNormal`] distribution, which the
//! workload generator uses for file holding times.

use rand::RngCore;

/// A distribution that can produce values of type `T` from a uniform
/// random stream.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from constructing a normal-family distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation was negative or not finite.
    BadVariance,
    /// Mean was not finite.
    MeanTooSmall,
}

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal<F> {
    mu: F,
    sigma: F,
}

impl LogNormal<f64> {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        if !mu.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via the Marsaglia polar method.
///
/// The rejection loop consumes a variable number of uniforms, which is fine:
/// determinism only requires that the same seed replays the same stream, not
/// that draws consume a fixed budget.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * unit(rng) - 1.0;
        let v = 2.0 * unit(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[inline]
fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(1.0, 0.5).is_ok());
    }

    #[test]
    fn lognormal_median_matches_exp_mu() {
        // The median of exp(N(mu, sigma^2)) is exp(mu).
        let d = LogNormal::new(2.0, 0.8).expect("valid");
        let mut rng = SmallRng::seed_from_u64(17);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let expected = 2.0f64.exp();
        assert!(
            (median / expected).abs() > 0.9 && (median / expected) < 1.1,
            "median {median} vs exp(mu) {expected}"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = LogNormal::new(0.0, 1.0).expect("valid");
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
