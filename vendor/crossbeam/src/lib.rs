//! Offline vendored subset of the `crossbeam` 0.8 API: multi-producer
//! unbounded channels, implemented over `std::sync::mpsc` with a shared
//! identity token so `Sender::same_channel` works.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of an unbounded channel. Cloneable; dropping the last
    /// clone disconnects the receiver.
    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
        id: Arc<()>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
                id: Arc::clone(&self.id),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// True when both senders feed the same channel.
        pub fn same_channel(&self, other: &Sender<T>) -> bool {
            Arc::ptr_eq(&self.id, &other.id)
        }
    }

    /// Receiving half of an unbounded channel.
    ///
    /// Unlike `std::sync::mpsc`, crossbeam receivers are `Sync` and usable
    /// through a shared reference; the mutex restores that contract.
    pub struct Receiver<T> {
        rx: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx
                .lock()
                .expect("channel receiver poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.rx
                .lock()
                .expect("channel receiver poisoned")
                .try_recv()
                .map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx,
                id: Arc::new(()),
            },
            Receiver { rx: Mutex::new(rx) },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_delivers_everything() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let a = std::thread::spawn(move || (0..100).for_each(|i| tx.send(i).unwrap()));
            let b = std::thread::spawn(move || (100..200).for_each(|i| tx2.send(i).unwrap()));
            a.join().unwrap();
            b.join().unwrap();
            let mut got: Vec<i32> = (0..200).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..200).collect::<Vec<_>>());
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn same_channel_distinguishes_channels() {
            let (tx_a, _rx_a) = unbounded::<u8>();
            let (tx_b, _rx_b) = unbounded::<u8>();
            assert!(tx_a.same_channel(&tx_a.clone()));
            assert!(!tx_a.same_channel(&tx_b));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
